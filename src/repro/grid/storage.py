"""Storage elements, logical files and the replica catalog.

The paper's executable descriptors reference data by **Grid File Name**
(GFN) and leave physical placement to the middleware (Figure 8: access
``type="GFN"``).  We model:

* :class:`LogicalFile` — a GFN plus a size (sizes drive transfer times;
  the Bronze Standard images are 7.8 MB raw / ~2.3 MB compressed),
* :class:`StorageElement` — a named store attached to a site,
* :class:`ReplicaCatalog` — the GFN -> {storage elements} mapping with
  registration and replica resolution.

A catalog lookup chooses the replica closest to the requesting site
(same site wins, then any remote replica deterministically by name) —
the simulator's stand-in for the LCG replica-selection heuristics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.util.units import MEBIBYTE

__all__ = ["LogicalFile", "StorageElement", "ReplicaCatalog", "UnknownFileError"]

_file_counter = itertools.count(1)


class UnknownFileError(KeyError):
    """Raised when resolving a GFN the catalog has never seen."""


@dataclass(frozen=True)
class LogicalFile:
    """A grid file: logical name (GFN) + size in bytes.

    Sizes are interned as **ints** at construction (fractional byte
    counts from calibration arithmetic are rounded): byte totals
    accumulated across thousands of transfers stay integer-exact, so
    per-link sums equal global totals to the byte — the invariant the
    data-flow accounting is gated on.
    """

    gfn: str
    size: int = 1 * MEBIBYTE

    def __post_init__(self) -> None:
        if not self.gfn:
            raise ValueError("LogicalFile needs a non-empty GFN")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if not isinstance(self.size, int):
            object.__setattr__(self, "size", int(round(float(self.size))))

    @staticmethod
    def fresh(prefix: str, size: float) -> "LogicalFile":
        """Mint a unique GFN under *prefix* (for newly produced outputs)."""
        return LogicalFile(gfn=f"gfn://{prefix}/{next(_file_counter):08d}", size=size)


class StorageElement:
    """A storage endpoint living at a site."""

    def __init__(self, name: str, site: str) -> None:
        if not name:
            raise ValueError("StorageElement needs a name")
        self.name = name
        self.site = site
        self._files: Set[str] = set()

    def holds(self, gfn: str) -> bool:
        """True if this SE has a replica of *gfn*."""
        return gfn in self._files

    def add(self, gfn: str) -> None:
        """Record a replica of *gfn* on this SE."""
        self._files.add(gfn)

    @property
    def file_count(self) -> int:
        """Number of replicas stored here."""
        return len(self._files)

    def __repr__(self) -> str:
        return f"<StorageElement {self.name!r} site={self.site!r} files={len(self._files)}>"


class ReplicaCatalog:
    """GFN -> replicas mapping plus file metadata."""

    def __init__(self) -> None:
        self._replicas: Dict[str, List[StorageElement]] = {}
        self._meta: Dict[str, LogicalFile] = {}
        #: observers called as ``(file, element)`` after every
        #: registration, in add order; the grid registers its metrics
        #: hook here and a data-flow collector adds its own.
        self.observers: List[Callable[[LogicalFile, StorageElement], None]] = []

    def add_observer(
        self, observer: Callable[[LogicalFile, StorageElement], None]
    ) -> Callable[[LogicalFile, StorageElement], None]:
        """Register a registration observer (multicast; fires in add order)."""
        self.observers.append(observer)
        return observer

    @property
    def on_register(self) -> Optional[Callable[[LogicalFile, StorageElement], None]]:
        """Single-callable compatibility view (see ``NetworkModel.on_transfer``)."""
        return self.observers[0] if self.observers else None

    @on_register.setter
    def on_register(
        self, observer: Optional[Callable[[LogicalFile, StorageElement], None]]
    ) -> None:
        self.observers[:] = [] if observer is None else [observer]

    def register(self, file: LogicalFile, element: StorageElement) -> None:
        """Register (or add a replica of) *file* on *element*."""
        known = self._meta.get(file.gfn)
        if known is not None and known.size != file.size:
            raise ValueError(
                f"GFN {file.gfn!r} re-registered with a different size "
                f"({known.size} vs {file.size})"
            )
        self._meta[file.gfn] = file
        replicas = self._replicas.setdefault(file.gfn, [])
        if element not in replicas:
            replicas.append(element)
        element.add(file.gfn)
        for observer in self.observers:
            observer(file, element)

    def lookup(self, gfn: str) -> LogicalFile:
        """Return the :class:`LogicalFile` metadata for *gfn*."""
        try:
            return self._meta[gfn]
        except KeyError:
            raise UnknownFileError(gfn) from None

    def replicas(self, gfn: str) -> List[StorageElement]:
        """All SEs holding *gfn* (registration order)."""
        if gfn not in self._replicas:
            raise UnknownFileError(gfn)
        return list(self._replicas[gfn])

    def closest_replica(self, gfn: str, site: str) -> StorageElement:
        """Pick the replica to read from for a job running at *site*.

        Same-site replicas win; otherwise the lexicographically first SE
        name is used so that the choice is deterministic.
        """
        candidates = self.replicas(gfn)
        local = [se for se in candidates if se.site == site]
        if local:
            return local[0]
        return min(candidates, key=lambda se: se.name)

    def knows(self, gfn: str) -> bool:
        """True if *gfn* has been registered."""
        return gfn in self._meta

    def gfns(self) -> Iterable[str]:
        """All registered GFNs (sorted, for deterministic iteration)."""
        return sorted(self._meta)

    def __len__(self) -> int:
        return len(self._meta)
