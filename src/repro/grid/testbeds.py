"""Canned grid configurations.

Three regimes matter to the reproduction:

``ideal_testbed``
    The analytical model's world (Section 3.5.2 hypotheses): unlimited
    data parallelism, zero middleware overhead, free transfers, no
    failures.  On this grid the simulator must match equations (1)–(4)
    *exactly*, which is what `benchmarks/bench_model_validation.py` and
    the property tests check.

``cluster_testbed``
    A low-latency local cluster: small constant overheads, finite
    workers, LAN-only.  The paper's foil ("on a traditional cluster
    infrastructure, service parallelism would be of minor importance").

``egee_like_testbed``
    The production-grid regime: many sites, finite workers per CE,
    large and highly variable per-job overhead (calibrated to the
    paper's "around 10 minutes ± 5 minutes"), optional failures and
    background load.  This is the testbed behind the Table 1 / Table 2 /
    Figure 10 reproductions.

``faulty_testbed``
    A small grid with *known-bad* sites injected: one blackhole CE
    (fails almost every attempt, fast) and one straggler CE (workers an
    order of magnitude slower than the fleet).  Ground truth for the
    live monitor's detection tests and for the broker-feedback ablation
    benchmark — the monitor must flag exactly the injected sites.
"""

from __future__ import annotations

from typing import Optional

from repro.grid.batch import FairSharePolicy, FifoPolicy
from repro.grid.faults import DurabilityFaultModel, FaultModel, OutageSchedule
from repro.grid.load import BackgroundLoad
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.retry import RetryBudget, RetryPolicy
from repro.grid.storage import StorageElement
from repro.grid.transfer import DegradedWindow, LinkParameters, NetworkModel
from repro.sim.engine import Engine
from repro.util.distributions import LogNormal, TruncatedNormal, Uniform
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE, MINUTE

__all__ = [
    "ideal_testbed",
    "cluster_testbed",
    "egee_like_testbed",
    "faulty_testbed",
    "chaotic_testbed",
]


def ideal_testbed(engine: Engine, streams: Optional[RandomStreams] = None) -> Grid:
    """A zero-overhead, infinite-capacity grid (the model's hypotheses)."""
    streams = streams or RandomStreams(seed=0)
    site_name = "ideal-site"
    ce = ComputingElement(engine, name="ideal-ce", site=site_name, infinite=True)
    se = StorageElement("ideal-se", site=site_name)
    site = Site(name=site_name, computing_elements=[ce], storage_element=se)
    return Grid(
        engine,
        streams,
        sites=[site],
        overhead=OverheadModel.zero(),
        network=NetworkModel.instantaneous(),
        faults=FaultModel.none(),
        name="ideal",
    )


def cluster_testbed(
    engine: Engine,
    streams: Optional[RandomStreams] = None,
    workers: int = 64,
    slots_per_worker: int = 2,
    submission_latency: float = 1.0,
    brokering_latency: float = 0.5,
) -> Grid:
    """A single-site commodity cluster with a local batch scheduler."""
    streams = streams or RandomStreams(seed=0)
    site_name = "cluster"
    nodes = [
        WorkerNode(name=f"node{idx:03d}", slots=slots_per_worker, speed=1.0)
        for idx in range(workers)
    ]
    ce = ComputingElement(
        engine,
        name="cluster-ce",
        site=site_name,
        workers=nodes,
        policy=FifoPolicy(engine),
    )
    se = StorageElement("cluster-se", site=site_name)
    site = Site(name=site_name, computing_elements=[ce], storage_element=se)
    network = NetworkModel(
        lan=LinkParameters(latency=0.05, bandwidth=1000 * MEBIBYTE),
        wan=LinkParameters(latency=0.05, bandwidth=1000 * MEBIBYTE),
    )
    return Grid(
        engine,
        streams,
        sites=[site],
        overhead=OverheadModel.from_values(
            submission=submission_latency, brokering=brokering_latency
        ),
        network=network,
        faults=FaultModel.none(),
        name="cluster",
    )


def egee_like_testbed(
    engine: Engine,
    streams: Optional[RandomStreams] = None,
    n_sites: int = 10,
    workers_per_ce: int = 40,
    slots_per_worker: int = 2,
    overhead_mean: float = 10 * MINUTE,
    overhead_sigma: float = 5 * MINUTE,
    failure_probability: float = 0.04,
    with_background_load: bool = True,
    background_interarrival: float = 20.0,
    background_duration_mean: float = 15 * MINUTE,
    heterogeneous_workers: bool = True,
    broker_concurrency: "int | float" = 32,
    overhead_load_coupling: float = 0.8,
) -> Grid:
    """An EGEE/LCG2-like production grid, calibrated to the paper.

    The total per-job overhead is decomposed as roughly 10% submission,
    25% brokering, 60% heavy-tailed queue residency and 5% completion
    notification; the lognormal queue term carries most of the paper's
    "± 5 minutes" variability.  Worker speeds are mildly heterogeneous
    (standard PCs of different generations).
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    streams = streams or RandomStreams(seed=0)
    speed_rng = streams.get("worker-speeds")

    sites = []
    for s in range(n_sites):
        site_name = f"site{s:02d}"
        nodes = []
        for w in range(workers_per_ce):
            speed = (
                float(Uniform(0.7, 1.3).sample(speed_rng))
                if heterogeneous_workers
                else 1.0
            )
            nodes.append(
                WorkerNode(name=f"{site_name}-wn{w:03d}", slots=slots_per_worker, speed=speed)
            )
        ce = ComputingElement(
            engine,
            name=f"{site_name}-ce",
            site=site_name,
            workers=nodes,
            policy=FairSharePolicy(engine),
        )
        se = StorageElement(f"{site_name}-se", site=site_name)
        sites.append(Site(name=site_name, computing_elements=[ce], storage_element=se))

    overhead = OverheadModel(
        submission=TruncatedNormal(mu=0.10 * overhead_mean, sigma=0.05 * overhead_mean, floor=2.0),
        brokering=TruncatedNormal(mu=0.25 * overhead_mean, sigma=0.10 * overhead_mean, floor=5.0),
        queue_extra=LogNormal(
            mean_value=0.60 * overhead_mean,
            sigma_log=_sigma_log_for(overhead_sigma, 0.60 * overhead_mean),
        ),
        completion_notification=TruncatedNormal(
            mu=0.05 * overhead_mean, sigma=0.02 * overhead_mean, floor=1.0
        ),
    )
    faults = FaultModel.from_values(
        probability=failure_probability,
        detection_delay=TruncatedNormal(mu=15 * MINUTE, sigma=5 * MINUTE, floor=60.0),
        max_attempts=3,
    )
    grid = Grid(
        engine,
        streams,
        sites=sites,
        overhead=overhead,
        network=NetworkModel(),  # LAN/WAN defaults
        faults=faults,
        broker_strategy="least-loaded",
        broker_concurrency=broker_concurrency,
        overhead_load_coupling=overhead_load_coupling,
        name="egee-like",
    )
    if with_background_load:
        BackgroundLoad(
            engine,
            grid.computing_elements,
            rng=streams.get("background-load"),
            interarrival=background_interarrival,
            duration=LogNormal(mean_value=background_duration_mean, sigma_log=0.9),
        )
    return grid


def faulty_testbed(
    engine: Engine,
    streams: Optional[RandomStreams] = None,
    n_sites: int = 6,
    workers_per_ce: int = 8,
    slots_per_worker: int = 2,
    blackhole_site: int = 1,
    straggler_site: int = 2,
    blackhole_probability: float = 0.9,
    blackhole_detection_delay: float = 30.0,
    straggler_speed: float = 0.3,
    base_failure_probability: float = 0.02,
    max_attempts: int = 25,
    retry_policy: Optional[RetryPolicy] = None,
    retry_budget: Optional[RetryBudget] = None,
) -> Grid:
    """A grid with one injected blackhole CE and one straggler CE.

    The blackhole site (index *blackhole_site*) fails
    ``blackhole_probability`` of its attempts and fails them *fast*
    (``blackhole_detection_delay`` seconds) — so its queue stays empty
    and least-loaded ranking keeps feeding it, the self-reinforcing
    EGEE pathology.  The straggler site's workers run at
    ``straggler_speed`` of fleet speed.  Healthy sites have mild speed
    spread (±5%) and a small background failure probability.
    ``max_attempts`` is generous so the *no-feedback* baseline still
    completes: without monitoring, jobs bounce off the blackhole many
    times before landing somewhere healthy.

    Overheads are small constants — the variability under study is the
    injected pathology, not the middleware.
    """
    if n_sites < 3:
        raise ValueError(f"faulty_testbed needs >= 3 sites, got {n_sites}")
    if blackhole_site == straggler_site:
        raise ValueError("blackhole and straggler must be different sites")
    for index, label in ((blackhole_site, "blackhole_site"), (straggler_site, "straggler_site")):
        if not 0 <= index < n_sites:
            raise ValueError(f"{label} must be in [0, {n_sites}), got {index}")
    streams = streams or RandomStreams(seed=0)
    speed_rng = streams.get("worker-speeds")

    sites = []
    for s in range(n_sites):
        site_name = f"site{s:02d}"
        nodes = []
        for w in range(workers_per_ce):
            if s == straggler_site:
                speed = straggler_speed
            else:
                speed = float(Uniform(0.95, 1.05).sample(speed_rng))
            nodes.append(
                WorkerNode(name=f"{site_name}-wn{w:03d}", slots=slots_per_worker, speed=speed)
            )
        ce = ComputingElement(
            engine,
            name=f"{site_name}-ce",
            site=site_name,
            workers=nodes,
            policy=FifoPolicy(engine),
        )
        se = StorageElement(f"{site_name}-se", site=site_name)
        sites.append(Site(name=site_name, computing_elements=[ce], storage_element=se))

    blackhole_ce = f"site{blackhole_site:02d}-ce"
    faults = FaultModel.from_values(
        probability=base_failure_probability,
        detection_delay=TruncatedNormal(mu=120.0, sigma=30.0, floor=30.0),
        max_attempts=max_attempts,
        ce_probability={blackhole_ce: blackhole_probability},
        ce_detection_delay={blackhole_ce: blackhole_detection_delay},
    )
    return Grid(
        engine,
        streams,
        sites=sites,
        overhead=OverheadModel.from_values(
            submission=2.0,
            brokering=3.0,
            queue_extra=5.0,
            completion_notification=1.0,
        ),
        network=NetworkModel(),
        faults=faults,
        broker_strategy="least-loaded",
        name="faulty",
        retry_policy=retry_policy,
        retry_budget=retry_budget,
    )


def chaotic_testbed(
    engine: Engine,
    streams: Optional[RandomStreams] = None,
    n_sites: int = 4,
    workers_per_ce: int = 8,
    slots_per_worker: int = 2,
    repair: bool = True,
    repair_target: int = 2,
    repair_interval: float = 60.0,
    transfer_failure_probability: float = 0.05,
    replica_loss_probability: float = 0.02,
    corruption_probability: float = 0.015,
    outages: Optional[OutageSchedule] = None,
    max_attempts: int = 6,
) -> Grid:
    """A small grid where the *data plane* misbehaves on schedule.

    Everything the fault-injection subsystem can do, in one testbed:

    * a long outage of ``site00-se`` — the SE every input file is
      registered on — plus a *flapping* ``site02-se`` and one whole-site
      blackout (``site03``: CE and SE down together),
    * WAN transfers that fail ``transfer_failure_probability`` of the
      time and a degraded-bandwidth brown-out window,
    * replica loss and corruption injected on stage-in accesses, and
    * (with ``repair=True``) the background re-replication daemon that
      keeps ``repair_target`` healthy copies of every GFN — the thing
      that lets Bronze complete where the ``repair=False`` ablation
      loses the lineages whose only replica dies.

    Overheads are the small constants of :func:`faulty_testbed`; all
    chaos is a pure function of the schedule and the seeded streams, so
    two runs with the same seed are byte-identical.
    """
    if n_sites < 3:
        raise ValueError(f"chaotic_testbed needs >= 3 sites, got {n_sites}")
    streams = streams or RandomStreams(seed=0)
    speed_rng = streams.get("worker-speeds")

    sites = []
    for s in range(n_sites):
        site_name = f"site{s:02d}"
        nodes = [
            WorkerNode(
                name=f"{site_name}-wn{w:03d}",
                slots=slots_per_worker,
                speed=float(Uniform(0.95, 1.05).sample(speed_rng)),
            )
            for w in range(workers_per_ce)
        ]
        ce = ComputingElement(
            engine,
            name=f"{site_name}-ce",
            site=site_name,
            workers=nodes,
            policy=FifoPolicy(engine),
        )
        se = StorageElement(f"{site_name}-se", site=site_name)
        sites.append(Site(name=site_name, computing_elements=[ce], storage_element=se))

    if outages is None:
        outages = OutageSchedule.from_windows(
            {
                # the default SE (all inputs start here) dies for a while
                "site00-se": [(900.0, 2600.0)],
                # one CE browns out mid-run; its queue backs up
                "site01-ce": [(400.0, 800.0)],
                # a whole site goes dark: CE and SE down together
                "site03": [(600.0, 1000.0)],
            }
        ).with_flapping("site02-se", start=300.0, down=120.0, up=180.0, cycles=4)

    network = NetworkModel(
        failure_probability=transfer_failure_probability,
        degraded_windows=(
            # backbone congestion: every transfer 2x slower in the window
            DegradedWindow(start=200.0, end=800.0, factor=2.0),
        ),
    )
    faults = FaultModel.from_values(
        probability=0.02,
        detection_delay=TruncatedNormal(mu=60.0, sigma=15.0, floor=15.0),
        max_attempts=max_attempts,
    )
    return Grid(
        engine,
        streams,
        sites=sites,
        overhead=OverheadModel.from_values(
            submission=2.0,
            brokering=3.0,
            queue_extra=5.0,
            completion_notification=1.0,
        ),
        network=network,
        faults=faults,
        broker_strategy="least-loaded",
        name="chaotic",
        outages=outages,
        durability=DurabilityFaultModel(
            loss_probability=replica_loss_probability,
            corruption_probability=corruption_probability,
        ),
        transfer_retry=RetryPolicy.exponential(
            base_delay=5.0, max_delay=60.0, jitter=0.1, max_attempts=5
        ),
        repair_target=repair_target if repair else 1,
        repair_interval=repair_interval,
    )


def _sigma_log_for(target_std: float, mean_value: float) -> float:
    """Sigma of the log such that LogNormal(mean, s) has ~*target_std*.

    For a lognormal with arithmetic mean m and log-sigma s the variance
    is m^2 (e^{s^2} - 1); solving for s given a target standard
    deviation.
    """
    import math

    if mean_value <= 0:
        raise ValueError("mean_value must be > 0")
    if target_std <= 0:
        return 0.0
    ratio = (target_std / mean_value) ** 2
    return math.sqrt(math.log(1.0 + ratio))
