"""The Resource Broker: matchmaking jobs to computing elements.

"Jobs are submitted from a user interface to a central Resource Broker
which distributes them to the available resources" (Section 4.3).  The
broker is a shared, central service: under heavy submission rates it is
itself a bottleneck ("middleware services such as the user interface or
the resource broker may be critical bottlenecks", Section 5.4), which
we model with an optional concurrency cap on matchmaking.

Ranking strategies:

``least-loaded``
    Choose the CE with the lowest queue-pressure estimate, with a
    deterministic name tie-break.  Mirrors the EGEE rank expression
    based on estimated response time.
``round-robin``
    Cycle over CEs regardless of load.
``random``
    Uniform choice from a named random stream (reproducible).

The broker optionally consults a **health provider** (see
:class:`repro.observability.monitor.HealthProvider`): computing elements
the live monitor flagged as stragglers or blackholes are avoided while
any healthy alternative exists, and ``least-loaded`` ranking adds the
provider's penalty to the load estimate so a degraded-but-not-flagged
CE is demoted smoothly.  This is the feedback loop that turns online
monitoring into shorter makespans on faulty testbeds — the simulated
counterpart of an operator blacklisting a misbehaving EGEE site.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.grid.job import JobRecord
from repro.grid.resources import ComputingElement
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["ResourceBroker", "RANKING_STRATEGIES"]


def _rank_least_loaded(
    ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
) -> ComputingElement:
    return min(ces, key=lambda ce: (ce.load_estimate(), ce.name))


class _RoundRobin:
    """Per-broker rotation state, keyed by the CE names being cycled.

    Keying by the *names* (not ``id(ces[0])``, which leaks state across
    brokers sharing a CE and can alias unrelated lists after GC reuses
    an address) means two brokers built over identical testbeds start
    identical cycles — run-to-run reproducibility — while a health
    provider shrinking the candidate list simply starts a fresh cycle
    over the surviving CEs.
    """

    def __init__(self) -> None:
        self._cycles: Dict[Tuple[str, ...], "itertools.cycle"] = {}

    def __call__(
        self, ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
    ) -> ComputingElement:
        key = tuple(ce.name for ce in ces)
        if key not in self._cycles:
            self._cycles[key] = itertools.cycle(ces)
        return next(self._cycles[key])


def _rank_random(
    ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
) -> ComputingElement:
    return ces[int(rng.integers(len(ces)))]


#: strategy name -> ranking callable, or a class to instantiate once per
#: broker when the strategy needs its own state (round-robin's cycle)
RANKING_STRATEGIES: Dict[str, Callable] = {
    "least-loaded": _rank_least_loaded,
    "round-robin": _RoundRobin,
    "random": _rank_random,
}


class ResourceBroker:
    """Central matchmaker between submitted jobs and computing elements."""

    def __init__(
        self,
        engine: Engine,
        computing_elements: List[ComputingElement],
        rng: np.random.Generator,
        strategy: str = "least-loaded",
        concurrency: "int | float" = float("inf"),
        health: Optional[object] = None,
    ) -> None:
        if not computing_elements:
            raise ValueError("broker needs at least one computing element")
        if strategy not in RANKING_STRATEGIES:
            raise ValueError(
                f"unknown ranking strategy {strategy!r}; "
                f"options: {sorted(RANKING_STRATEGIES)}"
            )
        self.engine = engine
        self.computing_elements = list(computing_elements)
        self.strategy_name = strategy
        rank = RANKING_STRATEGIES[strategy]
        # Stateful strategies are classes: each broker gets its own
        # instance, so rotations never leak across brokers or runs.
        self._rank = rank() if isinstance(rank, type) else rank
        self._rng = rng
        self._capacity = Resource(engine, concurrency, name="broker")
        self.matchmaking_count = 0
        #: optional HealthProvider (penalty/blacklisted by CE name)
        self.health = health
        #: matches that avoided at least one blacklisted CE
        self.demotions = 0
        #: hot-path profiler (repro.observability.profiling); None = off
        self.profiler = None

    def match(self, record: JobRecord, brokering_delay: float):
        """Process generator: matchmake *record*, yielding the chosen CE.

        Acquires a broker slot for the duration of the matchmaking
        delay, so a finite-concurrency broker saturates under load.
        """
        request = self._capacity.request()
        yield request
        try:
            if brokering_delay > 0:
                yield self.engine.timeout(brokering_delay)
            chosen = self._choose(record)
            self.matchmaking_count += 1
            return chosen
        finally:
            self._capacity.release(request)

    def _choose(self, record: JobRecord) -> ComputingElement:
        """Apply the health feedback, then the configured ranking.

        Blacklisted CEs are excluded while at least one candidate
        survives (an all-blacklisted fleet still places the job — a slow
        grid beats a stuck one); under ``least-loaded`` the provider's
        penalty is added to each surviving CE's load estimate.
        """
        profiler = self.profiler
        if profiler is None:
            return self._choose_unprofiled(record)
        profiler.enter("broker.rank")
        try:
            return self._choose_unprofiled(record)
        finally:
            profiler.exit()

    def _choose_unprofiled(self, record: JobRecord) -> ComputingElement:
        candidates = self.computing_elements
        health = self.health
        if health is not None:
            allowed = [ce for ce in candidates if not health.blacklisted(ce.name)]
            if allowed and len(allowed) < len(candidates):
                self.demotions += 1
            if allowed:
                candidates = allowed
            if self.strategy_name == "least-loaded":
                return min(
                    candidates,
                    key=lambda ce: (ce.load_estimate() + health.penalty(ce.name), ce.name),
                )
        return self._rank(candidates, record, self._rng)

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a matchmaking slot."""
        return self._capacity.queue_length
