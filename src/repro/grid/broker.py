"""The Resource Broker: matchmaking jobs to computing elements.

"Jobs are submitted from a user interface to a central Resource Broker
which distributes them to the available resources" (Section 4.3).  The
broker is a shared, central service: under heavy submission rates it is
itself a bottleneck ("middleware services such as the user interface or
the resource broker may be critical bottlenecks", Section 5.4), which
we model with an optional concurrency cap on matchmaking.

Ranking strategies:

``least-loaded``
    Choose the CE with the lowest queue-pressure estimate, with a
    deterministic name tie-break.  Mirrors the EGEE rank expression
    based on estimated response time.
``round-robin``
    Cycle over CEs regardless of load.
``random``
    Uniform choice from a named random stream (reproducible).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List

import numpy as np

from repro.grid.job import JobRecord
from repro.grid.resources import ComputingElement
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["ResourceBroker", "RANKING_STRATEGIES"]


def _rank_least_loaded(
    ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
) -> ComputingElement:
    return min(ces, key=lambda ce: (ce.load_estimate(), ce.name))


class _RoundRobin:
    def __init__(self) -> None:
        self._cycles: Dict[int, "itertools.cycle"] = {}

    def __call__(
        self, ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
    ) -> ComputingElement:
        key = id(ces[0]) if ces else 0
        if key not in self._cycles:
            self._cycles[key] = itertools.cycle(ces)
        return next(self._cycles[key])


def _rank_random(
    ces: List[ComputingElement], record: JobRecord, rng: np.random.Generator
) -> ComputingElement:
    return ces[int(rng.integers(len(ces)))]


RANKING_STRATEGIES: Dict[str, Callable] = {
    "least-loaded": _rank_least_loaded,
    "round-robin": _RoundRobin(),
    "random": _rank_random,
}


class ResourceBroker:
    """Central matchmaker between submitted jobs and computing elements."""

    def __init__(
        self,
        engine: Engine,
        computing_elements: List[ComputingElement],
        rng: np.random.Generator,
        strategy: str = "least-loaded",
        concurrency: "int | float" = float("inf"),
    ) -> None:
        if not computing_elements:
            raise ValueError("broker needs at least one computing element")
        if strategy not in RANKING_STRATEGIES:
            raise ValueError(
                f"unknown ranking strategy {strategy!r}; "
                f"options: {sorted(RANKING_STRATEGIES)}"
            )
        self.engine = engine
        self.computing_elements = list(computing_elements)
        self.strategy_name = strategy
        self._rank = RANKING_STRATEGIES[strategy]
        if strategy == "round-robin":
            # Each broker gets an independent rotation.
            self._rank = _RoundRobin()
        self._rng = rng
        self._capacity = Resource(engine, concurrency, name="broker")
        self.matchmaking_count = 0

    def match(self, record: JobRecord, brokering_delay: float):
        """Process generator: matchmake *record*, yielding the chosen CE.

        Acquires a broker slot for the duration of the matchmaking
        delay, so a finite-concurrency broker saturates under load.
        """
        request = self._capacity.request()
        yield request
        try:
            if brokering_delay > 0:
                yield self.engine.timeout(brokering_delay)
            chosen = self._rank(self.computing_elements, record, self._rng)
            self.matchmaking_count += 1
            return chosen
        finally:
            self._capacity.release(request)

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a matchmaking slot."""
        return self._capacity.queue_length
