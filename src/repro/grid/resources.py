"""Computing resources: worker nodes, computing elements, sites.

An EGEE-like site bundles a :class:`ComputingElement` (a batch queue in
front of a pool of :class:`WorkerNode` s) with a storage element.  The
CE runs a dispatch loop as a simulated process: it repeatedly asks its
:class:`~repro.grid.batch.QueuePolicy` for the next queued job, waits
for a free worker slot, and runs the job's lifecycle (stage-in,
execute, stage-out, payload evaluation).

Infinite capacity is supported (``slots=None`` worker) so the idealized
testbed can realize the paper's hypothesis H2: "data parallelism is
assumed not to be limited by infrastructure constraints".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, TYPE_CHECKING

import numpy as np

from repro.grid.batch import FifoPolicy, QueuePolicy
from repro.grid.job import JobRecord, JobState
from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grid.middleware import Grid

__all__ = ["WorkerNode", "ComputingElement", "Site", "QueueEntry"]


@dataclass(frozen=True)
class WorkerNode:
    """A worker node: some CPU slots at a relative speed.

    ``speed`` scales execution time: a job whose reference compute time
    is ``t`` runs in ``t / speed`` here.  EGEE nodes were "standard
    PCs" of heterogeneous generations; testbeds draw speeds from a
    distribution around 1.0.
    """

    name: str
    slots: int = 1
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"worker needs >= 1 slot, got {self.slots}")
        if self.speed <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed}")


@dataclass
class QueueEntry:
    """One job waiting in a CE batch queue."""

    record: JobRecord
    completion: Event  # succeeds with the record when the job finishes on the CE


class ComputingElement:
    """A batch-scheduled pool of worker nodes at one site."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        site: str,
        workers: Optional[List[WorkerNode]] = None,
        policy: Optional[QueuePolicy] = None,
        infinite: bool = False,
    ) -> None:
        self.engine = engine
        self.name = name
        self.site = site
        self.infinite = infinite
        self.workers = list(workers or [])
        if not infinite and not self.workers:
            raise ValueError(f"CE {name!r} needs workers (or infinite=True)")
        self.policy = policy if policy is not None else FifoPolicy(engine)
        capacity: "int | float" = (
            float("inf") if infinite else sum(w.slots for w in self.workers)
        )
        self._slots = Resource(engine, capacity, name=f"slots:{name}")
        # Round-robin assignment of started jobs to workers, for records.
        self._worker_cycle = itertools.cycle(self.workers) if self.workers else None
        self._running = 0
        self._completed = 0
        # Entries pulled off the queue by the dispatch loop but still
        # waiting for a worker slot; counted as queued for load purposes.
        self._dispatching = 0
        #: set by Grid when it adopts this CE; drives stage-in/out timing
        self.grid: Optional["Grid"] = None
        # Instance-owned fallback for grid-less CEs (unit tests): a
        # module-global generator here would couple the draws of every
        # concurrent enactment in the process.
        self._fallback_rng = np.random.default_rng(0)
        self.engine.process(self._dispatch_loop(), name=f"ce:{name}")

    # -- introspection ---------------------------------------------------
    @property
    def total_slots(self) -> "int | float":
        """Total worker slots (may be ``inf``)."""
        return self._slots.capacity

    @property
    def queued(self) -> int:
        """Jobs waiting in the batch queue (including one being dispatched)."""
        return len(self.policy) + self._dispatching

    @property
    def running(self) -> int:
        """Jobs currently executing on workers."""
        return self._running

    @property
    def completed(self) -> int:
        """Jobs finished on this CE since the start of the simulation."""
        return self._completed

    def load_estimate(self) -> float:
        """Queue pressure estimate used by broker ranking.

        queued+running normalized by slot count; infinite CEs always
        report 0 pressure.
        """
        if self.infinite:
            return 0.0
        total = float(self._slots.capacity)
        return (self.queued + self._running) / total

    # -- submission --------------------------------------------------------
    def submit(self, record: JobRecord, queue_extra: float = 0.0) -> Event:
        """Enter *record* into the batch queue; returns its completion event.

        ``queue_extra`` is the middleware-induced extra queue residency
        (see :mod:`repro.grid.overhead`): the entry only becomes eligible
        for dispatch after that delay, without holding a worker slot.
        """
        record.enter(JobState.QUEUED, self.engine.now)
        record.computing_element = self.name
        completion = self.engine.event(name=f"done:{record.name}")
        entry = QueueEntry(record=record, completion=completion)
        if queue_extra > 0:
            self.engine.process(self._delayed_put(entry, queue_extra))
        else:
            self.policy.put(entry)
        return completion

    def _delayed_put(self, entry: QueueEntry, delay: float):
        yield self.engine.timeout(delay)
        self.policy.put(entry)

    def cancel_queued(
        self,
        reason: str = "cancelled",
        resubmit: bool = True,
        predicate: "Optional[Callable[[JobRecord], bool]]" = None,
    ) -> List[JobRecord]:
        """Withdraw jobs still waiting in the batch queue.

        Each withdrawn entry's completion event fails with
        :class:`~repro.grid.job.JobCancelledError`.  With
        ``resubmit=True`` the middleware treats that as "resubmit
        elsewhere, for free" — the proactive-resubmission arm of the
        monitoring feedback loop (an operator pulling jobs off a site
        that went bad).  With ``resubmit=False`` the withdrawal is
        final: the enactment service uses this to release a cancelled
        run's queued jobs back to the other tenants.  *predicate*
        restricts the withdrawal to matching records (e.g. one run's
        jobs on a shared testbed); None withdraws everything queued.
        Jobs already dispatched to a worker are left alone.  Returns
        the withdrawn records.
        """
        from repro.grid.job import JobCancelledError

        cancelled: List[JobRecord] = []
        for entry in self.policy.entries():
            if predicate is not None and not predicate(entry.record):
                continue
            if not self.policy.remove(entry):
                continue
            record = entry.record
            record.enter(JobState.CANCELLED, self.engine.now)
            cancelled.append(record)
            if not entry.completion.triggered:
                entry.completion.fail(JobCancelledError(record, reason, resubmit=resubmit))
        return cancelled

    def cancel_job(
        self, record: JobRecord, reason: str = "cancelled", resubmit: bool = True
    ) -> bool:
        """Withdraw one specific job still waiting in the batch queue.

        The timeout-enforcement arm of the retry policies: an attempt
        that sat queued past its deadline is pulled back so the
        middleware can resubmit it elsewhere.  Returns False when the
        job already left the queue (dispatched or running) — a running
        attempt cannot be reclaimed, the middleware abandons it instead.
        """
        from repro.grid.job import JobCancelledError

        for entry in self.policy.entries():
            if entry.record is record:
                if not self.policy.remove(entry):
                    return False
                record.enter(JobState.CANCELLED, self.engine.now)
                if not entry.completion.triggered:
                    entry.completion.fail(JobCancelledError(record, reason, resubmit=resubmit))
                return True
        return False

    # -- dispatch ------------------------------------------------------------
    def _down_until(self) -> float:
        """End of the outage window this CE currently sits in (or now).

        A down CE stops dispatching: its queue backs up, its load
        estimate climbs, and a least-loaded broker steers new jobs
        elsewhere — the outage degrades capacity without failing jobs.
        """
        grid = self.grid
        if grid is None or grid.outages.empty:
            return self.engine.now
        if not grid.entity_down(self.name, self.site, self.engine.now):
            return self.engine.now
        return grid.entity_next_up(self.name, self.site, self.engine.now)

    def _dispatch_loop(self):
        """Forever: pick next queued entry, grab a slot, run the job."""
        while True:
            entry = yield self.policy.get()
            self._dispatching += 1
            request = self._slots.request()
            yield request
            # Outage windows can chain (flapping); loop until truly up.
            while True:
                resume = self._down_until()
                if resume <= self.engine.now:
                    break
                yield self.engine.timeout(resume - self.engine.now)
            self._dispatching -= 1
            self.engine.process(
                self._run(entry, request), name=f"run:{entry.record.name}"
            )

    def _run(self, entry: QueueEntry, slot_request: Event):
        record = entry.record
        engine = self.engine
        worker = next(self._worker_cycle) if self._worker_cycle else None
        speed = worker.speed if worker else 1.0
        record.worker_node = worker.name if worker else f"{self.name}/elastic"
        self._running += 1
        try:
            record.enter(JobState.RUNNING, engine.now)
            grid = self.grid
            bus = grid.instrumentation if grid is not None else None

            # Stage in: pull every input file from its closest replica.
            # Byte totals accumulate as ints (LogicalFile sizes are
            # interned): per-link sums stay equal to global totals.
            stage_in = 0.0
            stage_in_bytes = 0
            stage_in_start = engine.now
            if grid is not None and grid.chaos_enabled:
                # Chaos path: per-file retry/failover generators (the
                # bulk path below cannot express mid-transfer faults).
                for gfn in record.description.input_files:
                    stage_in += yield from grid.stage_in_process(gfn, self.site, record)
                    stage_in_bytes += grid.catalog.lookup(gfn).size
            elif grid is not None:
                for gfn in record.description.input_files:
                    stage_in += grid.stage_in_time(gfn, self.site, record)
                    stage_in_bytes += grid.catalog.lookup(gfn).size
            if stage_in > 0 and not (grid is not None and grid.chaos_enabled):
                yield engine.timeout(stage_in)
            record.stage_in_time = stage_in
            if bus is not None and record.description.input_files:
                bus.metrics.counter("grid.transfer.bytes_in").inc(stage_in_bytes)
                bus.record(
                    "job.stage_in",
                    "grid",
                    stage_in_start,
                    engine.now,
                    parent=grid.attempt_span(record.job_id),
                    job_id=record.job_id,
                    ce=self.name,
                    files=len(record.description.input_files),
                    bytes=stage_in_bytes,
                    **{
                        key: record.description.tags[key]
                        for key in ("tenant", "run")
                        if key in record.description.tags
                    },
                )

            # Execute the payload for its sampled duration.
            rng = grid.streams.get(f"compute:{self.name}") if grid else self._fallback_rng
            duration = record.description.compute_distribution().sample(rng) / speed
            if duration > 0:
                yield engine.timeout(duration)
            record.execution_time = duration

            # Stage out: push and register produced files.
            stage_out = 0.0
            stage_out_bytes = 0
            stage_out_start = engine.now
            if grid is not None and grid.chaos_enabled:
                # Chaos path: the generator registers each file on the
                # SE that actually received it (local SE may be down).
                for produced in record.description.output_files:
                    stage_out += yield from grid.stage_out_process(
                        produced, self.site, record
                    )
                    stage_out_bytes += produced.size
            elif grid is not None:
                for produced in record.description.output_files:
                    stage_out += grid.stage_out_time(produced, self.site, record)
                    stage_out_bytes += produced.size
            if stage_out > 0 and not (grid is not None and grid.chaos_enabled):
                yield engine.timeout(stage_out)
            record.stage_out_time = stage_out
            if grid is not None and not grid.chaos_enabled:
                for produced in record.description.output_files:
                    grid.register_output(produced, self.site)
            if bus is not None and record.description.output_files:
                bus.metrics.counter("grid.transfer.bytes_out").inc(stage_out_bytes)
                bus.record(
                    "job.stage_out",
                    "grid",
                    stage_out_start,
                    engine.now,
                    parent=grid.attempt_span(record.job_id),
                    job_id=record.job_id,
                    ce=self.name,
                    files=len(record.description.output_files),
                    bytes=stage_out_bytes,
                    **{
                        key: record.description.tags[key]
                        for key in ("tenant", "run")
                        if key in record.description.tags
                    },
                )

            # Evaluate the Python payload: real outputs for simulated work.
            if record.description.payload is not None:
                record.result = record.description.payload()

            self._completed += 1
            entry.completion.succeed(record)
        except BaseException as exc:  # pragma: no cover - defensive
            if not entry.completion.triggered:
                entry.completion.fail(exc)
            else:
                raise
        finally:
            self._running -= 1
            self._slots.release(slot_request)

    def __repr__(self) -> str:
        return (
            f"<ComputingElement {self.name!r} site={self.site!r} "
            f"slots={self.total_slots} queued={self.queued} running={self.running}>"
        )


@dataclass
class Site:
    """A grid site: computing element(s) plus a storage element."""

    name: str
    computing_elements: List[ComputingElement]
    storage_element: Any  # StorageElement; Any avoids an import cycle

    def __post_init__(self) -> None:
        if not self.computing_elements:
            raise ValueError(f"site {self.name!r} needs at least one CE")
