"""Retry policies and budgets for grid job resubmission.

The middleware's original behavior — resubmit immediately, up to the
fault model's ``max_attempts`` — is the paper's Figure 6 story ("D0 was
submitted twice because an error occurred") taken literally.  Real
users do better: they back off before hammering a sick site again, cap
how long a single attempt may sit in a queue, and stop burning grid
time on a job (or a service) that keeps failing.

:class:`RetryPolicy` captures those choices declaratively:

* **backoff** — ``fixed`` (constant pause) or ``exponential``
  (``base * multiplier**(n-1)``, capped by ``max_delay``), with
  deterministic seeded jitter so seeded runs stay reproducible,
* **per-attempt timeout** — an attempt still queued after
  ``attempt_timeout`` seconds is withdrawn (or, if already running,
  abandoned) and retried elsewhere,
* **per-job deadline** — no new attempt starts once ``job_deadline``
  seconds have elapsed since first submission,
* **attempt cap** — ``max_attempts`` overrides the fault model's cap.

:class:`RetryBudget` bounds *retries* (attempts beyond the first)
across a whole run and/or per service, so one pathological service
cannot starve the rest of the workflow of grid time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative resubmission policy applied by the middleware."""

    #: "fixed" or "exponential"
    kind: str = "fixed"
    #: pause before retry n=1 (seconds); 0 = immediate resubmission
    base_delay: float = 0.0
    #: exponential growth factor (ignored for fixed backoff)
    multiplier: float = 2.0
    #: ceiling on any single backoff pause (None = uncapped)
    max_delay: Optional[float] = None
    #: +/- fraction of the pause drawn from the seeded retry stream
    jitter: float = 0.0
    #: total attempts allowed (None = defer to FaultModel.max_attempts)
    max_attempts: Optional[int] = None
    #: seconds one attempt may take before being withdrawn/abandoned
    attempt_timeout: Optional[float] = None
    #: seconds after first submission beyond which no attempt starts
    job_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "exponential"):
            raise ValueError(f"kind must be 'fixed' or 'exponential', got {self.kind!r}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError(f"attempt_timeout must be > 0, got {self.attempt_timeout}")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ValueError(f"job_deadline must be > 0, got {self.job_deadline}")

    @classmethod
    def default(cls) -> "RetryPolicy":
        """Immediate resubmission, fault-model attempt cap — the legacy loop."""
        return cls()

    @classmethod
    def fixed(cls, delay: float, **overrides) -> "RetryPolicy":
        """Constant *delay* seconds between attempts."""
        return cls(kind="fixed", base_delay=delay, **overrides)

    @classmethod
    def exponential(
        cls,
        base_delay: float,
        multiplier: float = 2.0,
        max_delay: Optional[float] = None,
        jitter: float = 0.0,
        **overrides,
    ) -> "RetryPolicy":
        """Exponential backoff: ``base * multiplier**(n-1)``, capped, jittered."""
        return cls(
            kind="exponential",
            base_delay=base_delay,
            multiplier=multiplier,
            max_delay=max_delay,
            jitter=jitter,
            **overrides,
        )

    def backoff(self, failures: int, rng: np.random.Generator) -> float:
        """The pause before the retry following the *failures*-th failure.

        Jitter draws exactly one number from *rng* whenever jitter is
        configured, so seeded runs remain reproducible and comparable
        across policies with the same jitter setting.
        """
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if self.kind == "exponential":
            delay = self.base_delay * self.multiplier ** (failures - 1)
        else:
            delay = self.base_delay
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, delay)

    def describe(self) -> str:
        """One-line human summary (shows up in benchmark tables)."""
        parts = [self.kind]
        if self.base_delay:
            parts.append(f"base={self.base_delay:g}s")
        if self.kind == "exponential":
            parts.append(f"x{self.multiplier:g}")
            if self.max_delay is not None:
                parts.append(f"cap={self.max_delay:g}s")
        if self.jitter:
            parts.append(f"jitter={self.jitter:.0%}")
        if self.max_attempts is not None:
            parts.append(f"attempts<={self.max_attempts}")
        if self.attempt_timeout is not None:
            parts.append(f"attempt_timeout={self.attempt_timeout:g}s")
        if self.job_deadline is not None:
            parts.append(f"deadline={self.job_deadline:g}s")
        return " ".join(parts)


class RetryBudget:
    """Mutable retry allowance shared by every job of one grid.

    Counts *retries* — attempts beyond a job's first — against a
    run-wide cap and/or a per-service cap (services are identified by
    the ``service`` job tag; untagged jobs count under their owner).
    ``try_spend`` is atomic: it either books the retry or denies it
    without partial accounting.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        per_service: Optional[int] = None,
    ) -> None:
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if per_service is not None and per_service < 0:
            raise ValueError(f"per_service must be >= 0, got {per_service}")
        self.total = total
        self.per_service = per_service
        self.spent = 0
        self.spent_by_service: Dict[str, int] = {}
        self.denied = 0

    @classmethod
    def unlimited(cls) -> "RetryBudget":
        """No cap anywhere — the legacy behavior."""
        return cls()

    def remaining(self, service: Optional[str] = None) -> Optional[float]:
        """Retries left (run-wide, or for *service*); None = unlimited."""
        bounds = []
        if self.total is not None:
            bounds.append(self.total - self.spent)
        if service is not None and self.per_service is not None:
            bounds.append(self.per_service - self.spent_by_service.get(service, 0))
        if not bounds:
            return None
        return max(0, min(bounds))

    def try_spend(self, service: str) -> bool:
        """Book one retry for *service*; False when a cap is exhausted."""
        if self.total is not None and self.spent >= self.total:
            self.denied += 1
            return False
        if (
            self.per_service is not None
            and self.spent_by_service.get(service, 0) >= self.per_service
        ):
            self.denied += 1
            return False
        self.spent += 1
        self.spent_by_service[service] = self.spent_by_service.get(service, 0) + 1
        return True

    def __repr__(self) -> str:
        return (
            f"<RetryBudget total={self.total} per_service={self.per_service} "
            f"spent={self.spent} denied={self.denied}>"
        )
