"""Batch-queue scheduling policies for computing elements.

Each EGEE computing center "runs its internal batch scheduler"
(Section 4.3).  A policy owns the set of queued entries and decides
which one runs next when the computing element has a free worker slot.

Policies implement a blocking ``get``: the CE dispatch loop asks for
the next entry and is woken as soon as the policy can produce one.
All policies are deterministic given the arrival order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Optional

from repro.sim.engine import Engine, Event

__all__ = ["QueuePolicy", "FifoPolicy", "FairSharePolicy", "ShortestJobFirstPolicy"]


class QueuePolicy:
    """Interface: a queue of entries with a blocking, policy-driven get."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._getter: Optional[Event] = None  # the CE loop's pending request

    # -- policy internals to override ----------------------------------
    def _enqueue(self, entry: Any) -> None:
        raise NotImplementedError

    def _dequeue(self) -> Any:
        """Pick and remove the next entry.  Only called when non-empty."""
        raise NotImplementedError

    def _remove(self, entry: Any) -> bool:
        """Withdraw *entry* if present; True when something was removed."""
        raise NotImplementedError

    def _entries(self) -> "list[Any]":
        """Every queued entry (no particular order guarantee)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    def put(self, entry: Any) -> None:
        """Add *entry*; wakes the CE loop if it is waiting."""
        self._enqueue(entry)
        if self._getter is not None and len(self) > 0:
            getter, self._getter = self._getter, None
            getter.succeed(self._dequeue())

    def get(self) -> Event:
        """Event succeeding with the next entry chosen by the policy.

        Only one outstanding get at a time (the CE has one dispatch
        loop); a second concurrent get is a programming error.
        """
        if self._getter is not None:
            raise RuntimeError(f"{type(self).__name__} already has a pending get")
        evt = self.engine.event(name=f"dequeue:{type(self).__name__}")
        if len(self) > 0:
            evt.succeed(self._dequeue())
        else:
            self._getter = evt
        return evt

    def remove(self, entry: Any) -> bool:
        """Withdraw a still-queued *entry* (job cancellation).

        Returns True when the entry was present and removed; an entry
        already dispatched (or never enqueued) returns False — the
        caller must then treat the job as running.
        """
        return self._remove(entry)

    def entries(self) -> "list[Any]":
        """A snapshot of currently queued entries."""
        return self._entries()


class FifoPolicy(QueuePolicy):
    """Strict arrival-order scheduling (the common PBS/LSF default)."""

    def __init__(self, engine: Engine) -> None:
        super().__init__(engine)
        self._queue: Deque[Any] = deque()

    def _enqueue(self, entry: Any) -> None:
        self._queue.append(entry)

    def _dequeue(self) -> Any:
        return self._queue.popleft()

    def _remove(self, entry: Any) -> bool:
        try:
            self._queue.remove(entry)
        except ValueError:
            return False
        return True

    def _entries(self) -> "list[Any]":
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class FairSharePolicy(QueuePolicy):
    """Round-robin over job owners, FIFO within an owner.

    Prevents one heavy user (e.g. the background load) from starving
    others — the fairness mechanism production batch systems apply
    across virtual organizations.
    """

    def __init__(self, engine: Engine) -> None:
        super().__init__(engine)
        self._per_owner: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._count = 0

    def _owner_of(self, entry: Any) -> str:
        record = getattr(entry, "record", None)
        if record is not None:
            return record.description.owner
        return "anonymous"

    def _enqueue(self, entry: Any) -> None:
        owner = self._owner_of(entry)
        if owner not in self._per_owner:
            self._per_owner[owner] = deque()
        self._per_owner[owner].append(entry)
        self._count += 1

    def _dequeue(self) -> Any:
        # Take from the first owner in rotation order, then move that
        # owner to the back so the next pick favours someone else.
        owner, queue = next(iter(self._per_owner.items()))
        entry = queue.popleft()
        self._per_owner.move_to_end(owner)
        if not queue:
            del self._per_owner[owner]
        self._count -= 1
        return entry

    def _remove(self, entry: Any) -> bool:
        owner = self._owner_of(entry)
        queue = self._per_owner.get(owner)
        if queue is None:
            return False
        try:
            queue.remove(entry)
        except ValueError:
            return False
        if not queue:
            del self._per_owner[owner]
        self._count -= 1
        return True

    def _entries(self) -> "list[Any]":
        return [entry for queue in self._per_owner.values() for entry in queue]

    def __len__(self) -> int:
        return self._count


class ShortestJobFirstPolicy(QueuePolicy):
    """Pick the entry with the smallest *expected* compute time.

    Requires entries to expose ``record.description`` — falls back to
    arrival order among unknown entries.  Included for scheduling
    ablations; not used by the paper reproduction defaults.
    """

    def __init__(self, engine: Engine) -> None:
        super().__init__(engine)
        self._items: list[Any] = []
        self._arrival: Dict[int, int] = {}
        self._counter = 0

    def _expected(self, entry: Any) -> float:
        record = getattr(entry, "record", None)
        if record is None:
            return float("inf")
        return record.description.compute_distribution().mean()

    def _enqueue(self, entry: Any) -> None:
        self._items.append(entry)
        self._arrival[id(entry)] = self._counter
        self._counter += 1

    def _dequeue(self) -> Any:
        best = min(self._items, key=lambda e: (self._expected(e), self._arrival[id(e)]))
        self._items.remove(best)
        del self._arrival[id(best)]
        return best

    def _remove(self, entry: Any) -> bool:
        try:
            self._items.remove(entry)
        except ValueError:
            return False
        del self._arrival[id(entry)]
        return True

    def _entries(self) -> "list[Any]":
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)
