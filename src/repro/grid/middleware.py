"""The middleware façade: how users (and services) talk to the grid.

:class:`Grid` bundles the whole infrastructure — sites, broker, replica
catalog, network, overhead/fault models — behind the two operations the
service layer needs:

* :meth:`Grid.submit` — submit a :class:`~repro.grid.job.JobDescription`
  and get a :class:`SubmissionHandle` whose ``completion`` event fires
  when the job is done (the LCG2 submit-then-poll cycle, collapsed into
  an event the enactor can wait on), and
* :meth:`Grid.add_input_file` — register input data on a storage
  element (the equivalent of ``lcg-cr`` publishing a file under a GFN).

The job lifecycle implemented by :meth:`Grid._run_job`, per attempt::

    SUBMITTED --submission latency--> (at the broker)
    --brokering latency, broker slot held--> MATCHED at some CE
    [fault?] --detection delay--> FAILED, maybe resubmit
    --CE batch queue (+ queue_extra residency)--> RUNNING
    --stage-in + execute + stage-out--> done on CE
    --completion notification--> DONE

All timestamps land in the job's :class:`~repro.grid.job.JobRecord`,
which the experiment harness mines for overhead/makespan statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.grid.broker import ResourceBroker
from repro.grid.faults import DurabilityFaultModel, FaultModel, OutageSchedule
from repro.grid.job import (
    JobCancelledError,
    JobDescription,
    JobFailedError,
    JobRecord,
    JobState,
)
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site
from repro.grid.retry import RetryBudget, RetryPolicy
from repro.grid.storage import (
    LogicalFile,
    ReplicaCatalog,
    ReplicaUnavailableError,
    StorageElement,
)
from repro.grid.transfer import NetworkModel
from repro.observability.bus import InstrumentationBus
from repro.observability.spans import Span
from repro.sim.engine import Engine, Event
from repro.util.rng import RandomStreams

__all__ = ["Grid", "SubmissionHandle", "TransferContext", "TransferFailedError"]

#: the purposes a data-plane transfer can serve (see TransferContext)
TRANSFER_PURPOSES = ("stage-in", "stage-out", "intermediate", "cache-refill", "repair")


class TransferFailedError(RuntimeError):
    """A stage-in/out exhausted its transfer retry budget.

    Live replicas still exist (otherwise the failure would be a
    :class:`~repro.grid.storage.ReplicaUnavailableError`): the *network*
    gave up, not the storage.  Carried by the failing job's completion
    so failure reports can tell a transfer storm from data death.
    """

    def __init__(self, gfn: str, attempts: int, last_error: str) -> None:
        self.gfn = gfn
        self.attempts = attempts
        super().__init__(
            f"transfer of {gfn!r} failed after {attempts} attempts: {last_error}"
        )


@dataclass(frozen=True)
class TransferContext:
    """What the data plane knows about the transfer it is timing.

    The raw :class:`~repro.grid.transfer.NetworkModel` observer only
    sees ``(src, dst, size, seconds)``; the grid publishes this context
    on :attr:`Grid.transfer_context` for the duration of each
    ``transfer_time`` evaluation so observers (the data-flow collector,
    the grid's own metrics hook) can attribute the bytes — which GFN
    moved, why (``stage-in`` of a primary input, ``intermediate``
    stage-in of an enactor-minted file, ``stage-out`` of a produced
    file, ``cache-refill`` of a file re-advertised from the result
    cache), and on behalf of which job / tenant / run.
    """

    purpose: str
    gfn: str
    job_id: Optional[int] = None
    service: Optional[str] = None
    tenant: Optional[str] = None
    run: Optional[str] = None


class SubmissionHandle:
    """What a submitter holds after :meth:`Grid.submit`.

    ``completion`` succeeds with the :class:`JobRecord` when the job
    reaches DONE, and fails with :class:`JobFailedError` if every
    attempt failed.
    """

    def __init__(self, record: JobRecord, completion: Event) -> None:
        self.record = record
        self.completion = completion

    @property
    def job_id(self) -> int:
        """The underlying job id."""
        return self.record.job_id

    def __repr__(self) -> str:
        return f"<SubmissionHandle job={self.record.name!r} state={self.record.state.value}>"


class Grid:
    """Façade over the whole simulated infrastructure."""

    def __init__(
        self,
        engine: Engine,
        streams: RandomStreams,
        sites: List[Site],
        overhead: OverheadModel,
        network: Optional[NetworkModel] = None,
        faults: Optional[FaultModel] = None,
        broker_strategy: str = "least-loaded",
        broker_concurrency: "int | float" = float("inf"),
        overhead_load_coupling: float = 0.0,
        name: str = "grid",
        instrumentation: Optional[InstrumentationBus] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        outages: Optional[OutageSchedule] = None,
        durability: Optional[DurabilityFaultModel] = None,
        transfer_retry: Optional[RetryPolicy] = None,
        repair_target: int = 1,
        repair_interval: float = 300.0,
    ) -> None:
        if not sites:
            raise ValueError("a grid needs at least one site")
        self.engine = engine
        self.streams = streams
        self.name = name
        self.sites = list(sites)
        self.overhead = overhead
        if not 0.0 <= overhead_load_coupling <= 1.0:
            raise ValueError(
                f"overhead_load_coupling must be in [0, 1], got {overhead_load_coupling}"
            )
        #: 0 = overheads independent of load; 1 = brokering/queue phases
        #: fully proportional to grid utilization (see load_factor()).
        self.overhead_load_coupling = overhead_load_coupling
        self.network = network if network is not None else NetworkModel()
        self.faults = faults if faults is not None else FaultModel.none()
        #: resubmission policy; the default reproduces the bare
        #: immediate-resubmit loop bounded by the fault model's cap
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy.default()
        #: run-wide / per-service retry allowance (unlimited by default)
        self.retry_budget = retry_budget if retry_budget is not None else RetryBudget.unlimited()
        #: deterministic down/up timeline for sites, CEs, and SEs
        self.outages = outages if outages is not None else OutageSchedule.none()
        #: replica loss/corruption injection on stage-in accesses
        self.durability = durability if durability is not None else DurabilityFaultModel.none()
        #: backoff policy for failed *transfers* (distinct from job retries)
        self.transfer_retry = (
            transfer_retry
            if transfer_retry is not None
            else RetryPolicy.exponential(base_delay=5.0, max_delay=120.0, max_attempts=4)
        )
        if repair_target < 1:
            raise ValueError(f"repair_target must be >= 1, got {repair_target}")
        if repair_interval <= 0:
            raise ValueError(f"repair_interval must be > 0, got {repair_interval}")
        #: desired healthy replicas per GFN (1 = repair daemon off)
        self.repair_target = repair_target
        self.repair_interval = repair_interval
        self.catalog = ReplicaCatalog()
        self.computing_elements: List[ComputingElement] = []
        self._storage_by_site: Dict[str, StorageElement] = {}
        for site in self.sites:
            for ce in site.computing_elements:
                ce.grid = self
                self.computing_elements.append(ce)
            self._storage_by_site[site.name] = site.storage_element
        self.broker = ResourceBroker(
            engine,
            self.computing_elements,
            rng=streams.get("broker"),
            strategy=broker_strategy,
            concurrency=broker_concurrency,
        )
        #: every record ever submitted through this façade, submission order
        self.records: List[JobRecord] = []
        self._in_flight = 0
        #: instrumentation bus; also set by an enactor that shares one
        self.instrumentation = instrumentation
        #: hot-path profiler (repro.observability.profiling); None = off
        self.profiler = None
        #: job_id -> currently open job.attempt span (CE staging parents here)
        self._attempt_spans: Dict[int, Span] = {}
        #: published attribution for the transfer currently being timed
        #: (see TransferContext); None outside stage-in/out evaluations
        self.transfer_context: Optional[TransferContext] = None
        #: GFNs minted by job stage-out (enactor-produced intermediates)
        self._minted_gfns: Set[str] = set()
        #: GFNs re-advertised from the result cache (warm-run refills)
        self._refill_gfns: Set[str] = set()
        # Observational hooks (multicast: they compose with any observer
        # a user installed before or installs after; they check the bus
        # at call time, so wiring instrumentation later works).
        self.network.add_observer(self._observe_transfer)
        self.catalog.add_observer(self._observe_register)
        total_slots = 0.0
        for ce in self.computing_elements:
            capacity = ce.total_slots
            if capacity == float("inf"):
                total_slots = float("inf")
                break
            total_slots += capacity
        self._total_slots = total_slots
        # Chaos background processes are spawned only when their feature
        # is actually configured: an extra process on a quiet grid would
        # renumber engine events and shift every seeded baseline.
        if not self.outages.empty:
            engine.process(self._outage_beacon(), name=f"{name}:outage-beacon")
        if self.repair_target > 1:
            engine.process(self._repair_loop(), name=f"{name}:replica-repair")

    # -- data management -------------------------------------------------
    @property
    def default_site(self) -> Site:
        """Where un-sited inputs are registered (first site by convention)."""
        return self.sites[0]

    def storage_at(self, site_name: str) -> Optional[StorageElement]:
        """The SE at *site_name*, or None if that site has no storage."""
        return self._storage_by_site.get(site_name)

    def add_input_file(
        self,
        file: LogicalFile,
        site_name: Optional[str] = None,
        *,
        cache_refill: bool = False,
    ) -> None:
        """Register an input file replica on a storage element.

        ``cache_refill=True`` marks the file as re-advertised from a
        result cache (the enactor rehydrating a warm hit's outputs onto
        a fresh grid): later stage-ins of it are accounted under the
        ``cache-refill`` purpose instead of ``stage-in``.
        """
        target_site = site_name if site_name is not None else self.default_site.name
        se = self.storage_at(target_site)
        if se is None:
            raise ValueError(f"no storage element at site {target_site!r}")
        if cache_refill:
            self._refill_gfns.add(file.gfn)
        self.catalog.register(file, se)

    def _stage_in_purpose(self, gfn: str) -> str:
        if gfn in self._refill_gfns:
            return "cache-refill"
        if gfn in self._minted_gfns:
            return "intermediate"
        return "stage-in"

    def _transfer_attribution(
        self, purpose: str, gfn: str, record: Optional[JobRecord]
    ) -> TransferContext:
        if record is None:
            return TransferContext(purpose=purpose, gfn=gfn)
        tags = record.description.tags
        return TransferContext(
            purpose=purpose,
            gfn=gfn,
            job_id=record.job_id,
            service=str(tags.get("service", record.description.owner)),
            tenant=(str(tags["tenant"]) if "tenant" in tags else None),
            run=(str(tags["run"]) if "run" in tags else None),
        )

    def stage_in_time(
        self, gfn: str, site: str, record: Optional[JobRecord] = None
    ) -> float:
        """Seconds to pull *gfn* from its closest replica to *site*.

        *record* (the job staging the file) attributes the transfer in
        the published :attr:`transfer_context`.
        """
        file = self.catalog.lookup(gfn)
        replica = self.catalog.closest_replica(gfn, site)
        self.transfer_context = self._transfer_attribution(
            self._stage_in_purpose(gfn), gfn, record
        )
        try:
            return self.network.transfer_time(replica.site, site, file.size)
        finally:
            self.transfer_context = None

    def stage_out_time(
        self, file: LogicalFile, site: str, record: Optional[JobRecord] = None
    ) -> float:
        """Seconds to push a produced *file* from *site* to its SE.

        Outputs go to the local SE when the site has one (LAN cost),
        otherwise to the default site's SE (WAN cost).
        """
        se = self.storage_at(site)
        target_site = se.site if se is not None else self.default_site.name
        self.transfer_context = self._transfer_attribution("stage-out", file.gfn, record)
        try:
            return self.network.transfer_time(site, target_site, file.size)
        finally:
            self.transfer_context = None

    def register_output(self, file: LogicalFile, site: str) -> None:
        """Register a freshly produced file on the chosen SE."""
        se = self.storage_at(site)
        if se is None:
            se = self.default_site.storage_element
        self._minted_gfns.add(file.gfn)
        self.catalog.register(file, se)

    # -- data-plane chaos ---------------------------------------------------
    @property
    def chaos_enabled(self) -> bool:
        """True when any data-plane fault injection or repair is on.

        Computing elements switch from the legacy bulk staging path to
        the per-file retry/failover generators only under this flag, so
        every pre-chaos testbed keeps its exact seeded event sequence.
        """
        return (
            not self.outages.empty
            or self.durability.active
            or self.network.has_faults
            or self.repair_target > 1
        )

    def entity_down(self, entity_name: str, site_name: str, now: float) -> bool:
        """Is an entity down, directly or through its site's outage?"""
        return self.outages.is_down(entity_name, now) or self.outages.is_down(
            site_name, now
        )

    def entity_next_up(self, entity_name: str, site_name: str, now: float) -> float:
        """When both the entity and its site are next up (>= *now*)."""
        return max(
            self.outages.next_up(entity_name, now),
            self.outages.next_up(site_name, now),
        )

    def storage_down(self, se: StorageElement, now: Optional[float] = None) -> bool:
        """Is a storage element inside a down-window right now?"""
        when = self.engine.now if now is None else now
        return self.entity_down(se.name, se.site, when)

    def _counter(self, name: str, value: float = 1) -> None:
        bus = self.instrumentation
        if bus is not None:
            bus.metrics.counter(name).inc(value)

    def _chaos_span(self, name: str, start: float, **attributes) -> None:
        bus = self.instrumentation
        if bus is not None:
            bus.record(
                name,
                "grid",
                start,
                self.engine.now,
                parent=bus.run_span,
                status="error",
                **attributes,
            )

    def stage_in_process(self, gfn: str, site: str, record: Optional[JobRecord] = None):
        """Stage *gfn* in to *site* under chaos; generator, returns seconds.

        Walks the deterministic failover order over live verified
        replicas: replicas discovered lost are skipped in place,
        corrupted ones are quarantined after the (wasted) transfer,
        failed transfers back off per :attr:`transfer_retry`, and when
        every healthy replica sits behind an SE outage the stage-in
        simply waits the outage out (outages delay, only loss kills).
        Raises :class:`ReplicaUnavailableError` when no usable replica
        survives and :class:`TransferFailedError` when the retry budget
        runs dry — both contained by the job machinery.
        """
        engine = self.engine
        file = self.catalog.lookup(gfn)
        policy = self.transfer_retry
        max_attempts = policy.max_attempts if policy.max_attempts is not None else 4
        backoff_rng = self.streams.get("transfer-backoff")
        fault_rng = self.streams.get("transfer-faults")
        replica_rng = self.streams.get("replica-faults")
        network_faulty = self.network.has_faults
        durability_on = self.durability.active
        purpose = self._stage_in_purpose(gfn)
        sites_tried: List[str] = []
        elapsed = 0.0
        failures = 0
        last_error = "no transfer attempted"
        while True:
            ranked = self.catalog.failover_order(gfn, site)
            if not ranked:
                tried = sites_tried or [se.site for se in self.catalog.replicas(gfn)]
                raise ReplicaUnavailableError(gfn, tuple(dict.fromkeys(tried)))
            live = [se for se in ranked if not self.storage_down(se)]
            if not live:
                # Every healthy replica is behind an outage: wait for the
                # earliest one to come back, then re-evaluate.  Outage
                # windows are finite, so this terminates.
                resume = min(
                    self.entity_next_up(se.name, se.site, engine.now) for se in ranked
                )
                if resume <= engine.now:
                    continue
                self._counter("grid.transfer.outage_waits")
                yield engine.timeout(resume - engine.now)
                continue
            faulted = False
            for se in live:
                outcome = (
                    self.durability.access_outcome(replica_rng)
                    if durability_on
                    else "ok"
                )
                if outcome == "lost":
                    # Metadata says the replica exists but the bytes are
                    # gone — detected instantly, fail over in place.
                    se.mark_lost(gfn)
                    sites_tried.append(se.site)
                    self._counter("grid.replicas.lost")
                    self._chaos_span(
                        "replica.loss", engine.now, se=se.name, gfn=gfn
                    )
                    continue
                started = engine.now
                seconds = self.network.raw_transfer_time(
                    se.site, site, file.size, now=engine.now
                )
                if outcome == "corrupt":
                    # The copy completes, then checksum verification
                    # rejects it: time wasted, replica quarantined.
                    yield engine.timeout(seconds)
                    elapsed += seconds
                    se.quarantine(gfn)
                    sites_tried.append(se.site)
                    failures += 1
                    last_error = f"checksum mismatch from {se.name} (expected {file.checksum})"
                    self._counter("grid.replicas.quarantined")
                    self._chaos_span(
                        "replica.corruption", started, se=se.name, gfn=gfn
                    )
                    faulted = True
                    break
                if network_faulty and float(fault_rng.random()) < (
                    self.network.failure_probability_for(se.site, site)
                ):
                    # Mid-flight transfer failure: the time is spent, the
                    # bytes never land (so the ledger never sees them).
                    yield engine.timeout(seconds)
                    elapsed += seconds
                    sites_tried.append(se.site)
                    failures += 1
                    last_error = f"transfer from {se.name} to {site} failed"
                    self._counter("grid.transfer.failures")
                    self._chaos_span(
                        "transfer.fault", started, src=se.site, dst=site, gfn=gfn
                    )
                    faulted = True
                    break
                self.transfer_context = self._transfer_attribution(purpose, gfn, record)
                try:
                    seconds = self.network.transfer_time(
                        se.site, site, file.size, now=engine.now
                    )
                finally:
                    self.transfer_context = None
                yield engine.timeout(seconds)
                return elapsed + seconds
            if not faulted:
                # every live candidate was discovered lost; re-rank (the
                # next pass either finds a survivor or raises).
                continue
            if failures >= max_attempts:
                raise TransferFailedError(gfn, failures, last_error)
            self._counter("grid.transfer.retries")
            delay = policy.backoff(failures, backoff_rng)
            if delay > 0:
                yield engine.timeout(delay)

    def _stage_out_target(self, site: str, now: float) -> Optional[StorageElement]:
        """The SE a produced file goes to under chaos: the local SE,
        else the default site's, else the first live SE by name; None
        when every SE is down."""
        ordered: List[StorageElement] = []
        local = self.storage_at(site)
        if local is not None:
            ordered.append(local)
        default = self.default_site.storage_element
        if default not in ordered:
            ordered.append(default)
        for se in sorted(self._storage_by_site.values(), key=lambda s: s.name):
            if se not in ordered:
                ordered.append(se)
        for se in ordered:
            if not self.storage_down(se, now):
                return se
        return None

    def stage_out_process(self, file: LogicalFile, site: str, record: Optional[JobRecord] = None):
        """Stage a produced *file* out from *site* under chaos; generator.

        Fails over to the default site's SE (then any live SE) when the
        local one is down, retries failed transfers with backoff, and
        registers the file on the SE that actually received it.
        Returns the seconds spent.
        """
        engine = self.engine
        policy = self.transfer_retry
        max_attempts = policy.max_attempts if policy.max_attempts is not None else 4
        backoff_rng = self.streams.get("transfer-backoff")
        fault_rng = self.streams.get("transfer-faults")
        network_faulty = self.network.has_faults
        elapsed = 0.0
        failures = 0
        last_error = "no transfer attempted"
        while True:
            target = self._stage_out_target(site, engine.now)
            if target is None:
                resume = min(
                    self.entity_next_up(se.name, se.site, engine.now)
                    for se in self._storage_by_site.values()
                )
                if resume <= engine.now:
                    continue
                self._counter("grid.transfer.outage_waits")
                yield engine.timeout(resume - engine.now)
                continue
            started = engine.now
            seconds = self.network.raw_transfer_time(
                site, target.site, file.size, now=engine.now
            )
            if network_faulty and float(fault_rng.random()) < (
                self.network.failure_probability_for(site, target.site)
            ):
                yield engine.timeout(seconds)
                elapsed += seconds
                failures += 1
                last_error = f"transfer from {site} to {target.name} failed"
                self._counter("grid.transfer.failures")
                self._chaos_span(
                    "transfer.fault", started, src=site, dst=target.site, gfn=file.gfn
                )
                if failures >= max_attempts:
                    raise TransferFailedError(file.gfn, failures, last_error)
                self._counter("grid.transfer.retries")
                delay = policy.backoff(failures, backoff_rng)
                if delay > 0:
                    yield engine.timeout(delay)
                continue
            self.transfer_context = self._transfer_attribution(
                "stage-out", file.gfn, record
            )
            try:
                seconds = self.network.transfer_time(
                    site, target.site, file.size, now=engine.now
                )
            finally:
                self.transfer_context = None
            yield engine.timeout(seconds)
            self._minted_gfns.add(file.gfn)
            self.catalog.register(file, target)
            return elapsed + seconds

    def _outage_beacon(self):
        """Emit a ground-truth ``se.outage`` span at each SE down-window.

        The schedule is the grid's own configuration, so every emitted
        span is a real injected outage — the monitor turns them into
        ``se-outage`` alerts with zero false positives by construction.
        """
        engine = self.engine
        events = []
        for se in sorted(self._storage_by_site.values(), key=lambda s: s.name):
            for subject in dict.fromkeys((se.name, se.site)):
                for start, end in self.outages.down_windows(subject):
                    events.append((start, end, se.name))
        for start, end, se_name in sorted(events):
            if start > engine.now:
                yield engine.timeout(start - engine.now)
            self._counter("grid.se.outage_windows")
            bus = self.instrumentation
            if bus is not None:
                bus.record(
                    "se.outage",
                    "grid",
                    engine.now,
                    engine.now,
                    parent=bus.run_span,
                    status="error",
                    se=se_name,
                    until=end,
                )

    def _repair_loop(self):
        """Background re-replication: copy under-replicated GFNs to live
        SEs until each has :attr:`repair_target` healthy replicas.

        Cycle-first: the daemon does an initial replication pass as soon
        as the simulation starts (input files are registered before the
        clock moves), then rescans every :attr:`repair_interval`.
        """
        engine = self.engine
        while True:
            yield from self._repair_cycle()
            yield engine.timeout(self.repair_interval)

    def _repair_cycle(self):
        engine = self.engine
        for gfn in list(self.catalog.gfns()):
            healthy = self.catalog.healthy_replicas(gfn)
            live = sorted(
                (se for se in healthy if not self.storage_down(se)),
                key=lambda se: se.name,
            )
            if not live or len(healthy) >= self.repair_target:
                continue
            holders = {se.name for se in healthy}
            targets = sorted(
                (
                    se
                    for se in self._storage_by_site.values()
                    if se.name not in holders and not self.storage_down(se)
                ),
                key=lambda se: se.name,
            )
            src = live[0]
            file = self.catalog.lookup(gfn)
            for dst in targets[: self.repair_target - len(healthy)]:
                self.transfer_context = TransferContext(purpose="repair", gfn=gfn)
                try:
                    seconds = self.network.transfer_time(
                        src.site, dst.site, file.size, now=engine.now
                    )
                finally:
                    self.transfer_context = None
                yield engine.timeout(seconds)
                self.catalog.register(file, dst)
                self._counter("grid.repair.transfers")

    # -- instrumentation hooks ---------------------------------------------
    def _observe_transfer(self, src: str, dst: str, size: float, seconds: float) -> None:
        bus = self.instrumentation
        if bus is None:
            return
        counter = bus.metrics.counter
        counter("grid.network.transfers").inc()
        counter("grid.network.bytes").inc(size)
        bus.metrics.histogram("grid.network.transfer_seconds").observe(seconds)
        # Data-plane byte ledger: everything the middleware moves
        # site-to-site is "peer moved" (it never passes through the
        # enactor host), split by purpose and by directed link so every
        # runstore row carries bytes.* counters without any collector
        # attached.  Purpose keys: bytes.stage_in / bytes.stage_out /
        # bytes.intermediate / bytes.cache_refill.
        context = self.transfer_context
        purpose = context.purpose if context is not None else "stage-in"
        counter("bytes.peer_moved").inc(size)
        counter("bytes.total").inc(size)
        counter(f"bytes.{purpose.replace('-', '_')}").inc(size)
        counter(f"bytes.link.{src}.{dst}").inc(size)

    def _observe_register(self, file: LogicalFile, element: StorageElement) -> None:
        bus = self.instrumentation
        if bus is None:
            return
        bus.metrics.counter("grid.catalog.registrations").inc()

    # -- load-dependent overheads ------------------------------------------
    def load_factor(self) -> float:
        """Current utilization: jobs in flight over total worker slots.

        Production-grid queue waits depend on how loaded the shared
        infrastructure is: a lone sequentially-submitted job (the NOP
        regime) waits far less than one of 750 simultaneous submissions
        (the DP regime).  Capped at 1.0; infinite testbeds report 0.
        """
        if self._total_slots == float("inf") or self._total_slots <= 0:
            return 0.0
        return min(1.0, self._in_flight / self._total_slots)

    def _overhead_scale(self) -> float:
        """Multiplier for the load-sensitive overhead phases.

        ``(1 - c) + c * load`` with c = ``overhead_load_coupling``:
        the nominal (calibrated) overhead is what a fully loaded grid
        pays; a quiet grid pays the ``1 - c`` floor.
        """
        c = self.overhead_load_coupling
        if c == 0.0:
            return 1.0
        return (1.0 - c) + c * self.load_factor()

    # -- job submission -----------------------------------------------------
    def submit(self, description: JobDescription) -> SubmissionHandle:
        """Submit a job; returns immediately with a handle."""
        profiler = self.profiler
        if profiler is None:
            return self._submit_unprofiled(description)
        profiler.enter("grid.submit")
        try:
            return self._submit_unprofiled(description)
        finally:
            profiler.exit()

    def _submit_unprofiled(self, description: JobDescription) -> SubmissionHandle:
        for gfn in description.input_files:
            if not self.catalog.knows(gfn):
                raise ValueError(
                    f"job {description.name!r} references unregistered input {gfn!r}"
                )
        record = JobRecord(description)
        self.records.append(record)
        completion = self.engine.event(name=f"job:{description.name}")
        job_span: Optional[Span] = None
        bus = self.instrumentation
        if bus is not None:
            bus.metrics.counter("grid.jobs.submitted").inc()
            # Multi-tenant runs tag their jobs so spans stay attributable
            # even when several enactments share this grid (the single
            # bus.run_span slot cannot distinguish them).
            tenancy = self._tenancy(record)
            job_span = bus.begin(
                "grid.job",
                "grid",
                self.engine.now,
                parent=bus.run_span,
                job_id=record.job_id,
                job_name=description.name,
                **tenancy,
            )
        self.engine.process(
            self._run_job(record, completion, job_span), name=f"job:{record.job_id}"
        )
        return SubmissionHandle(record, completion)

    # -- monitoring feedback ------------------------------------------------
    def set_health_provider(self, provider) -> None:
        """Wire a live health provider (e.g. a ``RunMonitor``) into
        brokering: least-loaded ranking demotes degraded CEs and avoids
        flagged ones while healthy alternatives exist."""
        self.broker.health = provider

    def alert_reactor(self, kinds=("straggler", "blackhole", "fault-burst")):
        """An alert sink that proactively resubmits queued jobs.

        Register the returned callable on a monitor
        (``monitor.add_sink(grid.alert_reactor())``): whenever a
        CE-scope alert of one of *kinds* fires, every job still waiting
        in that CE's batch queue is withdrawn and resubmitted through
        the broker — which, with the health provider wired, now steers
        them away from the flagged CE.  The Figure 6 operator reaction
        ("D0 was submitted twice because an error occurred"), automated.
        """
        by_name = {ce.name: ce for ce in self.computing_elements}

        def react(alert) -> None:
            if getattr(alert, "scope", None) != "ce" or alert.kind not in kinds:
                return
            ce = by_name.get(alert.subject)
            if ce is None:
                return
            cancelled = ce.cancel_queued(reason=f"{alert.kind} alert on {ce.name}")
            if cancelled and self.instrumentation is not None:
                self.instrumentation.metrics.counter(
                    "grid.jobs.proactive_resubmissions"
                ).inc(len(cancelled))

        return react

    def attempt_span(self, job_id: int) -> Optional[Span]:
        """The currently open ``job.attempt`` span of *job_id*, if any.

        Computing elements parent their stage-in/stage-out spans here;
        None when the grid is uninstrumented (or the job is between
        attempts).
        """
        return self._attempt_spans.get(job_id)

    def _run_job(self, record: JobRecord, completion: Event, job_span: Optional[Span] = None):
        engine = self.engine
        bus = self.instrumentation
        rng = self.streams.get("overhead")
        fault_rng = self.streams.get("faults")
        self._in_flight += 1
        if bus is not None:
            bus.metrics.gauge("grid.in_flight").set(self._in_flight)
        try:
            yield from self._attempts(record, completion, rng, fault_rng, job_span)
        except Exception as exc:
            # CE-level failures (e.g. a payload raising) must reach the
            # submitter through the handle, not crash the simulation.
            record.enter(JobState.FAILED, engine.now)
            record.record_failure(
                record.attempts, record.computing_element, str(exc), engine.now, kind="error"
            )
            if bus is not None and job_span is not None and job_span.open:
                bus.end(job_span, engine.now, status="error", error=str(exc))
            if not completion.triggered:
                completion.fail(exc)
        finally:
            self._in_flight -= 1
            if bus is not None:
                bus.metrics.gauge("grid.in_flight").set(self._in_flight)
            self._attempt_spans.pop(record.job_id, None)

    #: cancellations a single job may absorb without spending fault
    #: attempts; beyond this, each further cancellation consumes one
    #: (a termination guard against pathological cancel/resubmit loops)
    MAX_FREE_CANCELLATIONS = 5

    def _service_tag(self, record: JobRecord) -> str:
        """What retry budgets account a job under (service tag, else owner)."""
        return str(record.description.tags.get("service", record.description.owner))

    @staticmethod
    def _tenancy(record: JobRecord) -> Dict[str, str]:
        """Tenant/run attribution for a job's spans.

        Phase spans close in completion order, often *before* their
        parent ``grid.job`` span — so per-tenant telemetry replaying
        the stream cannot join through the parent.  Every span carries
        the tags directly instead.
        """
        return {
            key: record.description.tags[key]
            for key in ("tenant", "run")
            if key in record.description.tags
        }

    def _retry_pause(self, record: JobRecord, failures: int, backoff_rng, job_span):
        """Backoff pause between attempts, instrumented; generator helper."""
        delay = self.retry_policy.backoff(failures, backoff_rng)
        if delay <= 0:
            return
        bus = self.instrumentation
        started = self.engine.now
        yield self.engine.timeout(delay)
        if bus is not None:
            bus.metrics.histogram("grid.retry.backoff_seconds").observe(delay)
            bus.record(
                "job.backoff",
                "grid",
                started,
                self.engine.now,
                parent=job_span,
                job_id=record.job_id,
                attempt=record.attempts,
                seconds=delay,
            )

    def _attempts(
        self,
        record: JobRecord,
        completion: Event,
        rng,
        fault_rng,
        job_span: Optional[Span] = None,
    ):
        engine = self.engine
        bus = self.instrumentation
        policy = self.retry_policy
        budget = self.retry_budget
        service_tag = self._service_tag(record)
        backoff_rng = self.streams.get("retry-backoff")
        max_attempts = (
            policy.max_attempts if policy.max_attempts is not None else self.faults.max_attempts
        )
        last_error = "unknown"
        fault_attempts = 0
        tries = 0
        cancellations = 0
        first_submitted = engine.now
        while fault_attempts < max_attempts:
            if (
                policy.job_deadline is not None
                and engine.now - first_submitted >= policy.job_deadline
            ):
                last_error = (
                    f"job deadline ({policy.job_deadline:g}s) exceeded "
                    f"after {tries} attempts"
                )
                record.record_failure(
                    tries, record.computing_element, last_error, engine.now, kind="deadline"
                )
                if bus is not None:
                    bus.metrics.counter("grid.jobs.deadline_exceeded").inc()
                break
            profiler = self.profiler
            if profiler is not None:
                profiler.enter("grid.attempt")
            try:
                tries += 1
                record.attempts = tries
                record.enter(JobState.SUBMITTED, engine.now)
                submitted_at = engine.now
                attempt_span: Optional[Span] = None
                if bus is not None:
                    attempt_span = bus.begin(
                        "job.attempt",
                        "grid",
                        submitted_at,
                        parent=job_span,
                        job_id=record.job_id,
                        attempt=tries,
                        **self._tenancy(record),
                    )
                    self._attempt_spans[record.job_id] = attempt_span
                sample = self.overhead.sample(rng).under_load(self._overhead_scale())
            finally:
                if profiler is not None:
                    profiler.exit()
            if sample.submission > 0:
                yield engine.timeout(sample.submission)

            chosen = yield engine.process(
                self.broker.match(record, sample.brokering), name="match"
            )
            record.enter(JobState.MATCHED, engine.now)
            matched_at = engine.now
            if bus is not None:
                bus.record(
                    "job.submit",
                    "grid",
                    submitted_at,
                    matched_at,
                    parent=attempt_span,
                    job_id=record.job_id,
                    attempt=tries,
                    ce=chosen.name,
                    **self._tenancy(record),
                )

            if self.faults.attempt_fails(fault_rng, ce=chosen.name):
                fault_attempts += 1
                delay = self.faults.sample_detection_delay(fault_rng, ce=chosen.name)
                if delay > 0:
                    yield engine.timeout(delay)
                record.enter(JobState.FAILED, engine.now)
                last_error = f"attempt {tries} failed on {chosen.name}"
                record.record_failure(tries, chosen.name, last_error, engine.now, kind="fault")
                if bus is not None:
                    bus.metrics.counter("grid.jobs.retries").inc()
                    bus.record(
                        "job.fault",
                        "grid",
                        matched_at,
                        engine.now,
                        parent=attempt_span,
                        status="error",
                        job_id=record.job_id,
                        attempt=tries,
                        ce=chosen.name,
                        job_name=record.description.name,
                        **self._tenancy(record),
                    )
                    if attempt_span is not None:
                        bus.end(attempt_span, engine.now, status="error", error=last_error)
                        self._attempt_spans.pop(record.job_id, None)
                if fault_attempts >= max_attempts:
                    break
                if not budget.try_spend(service_tag):
                    last_error += " (retry budget exhausted)"
                    record.record_failure(
                        tries, chosen.name, last_error, engine.now, kind="budget"
                    )
                    if bus is not None:
                        bus.metrics.counter("grid.jobs.budget_denied").inc()
                    break
                yield from self._retry_pause(record, fault_attempts, backoff_rng, job_span)
                continue

            done_on_ce = chosen.submit(record, queue_extra=sample.queue_extra)
            timed_out = False
            try:
                if policy.attempt_timeout is not None:
                    timer = engine.timeout(policy.attempt_timeout)
                    winner, _value = yield engine.any_of(
                        [done_on_ce, timer], name=f"attempt:{record.job_id}"
                    )
                    timed_out = winner is timer
                else:
                    yield done_on_ce
            except JobCancelledError as exc:
                last_error = f"attempt {tries} cancelled on {chosen.name}"
                record.record_failure(
                    tries, chosen.name, str(exc), engine.now, kind="cancelled"
                )
                if bus is not None:
                    bus.metrics.counter("grid.jobs.cancellations").inc()
                    bus.record(
                        "job.cancel",
                        "grid",
                        matched_at,
                        engine.now,
                        parent=attempt_span,
                        status="cancelled",
                        job_id=record.job_id,
                        attempt=tries,
                        ce=chosen.name,
                        reason=exc.reason,
                    )
                    if attempt_span is not None:
                        bus.end(attempt_span, engine.now, status="cancelled")
                        self._attempt_spans.pop(record.job_id, None)
                if not exc.resubmit:
                    # Final withdrawal: the run that owns this job was
                    # cancelled.  Fail the handle with the cancellation
                    # itself — no resubmission, no fault spent.
                    if bus is not None and job_span is not None and job_span.open:
                        bus.end(job_span, engine.now, status="cancelled")
                    completion.fail(exc)
                    return
                # Proactive resubmission: the monitor (via an alert
                # sink) pulled this job off a flagged CE's queue.  Not
                # a fault — resubmit without spending the attempt
                # budget, up to the free-cancellation cap.
                cancellations += 1
                if cancellations > self.MAX_FREE_CANCELLATIONS:
                    fault_attempts += 1
                continue
            if timed_out:
                fault_attempts += 1
                # Still queued: withdraw it.  Already running: the slot
                # is lost for the attempt's duration (a wall-clock kill
                # does not refund grid time); AnyOf defuses the stale
                # completion either way.
                if not chosen.cancel_job(record, reason=f"attempt {tries} timed out"):
                    done_on_ce.defused = True
                record.enter(JobState.FAILED, engine.now)
                last_error = (
                    f"attempt {tries} timed out on {chosen.name} "
                    f"after {policy.attempt_timeout:g}s"
                )
                record.record_failure(tries, chosen.name, last_error, engine.now, kind="timeout")
                if bus is not None:
                    bus.metrics.counter("grid.jobs.timeouts").inc()
                    bus.record(
                        "job.timeout",
                        "grid",
                        matched_at,
                        engine.now,
                        parent=attempt_span,
                        status="error",
                        job_id=record.job_id,
                        attempt=tries,
                        ce=chosen.name,
                        job_name=record.description.name,
                    )
                    if attempt_span is not None:
                        bus.end(attempt_span, engine.now, status="error", error=last_error)
                        self._attempt_spans.pop(record.job_id, None)
                if fault_attempts >= max_attempts:
                    break
                if not budget.try_spend(service_tag):
                    last_error += " (retry budget exhausted)"
                    record.record_failure(
                        tries, chosen.name, last_error, engine.now, kind="budget"
                    )
                    if bus is not None:
                        bus.metrics.counter("grid.jobs.budget_denied").inc()
                    break
                yield from self._retry_pause(record, fault_attempts, backoff_rng, job_span)
                continue
            if sample.completion_notification > 0:
                yield engine.timeout(sample.completion_notification)
            record.enter(JobState.DONE, engine.now)
            record.failure_reason = None
            if bus is not None:
                self._record_success(record, attempt_span, matched_at, chosen.name)
                if job_span is not None and job_span.open:
                    bus.end(job_span, engine.now, ce=chosen.name, attempts=tries)
            completion.succeed(record)
            return

        cause = f"{last_error} (all {record.attempts} attempts)"
        if record.failure_history:
            history = "; ".join(
                f"#{a.attempt}@{a.computing_element or '?'}: {a.kind}"
                for a in record.failure_history
            )
            cause = f"{cause} [{history}]"
        error = JobFailedError(record, cause)
        if bus is not None:
            bus.metrics.counter("grid.jobs.failed").inc()
            if job_span is not None and job_span.open:
                bus.end(job_span, engine.now, status="error", error=str(error))
        completion.fail(error)

    def _record_success(
        self,
        record: JobRecord,
        attempt_span: Optional[Span],
        matched_at: float,
        ce_name: str,
    ) -> None:
        """Phase spans + histograms for a successfully completed attempt.

        The schedule/queue/run phases tile ``matched -> done`` without
        gaps (schedule is zero-length here: the CE enters QUEUED at
        submission), so together with ``job.submit`` — and ``job.fault``
        spans for failed attempts — the phases of a job sum exactly to
        its recorded makespan.
        """
        bus = self.instrumentation
        engine = self.engine
        done_at = engine.now
        queued_at = record.last(JobState.QUEUED)
        running_at = record.last(JobState.RUNNING)
        if queued_at is not None and running_at is not None:
            common = {
                "job_id": record.job_id,
                "attempt": record.attempts,
                "ce": ce_name,
                "job_name": record.description.name,
                **self._tenancy(record),
            }
            bus.record(
                "job.schedule", "grid", matched_at, queued_at, parent=attempt_span, **common
            )
            bus.record(
                "job.queue", "grid", queued_at, running_at, parent=attempt_span, **common
            )
            bus.record(
                "job.run", "grid", running_at, done_at, parent=attempt_span, **common
            )
        if attempt_span is not None and attempt_span.open:
            bus.end(attempt_span, done_at, ce=ce_name)
            self._attempt_spans.pop(record.job_id, None)
        bus.metrics.counter("grid.jobs.completed").inc()
        for metric, value in (
            ("grid.job.overhead", record.overhead),
            ("grid.job.queue_wait", record.queue_wait),
            ("grid.job.makespan", record.makespan),
        ):
            if value is not None:
                bus.metrics.histogram(metric).observe(value)

    # -- reporting ------------------------------------------------------------
    def completed_records(self) -> List[JobRecord]:
        """Records of jobs that reached DONE."""
        return [r for r in self.records if r.state is JobState.DONE]

    def __repr__(self) -> str:
        return (
            f"<Grid {self.name!r} sites={len(self.sites)} "
            f"ces={len(self.computing_elements)} jobs={len(self.records)}>"
        )
