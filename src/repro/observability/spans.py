"""The span model: one timed, correlated unit of work in simulated time.

A :class:`Span` is the observability subsystem's atom.  Every layer of
the stack emits them — the enactor (one ``run`` span per enactment, one
``invocation`` span per service firing, one ``cache.lookup`` per cache
consultation), the middleware (one ``grid.job`` span per submission,
one ``job.attempt`` per try, plus the lifecycle *phase* spans
``job.submit`` / ``job.schedule`` / ``job.queue`` / ``job.run``), and
the computing elements (``job.stage_in`` / ``job.stage_out``).

Correlation works two ways:

* **parent/child ids** — every span carries a ``trace_id`` (the
  enactment run it belongs to) and a ``parent_id`` pointing at its
  enclosing span, exactly like a distributed-tracing span context;
* **token lineage** — invocation spans derive their ``span_id`` from
  the provenance history label (``run-3:crestMatch:D7``), so two runs
  over the same data set produce comparable ids, and grid-job spans
  carry the submitting invocation's ``job_ids`` so a collector can join
  the two layers even across export boundaries.

All timestamps are simulated seconds (the engine clock), never wall
clock — determinism is what makes the drift reporter's comparisons
against the Section 3.5 model meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Span", "SpanError", "span_sort_key", "spans_to_jsonl", "spans_from_jsonl"]


class SpanError(ValueError):
    """Raised for malformed span operations (double end, bad times...)."""


@dataclass
class Span:
    """One timed unit of work, with trace/parent correlation ids.

    ``end`` is ``None`` while the span is open; :meth:`close` sets it.
    ``status`` is ``"ok"`` on the happy path; instrumented code uses
    ``"error"`` for failures and domain statuses such as ``"hit"`` /
    ``"miss"`` / ``"coalesced"`` for cache lookups.
    """

    name: str
    category: str
    span_id: str
    trace_id: str
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """True while the span has not ended."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Simulated seconds covered; 0.0 while still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def close(self, end: float, status: Optional[str] = None, **attributes: Any) -> "Span":
        """End the span at *end*, optionally updating status/attributes."""
        if self.end is not None:
            raise SpanError(f"span {self.span_id!r} already ended")
        if end < self.start:
            raise SpanError(
                f"span {self.span_id!r} ends at {end} before it starts at {self.start}"
            )
        self.end = end
        if status is not None:
            self.status = status
        if attributes:
            self.attributes.update(attributes)
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL line schema, shared with
        :meth:`repro.core.trace.ExecutionTrace.to_jsonl`)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_dict` form.

        Tolerant of the reduced schema ``ExecutionTrace.to_jsonl``
        writes: missing correlation fields default sensibly, so old
        traces and new span streams really share one file format.
        """
        return cls(
            name=str(payload.get("name", "invocation")),
            category=str(payload.get("category", "enactor")),
            span_id=str(payload.get("span_id", "")),
            trace_id=str(payload.get("trace_id", "")),
            parent_id=payload.get("parent_id"),
            start=float(payload["start"]),
            end=None if payload.get("end") is None else float(payload["end"]),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes") or {}),
        )

    def __repr__(self) -> str:
        when = f"[{self.start:.3f}..{'open' if self.end is None else f'{self.end:.3f}'}]"
        return f"<Span {self.name!r} {self.span_id!r} {when} {self.status}>"


def span_sort_key(span: Span) -> tuple:
    """Stable ordering for reports: by start time, then id."""
    return (span.start, span.end if span.end is not None else float("inf"), span.span_id)


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize *spans* as one JSON object per line."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in spans)


def spans_from_jsonl(text) -> List[Span]:
    """Parse a JSONL span stream (blank lines ignored).

    Accepts either one string of newline-separated records or any
    iterable of lines (an open file works directly).
    """
    lines = text.splitlines() if isinstance(text, str) else text
    spans: List[Span] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpanError(f"line {lineno} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "start" not in payload:
            raise SpanError(f"line {lineno} is not a span record: {line[:80]!r}")
        spans.append(Span.from_dict(payload))
    return spans
