"""Failure reporting from exported span streams.

A best-effort run records what it lost twice: live, as the
:class:`~repro.core.failures.FailureReport` on the enactment result,
and durably, as ``kind="failed"`` / ``kind="poisoned"`` invocation
spans in the exported trace.  This module rebuilds the report-shaped
rows from the spans, so ``python -m repro.experiments report-failures
--trace run.jsonl`` works on a file long after the run is gone —
the post-mortem path, where the live path is the dashboard.

Correlation: a failed invocation span carries the grid ``job_ids`` of
its attempts; the matching ``job.fault`` / ``job.timeout`` /
``job.cancel`` spans (keyed by ``job_id``) supply the per-attempt
reasons and computing elements.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

from repro.observability.spans import Span

__all__ = ["failure_rows_from_spans", "failure_summary"]

#: grid span names that describe one failed attempt of a job
_ATTEMPT_SPANS = ("job.fault", "job.timeout", "job.cancel")


def failure_rows_from_spans(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Report rows (one per failed or skipped invocation) from *spans*.

    Row keys mirror :meth:`repro.core.failures.FailureReport.to_rows`:
    ``processor``, ``label``, ``kind`` (``failed`` | ``poisoned``),
    ``error``, ``failed_at``, ``job_ids``, ``computing_elements`` and
    ``attempt_reasons``.  Rows keep span order (enactment time).
    """
    spans = list(spans)
    attempts_by_job: Dict[int, List[Mapping[str, Any]]] = {}
    for span in spans:
        if span.name not in _ATTEMPT_SPANS:
            continue
        job_id = span.attributes.get("job_id")
        if job_id is None:
            continue
        attempts_by_job.setdefault(int(job_id), []).append(
            {
                "kind": span.name.split(".", 1)[1],
                "computing_element": span.attributes.get("ce", ""),
                "reason": span.attributes.get("reason", span.status),
                "at": span.end if span.end is not None else span.start,
            }
        )

    rows: List[Dict[str, Any]] = []
    for span in spans:
        if span.name != "invocation":
            continue
        kind = span.attributes.get("kind")
        if kind not in ("failed", "poisoned"):
            continue
        job_ids = [int(j) for j in span.attributes.get("job_ids", ())]
        attempts = [a for job in job_ids for a in attempts_by_job.get(job, [])]
        error = span.attributes.get("error", "")
        if kind == "poisoned" and not error:
            root = span.attributes.get("root", "")
            error = f"input lineage died upstream at {root!r}" if root else "poisoned input"
        rows.append(
            {
                "processor": span.attributes.get("processor", ""),
                "label": span.attributes.get("label", ""),
                "kind": kind,
                "error": error,
                "failed_at": span.end if span.end is not None else span.start,
                "job_ids": job_ids,
                "computing_elements": sorted(
                    {a["computing_element"] for a in attempts if a["computing_element"]}
                ),
                "attempt_reasons": [
                    f"{a['kind']}@{a['computing_element']}: {a['reason']}" for a in attempts
                ],
            }
        )
    return rows


def failure_summary(rows: Iterable[Mapping[str, Any]]) -> Dict[str, Dict[str, int]]:
    """Aggregate counts: failures per service and per computing element."""
    by_service: Dict[str, int] = {}
    by_ce: Dict[str, int] = {}
    for row in rows:
        if row.get("kind") != "failed":
            continue
        service = str(row.get("processor", ""))
        by_service[service] = by_service.get(service, 0) + 1
        for ce in row.get("computing_elements", ()):  # type: ignore[union-attr]
            by_ce[str(ce)] = by_ce.get(str(ce), 0) + 1
    return {"by_service": by_service, "by_computing_element": by_ce}
