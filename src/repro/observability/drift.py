"""Live model-drift reporting: observed runs vs the Section 3.5 model.

The paper's analysis rests on closed-form makespans — equations (1)-(4)
of Section 3.5 — and on reading measured time curves through their
y-intercept ("incompressible time to access the infrastructure") and
slope ("data scalability of the grid").  This module closes the loop at
run time: from one finished enactment it

1. rebuilds the model's ``T[i, j]`` matrix (service *i*, data set *j*)
   out of the observed invocation spans/trace events,
2. evaluates all four policy equations on that matrix and compares the
   run's own policy prediction against the observed makespan of the
   modelled region (synchronization barriers and cache hits sit outside
   the model's hypotheses and are excluded),
3. splits each ``T[i, j]`` into grid overhead and useful time (when job
   records or job phase spans are available) to emit *live* y-intercept
   and slope estimates, plus their ratios against the NOP prediction —
   the Section 5.1 metrics, computed from a single run instead of a
   whole size sweep.

A healthy fault-free simulation shows near-zero drift; a growing gap
between prediction and observation is exactly the signal that a new
scheduling feature (or a bug) broke one of the model's hypotheses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.model.makespan import makespans

if TYPE_CHECKING:  # pragma: no cover - annotations only (avoids an
    # import cycle: grid.middleware -> observability -> core.trace ->
    # core.enactor -> grid.middleware; events are duck-typed here)
    from repro.core.trace import ExecutionTrace, TraceEvent

__all__ = [
    "DriftError",
    "DriftReport",
    "policy_key",
    "time_matrix",
    "drift_report",
    "drift_report_from_trace",
    "overhead_by_job_from_records",
    "overhead_by_job_from_spans",
]

#: trace-event kinds inside the modelled region (Section 3.5 hypotheses:
#: no synchronization barrier, and a cache hit is not an execution)
_MODELLED_KINDS = ("invocation", "grouped")

_ITEM_LABEL = re.compile(r"^D(\d+)$")


class DriftError(ValueError):
    """The trace cannot be mapped onto the model's T matrix."""


def policy_key(config) -> str:
    """The equation selecting label for *config*: NOP, DP, SP or SP+DP.

    Job grouping changes the matrix (grouped services collapse into one
    row), not the equation, so JG variants map onto the same key.
    """
    dp = bool(getattr(config, "data_parallelism", False))
    sp = bool(getattr(config, "service_parallelism", False))
    if dp and sp:
        return "SP+DP"
    if dp:
        return "DP"
    if sp:
        return "SP"
    return "NOP"


def _item_order(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Events of one processor in data-set order.

    Provenance labels (``D0``, ``D7``...) define the item index when
    they parse; otherwise start-time order stands in (correct for the
    barrier policies, where arrival order *is* item order).
    """
    indices = [_ITEM_LABEL.match(e.label) for e in events]
    if all(m is not None for m in indices) and len(
        {int(m.group(1)) for m in indices if m is not None}
    ) == len(events):
        return sorted(events, key=lambda e: int(_ITEM_LABEL.match(e.label).group(1)))
    return sorted(events, key=lambda e: (e.start, e.label))


def time_matrix(
    trace: ExecutionTrace, processors: Optional[Sequence[str]] = None
) -> Tuple[np.ndarray, List[str], List[List[TraceEvent]]]:
    """The model's ``T`` matrix from an observed trace.

    Rows are the critical-path services (defaults to every processor
    with executed events; pass *processors* to restrict to the actual
    critical path when the workflow has parallel branches), columns the
    data sets.  Returns ``(T, row_names, row_events)``.
    """
    executed: Dict[str, List[TraceEvent]] = {}
    for event in trace:
        if event.kind in _MODELLED_KINDS:
            executed.setdefault(event.processor, []).append(event)
    if not executed:
        raise DriftError("trace has no executed invocations (all cached or empty)")
    if processors is None:
        names = list(executed)
    else:
        names = [p for p in processors if p in executed]
        missing = [p for p in processors if p not in executed]
        if missing:
            raise DriftError(f"processors never executed in this trace: {missing}")
        if not names:
            raise DriftError("no requested processor appears in the trace")
    counts = {name: len(executed[name]) for name in names}
    n_items = counts[names[0]]
    uneven = {name: c for name, c in counts.items() if c != n_items}
    if uneven:
        raise DriftError(
            "services saw different stream lengths (pass processors= to "
            f"select the critical path): {dict(sorted(counts.items()))}"
        )
    rows = [_item_order(executed[name]) for name in names]
    T = np.array([[e.duration for e in row] for row in rows], dtype=float)
    return T, names, rows


def overhead_by_job_from_records(records: Iterable) -> Dict[int, float]:
    """``job_id -> grid overhead seconds`` from middleware job records."""
    out: Dict[int, float] = {}
    for record in records:
        overhead = getattr(record, "overhead", None)
        if overhead is not None:
            out[record.job_id] = float(overhead)
    return out


#: job phase spans counted as grid overhead (everything before RUNNING,
#: plus failed-attempt detection time; staging and execution excluded)
_OVERHEAD_PHASES = ("job.submit", "job.schedule", "job.queue", "job.fault")


def overhead_by_job_from_spans(spans: Iterable) -> Dict[int, float]:
    """``job_id -> overhead seconds`` reconstructed from phase spans.

    The offline analogue of :func:`overhead_by_job_from_records` for
    when only an exported span stream is available (e.g. ``report-trace``
    on a JSONL file): sums the submission/scheduling/queuing — and
    failed-attempt — phases per job.  Slightly conservative versus the
    record-based figure, which also counts the completion-notification
    latency inside ``job.run``.
    """
    out: Dict[int, float] = {}
    for span in spans:
        if span.name in _OVERHEAD_PHASES and span.end is not None:
            job_id = span.attributes.get("job_id")
            if job_id is not None:
                out[job_id] = out.get(job_id, 0.0) + span.duration
    return out


@dataclass(frozen=True)
class DriftReport:
    """Predicted-vs-observed makespan plus live Section 5.1 estimates."""

    policy: str
    n_services: int
    n_items: int
    #: makespan of the modelled region (executed invocations only)
    observed_makespan: float
    #: the policy's equation evaluated on the observed T matrix
    predicted_makespan: float
    #: all four equations on the same matrix, keyed by policy label
    predictions: Dict[str, float] = field(default_factory=dict)
    #: live estimate of the regression line's y-intercept (overhead part)
    y_intercept_estimate: float = 0.0
    #: live estimate of the slope: (prediction - intercept) / n_items
    slope_estimate: float = 0.0
    #: Section 5.1 ratios of this run's policy against the NOP prediction
    y_intercept_ratio_vs_nop: float = 1.0
    slope_ratio_vs_nop: float = 1.0
    row_names: Tuple[str, ...] = ()

    @property
    def drift(self) -> float:
        """Signed seconds of drift: observed minus predicted."""
        return self.observed_makespan - self.predicted_makespan

    @property
    def relative_error(self) -> float:
        """|drift| normalized by the prediction (0.0 for a 0s prediction)."""
        if self.predicted_makespan == 0:
            return 0.0 if self.observed_makespan == 0 else float("inf")
        return abs(self.drift) / self.predicted_makespan

    def within(self, tolerance: float) -> bool:
        """True when the relative error does not exceed *tolerance*."""
        return self.relative_error <= tolerance

    @property
    def speedup_vs_nop(self) -> float:
        """Predicted NOP makespan over this policy's prediction."""
        nop = self.predictions.get("NOP", 0.0)
        if self.predicted_makespan == 0:
            return float("inf") if nop > 0 else 1.0
        return nop / self.predicted_makespan


def _ratio(reference: float, analyzed: float) -> float:
    if analyzed == 0:
        return float("inf") if reference > 0 else 1.0
    return reference / analyzed


def drift_report_from_trace(
    trace: ExecutionTrace,
    policy: str,
    overhead_by_job: Optional[Mapping[int, float]] = None,
    processors: Optional[Sequence[str]] = None,
) -> DriftReport:
    """Build a :class:`DriftReport` from a trace and a policy label.

    *overhead_by_job* (job id -> overhead seconds) feeds the intercept /
    slope split; without it the run is treated as overhead-free (true
    for local services and the ideal testbed).
    """
    if policy not in ("NOP", "DP", "SP", "SP+DP"):
        raise DriftError(f"unknown policy {policy!r}; expected NOP, DP, SP or SP+DP")
    T, names, rows = time_matrix(trace, processors=processors)
    n_services, n_items = T.shape

    included = [event for row in rows for event in row]
    observed = max(e.end for e in included) - min(e.start for e in included)

    predictions = makespans(T)
    predicted = predictions[policy]

    overheads = np.zeros_like(T)
    if overhead_by_job:
        for i, row in enumerate(rows):
            for j, event in enumerate(row):
                overheads[i, j] = sum(
                    overhead_by_job.get(job_id, 0.0) for job_id in event.job_ids
                )
        # Overhead lies in [0, span]; float residue in the per-record
        # subtraction can land epsilon outside either bound.
        overheads = np.clip(overheads, 0.0, T)
    intercepts = makespans(overheads)

    def slope(policy_label: str) -> float:
        return (predictions[policy_label] - intercepts[policy_label]) / n_items

    return DriftReport(
        policy=policy,
        n_services=n_services,
        n_items=n_items,
        observed_makespan=float(observed),
        predicted_makespan=float(predicted),
        predictions={k: float(v) for k, v in predictions.items()},
        y_intercept_estimate=float(intercepts[policy]),
        slope_estimate=float(slope(policy)),
        y_intercept_ratio_vs_nop=_ratio(intercepts["NOP"], intercepts[policy]),
        slope_ratio_vs_nop=_ratio(slope("NOP"), slope(policy)),
        row_names=tuple(names),
    )


def drift_report(
    result,
    records: Optional[Iterable] = None,
    processors: Optional[Sequence[str]] = None,
) -> DriftReport:
    """Drift report for one :class:`~repro.core.enactor.EnactmentResult`.

    Pass ``records=grid.records`` to split each observed time into grid
    overhead and useful work for the intercept/slope estimates.
    """
    overhead_by_job = (
        overhead_by_job_from_records(records) if records is not None else None
    )
    return drift_report_from_trace(
        result.trace,
        policy_key(result.config),
        overhead_by_job=overhead_by_job,
        processors=processors,
    )
