"""The live run monitor: online progress, health and alerts from the bus.

Everything observability built so far is post-hoc — it explains a run
after it finished.  :class:`RunMonitor` closes the gap: it subscribes to
the :class:`~repro.observability.bus.InstrumentationBus` and maintains,
incrementally as spans close,

* **per-service progress and ETA** — items completed / in flight /
  pending per service, with an ETA that blends the Section 3.5 model
  prediction (equations (1)–(4) evaluated on a ``T`` matrix rebuilt
  from observed mean service times) with the simple observed completion
  rate, weighting toward the observation as the run completes;
* **per-CE health** — the rolling robust statistics of
  :class:`~repro.observability.health.FleetHealth`, flagging straggler
  jobs/CEs and blackhole CEs while jobs are still running;
* **typed alerts** — :class:`~repro.observability.alerts.Alert` records
  (straggler, blackhole, fault-burst, eta-blowout, queue-stall) pushed
  to every registered sink, re-emitted through the bus as zero-duration
  ``category="alert"`` spans (so they land in the JSONL trace and the
  Chrome trace), and counted in the metrics registry (``monitor.alerts.*``)
  so run-store summaries and ``compare-runs`` budgets see them.

**The online invariant.**  Every piece of state that determines health
scores and alerts is derived *solely* from closed spans, in the order
they close.  ``on_start`` feeds only the in-flight display counters
(recomputed as ``max(0, started - completed)``), so replaying a
recorded span stream — which contains only closed spans, in completion
order — into a fresh monitor via :meth:`RunMonitor.replay` reproduces
the exact same health table and alert list.  That is what makes the
monitor's findings auditable after the fact.

The monitor is also a **health provider** for the feedback loop: the
:class:`~repro.grid.broker.ResourceBroker` consults
:meth:`penalty` / :meth:`blacklisted` so least-loaded ranking demotes
flagged CEs, and the grid can proactively resubmit jobs queued on them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.observability.alerts import Alert, AlertRules, alert_sort_key
from repro.observability.bus import InstrumentationBus, Subscriber
from repro.observability.health import FleetHealth, CEHealth
from repro.observability.spans import Span

__all__ = ["HealthProvider", "ServiceProgress", "RunMonitor"]


class HealthProvider:
    """What the broker needs to know about CE health (duck-typed base).

    A provider answers two questions about a computing element by name:
    how much should ranking *demote* it (:meth:`penalty`, added to the
    load estimate — 0.0 for a healthy CE), and should it be avoided
    outright (:meth:`blacklisted`).  The broker treats a blacklist as a
    strong preference, not an absolute: when every candidate is
    blacklisted it still places the job somewhere.
    """

    def penalty(self, ce: str) -> float:
        """Ranking demotion for *ce* (0.0 = healthy)."""
        return 0.0

    def blacklisted(self, ce: str) -> bool:
        """True when *ce* should be avoided if any alternative exists."""
        return False


@dataclass
class ServiceProgress:
    """One service's live progress counters."""

    service: str
    completed: int = 0
    started: int = 0
    #: expected total items, when known (None disables ETA contribution)
    expected: Optional[int] = None
    #: sum of completed invocation durations (mean = total / completed)
    total_seconds: float = 0.0

    @property
    def in_flight(self) -> int:
        """Invocations started but not yet closed (display only)."""
        return max(0, self.started - self.completed)

    @property
    def pending(self) -> Optional[int]:
        """Items not yet started, when the expected total is known."""
        if self.expected is None:
            return None
        return max(0, self.expected - self.completed - self.in_flight)

    @property
    def mean_seconds(self) -> float:
        """Mean duration of completed invocations (0.0 before any)."""
        return self.total_seconds / self.completed if self.completed else 0.0

    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction, when the expected total is known."""
        if not self.expected:
            return None
        return min(1.0, self.completed / self.expected)


#: invocation-span kinds that count as one completed item
_ITEM_KINDS = ("invocation", "grouped", "cached")

#: phase spans routed into FleetHealth (stage phases refine per-CE
#: medians; queue/run additionally feed straggler detection)
_HEALTH_PHASES = ("job.queue", "job.run", "job.stage_in", "job.stage_out")


class RunMonitor(Subscriber, HealthProvider):
    """Online monitoring: subscribe to a bus, watch a run unfold.

    Parameters
    ----------
    rules:
        alert thresholds (:class:`~repro.observability.alerts.AlertRules`).
    expected_items:
        how many items each service will process — an int (uniform) or a
        ``{service: n}`` mapping.  Enables ETA and the eta-blowout alert.
    policy:
        which Section 3.5 equation models this run (``NOP``/``DP``/
        ``SP``/``SP+DP``; see :func:`repro.observability.drift.policy_key`).
    bus:
        when attached, alerts are re-emitted as instant spans and
        counted in ``monitor.alerts.*`` metrics.  Use
        :meth:`RunMonitor.attach` to construct-and-subscribe in one step.
    alert_sinks:
        callables invoked with each :class:`Alert` as it fires (e.g. a
        :class:`~repro.observability.alerts.JsonlAlertWriter`).
    on_progress:
        callable invoked with a rendered progress line every
        ``progress_every`` completed items (and at run end).
    """

    def __init__(
        self,
        rules: Optional[AlertRules] = None,
        expected_items: Union[int, Dict[str, int], None] = None,
        policy: str = "NOP",
        window: int = 512,
        bus: Optional[InstrumentationBus] = None,
        alert_sinks: Optional[List[Callable[[Alert], None]]] = None,
        on_progress: Optional[Callable[[str], None]] = None,
        progress_every: int = 10,
    ) -> None:
        self.rules = rules if rules is not None else AlertRules()
        self.policy = policy
        self.bus = bus
        self.alert_sinks: List[Callable[[Alert], None]] = list(alert_sinks or [])
        self.on_progress = on_progress
        self.progress_every = max(1, progress_every)

        self.fleet = FleetHealth(self.rules.health_thresholds(), window=window)
        self.alerts: List[Alert] = []
        self._alert_sequence = 0

        #: service name -> progress, first-seen order
        self.services: Dict[str, ServiceProgress] = {}
        self._uniform_expected: Optional[int] = None
        if isinstance(expected_items, dict):
            for name, n in expected_items.items():
                self.services[name] = ServiceProgress(service=name, expected=int(n))
        elif expected_items is not None:
            self._uniform_expected = int(expected_items)

        #: grid-job counters (jobs, not attempts)
        self.jobs_started = 0
        self.jobs_completed = 0
        self.jobs_failed = 0

        #: earliest start among *closed* spans — the replay-safe run origin
        self._run_start: Optional[float] = None
        self._last_event: float = 0.0
        self._run_closed = False

        #: per-CE recent fault times for burst detection
        self._fault_times: Dict[str, Deque[float]] = {}
        self._in_burst: Dict[str, bool] = {}

        #: fleet-wide recent failed-transfer times for storm detection
        self._transfer_fault_times: Deque[float] = deque()
        self._in_storm = False

        #: dedup sets: one CE-scope alert per CE per kind, one blowout
        self._alerted: Dict[str, set] = {"straggler": set(), "blackhole": set()}
        self._eta_blowout_raised = False

    # -- wiring ----------------------------------------------------------
    @classmethod
    def attach(cls, bus: InstrumentationBus, **kwargs: Any) -> "RunMonitor":
        """Construct a monitor bound to *bus* and subscribe it."""
        monitor = cls(bus=bus, **kwargs)
        bus.subscribe(monitor)
        return monitor

    def add_sink(self, sink: Callable[[Alert], None]) -> Callable[[Alert], None]:
        """Register an alert sink; returns it for chaining."""
        self.alert_sinks.append(sink)
        return sink

    # -- subscriber ------------------------------------------------------
    def on_start(self, span: Span) -> None:
        """Display-only accounting: nothing here may influence alerts."""
        if span.category == "alert":
            return
        if span.name == "invocation" and span.category == "enactor":
            service = str(span.attributes.get("processor", "?"))
            self._service(service).started += 1
        elif span.name == "grid.job":
            self.jobs_started += 1

    def on_end(self, span: Span) -> None:
        if span.category == "alert":
            return  # our own output; consuming it would self-feed
        if span.end is None:  # defensive: replay of a truncated stream
            return
        if self._run_start is None or span.start < self._run_start:
            self._run_start = span.start
        if span.end > self._last_event:
            self._last_event = span.end

        name = span.name
        if name == "invocation" and span.category == "enactor":
            self._close_invocation(span)
        elif name in _HEALTH_PHASES:
            self._close_phase(span)
        elif name == "job.fault":
            self._close_fault(span)
        elif name == "se.outage":
            self._close_se_outage(span)
        elif name == "replica.corruption":
            self._close_corruption(span)
        elif name == "transfer.fault":
            self._close_transfer_fault(span)
        elif name == "grid.job":
            if span.status == "error":
                self.jobs_failed += 1
            else:
                self.jobs_completed += 1
        elif name == "run" and span.category == "enactor":
            self._run_closed = True
            self._progress_tick(force=True)

    # -- span handlers ---------------------------------------------------
    def _service(self, name: str) -> ServiceProgress:
        progress = self.services.get(name)
        if progress is None:
            progress = self.services[name] = ServiceProgress(
                service=name, expected=self._uniform_expected
            )
        return progress

    def _close_invocation(self, span: Span) -> None:
        attrs = span.attributes
        if attrs.get("kind") not in _ITEM_KINDS:
            return
        progress = self._service(str(attrs.get("processor", "?")))
        progress.completed += 1
        progress.total_seconds += span.duration
        self._check_eta_blowout(span.end)
        self._progress_tick()

    @staticmethod
    def _group_of(span: Span) -> Optional[str]:
        """The job's population for straggler comparison: its service.

        Job names look like ``crestLines#7`` or ``crestMatch#batch2`` —
        the part before ``#`` is the submitting service, the natural
        like-for-like grouping (one service's jobs share a duration
        distribution; different services do not).
        """
        name = span.attributes.get("job_name")
        if not name:
            return None
        return str(name).split("#", 1)[0]

    def _close_phase(self, span: Span) -> None:
        ce = str(span.attributes.get("ce", "?"))
        job_id = span.attributes.get("job_id")
        straggler = self.fleet.observe_phase(
            ce, span.name, span.duration, job_id=job_id, group=self._group_of(span)
        )
        if straggler:
            self._emit(
                "straggler",
                span.end,
                subject=f"job:{job_id}" if job_id is not None else ce,
                scope="job",
                message=(
                    f"{span.name} phase of job {job_id} on {ce} took "
                    f"{span.duration:.1f}s (fleet median "
                    f"{self.fleet.fleet_median(span.name) or 0.0:.1f}s)"
                ),
                ce=ce,
                phase=span.name,
                duration=span.duration,
            )
        if span.name == "job.queue" and span.duration > self.rules.queue_stall_seconds:
            self._emit(
                "queue-stall",
                span.end,
                subject=f"job:{job_id}" if job_id is not None else ce,
                scope="job",
                message=(
                    f"job {job_id} sat {span.duration:.0f}s in the {ce} batch "
                    f"queue (stall threshold {self.rules.queue_stall_seconds:.0f}s)"
                ),
                ce=ce,
                duration=span.duration,
            )
        self._check_ce(ce, span.end)

    def _close_fault(self, span: Span) -> None:
        ce = str(span.attributes.get("ce", "?"))
        self.fleet.observe_fault(ce, span.duration)
        window = self._fault_times.setdefault(ce, deque())
        window.append(span.end)
        horizon = span.end - self.rules.fault_burst_window
        while window and window[0] < horizon:
            window.popleft()
        if len(window) >= self.rules.fault_burst_count:
            if not self._in_burst.get(ce, False):
                self._in_burst[ce] = True
                self._emit(
                    "fault-burst",
                    span.end,
                    subject=ce,
                    scope="ce",
                    severity="critical",
                    message=(
                        f"{len(window)} faults on {ce} within "
                        f"{self.rules.fault_burst_window:.0f}s"
                    ),
                    faults_in_window=len(window),
                )
        else:
            self._in_burst[ce] = False
        self._check_ce(ce, span.end)

    def _close_se_outage(self, span: Span) -> None:
        """One ground-truth ``se.outage`` span = one ``se-outage`` alert.

        The grid's outage beacon emits these only for *scheduled*
        down-windows, so the mapping is exact: every injected SE outage
        is flagged and a healthy site can never be (zero false
        positives by construction).
        """
        se = str(span.attributes.get("se", "?"))
        until = span.attributes.get("until")
        suffix = f" (down until {float(until):.0f}s)" if until is not None else ""
        self._emit(
            "se-outage",
            span.end,
            subject=se,
            scope="se",
            severity="critical",
            message=f"storage element {se} went down at {span.end:.0f}s{suffix}",
            until=until,
        )

    def _close_corruption(self, span: Span) -> None:
        se = str(span.attributes.get("se", "?"))
        gfn = str(span.attributes.get("gfn", "?"))
        self._emit(
            "replica-corruption",
            span.end,
            subject=se,
            scope="se",
            message=(
                f"replica of {gfn} on {se} failed checksum verification; quarantined"
            ),
            gfn=gfn,
        )

    def _close_transfer_fault(self, span: Span) -> None:
        """Failed transfers in a fleet-wide sliding window -> storm alert.

        Same edge-triggered pattern as :meth:`_close_fault`: the alert
        fires once when the window first fills and re-arms only after
        the rate drops back below the threshold.
        """
        window = self._transfer_fault_times
        window.append(span.end)
        horizon = span.end - self.rules.transfer_storm_window
        while window and window[0] < horizon:
            window.popleft()
        if len(window) >= self.rules.transfer_storm_count:
            if not self._in_storm:
                self._in_storm = True
                self._emit(
                    "transfer-storm",
                    span.end,
                    subject="network",
                    scope="run",
                    severity="critical",
                    message=(
                        f"{len(window)} failed transfers within "
                        f"{self.rules.transfer_storm_window:.0f}s"
                    ),
                    failures_in_window=len(window),
                )
        else:
            self._in_storm = False

    def _check_ce(self, ce: str, now: float) -> None:
        """Raise CE-scope alerts on a health-flag transition (once each)."""
        health = self.fleet.health_of(ce)
        if health.is_blackhole and ce not in self._alerted["blackhole"]:
            self._alerted["blackhole"].add(ce)
            self._emit(
                "blackhole",
                now,
                subject=ce,
                scope="ce",
                severity="critical",
                message=(
                    f"{ce} looks like a blackhole: fault rate "
                    f"{health.fault_rate:.0%} over {health.attempts} attempts, "
                    f"median time-to-failure {health.median_ttf:.1f}s"
                ),
                fault_rate=health.fault_rate,
                median_ttf=health.median_ttf,
                attempts=health.attempts,
            )
        if health.is_straggler and ce not in self._alerted["straggler"]:
            self._alerted["straggler"].add(ce)
            self._emit(
                "straggler",
                now,
                subject=ce,
                scope="ce",
                message=(
                    f"{ce} keeps producing stragglers: "
                    f"{health.straggler_jobs}/{health.completed} completed "
                    f"jobs flagged"
                ),
                straggler_jobs=health.straggler_jobs,
                completed=health.completed,
            )

    # -- progress / ETA --------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Simulated seconds from first closed-span start to last close."""
        if self._run_start is None:
            return 0.0
        return max(0.0, self._last_event - self._run_start)

    def completed_items(self) -> int:
        """Items completed across every service."""
        return sum(p.completed for p in self.services.values())

    def expected_total(self) -> Optional[int]:
        """Total expected items, or None when any service is unbounded."""
        if not self.services:
            return self._uniform_expected
        total = 0
        for progress in self.services.values():
            if progress.expected is None:
                return None
            total += progress.expected
        return total

    def completion_fraction(self) -> Optional[float]:
        """Overall completed fraction, when expected totals are known."""
        expected = self.expected_total()
        if not expected:
            return None
        return min(1.0, self.completed_items() / expected)

    def model_makespan(self) -> Optional[float]:
        """Section 3.5 prediction on a T matrix of observed mean times.

        Every known service must have at least one completed invocation
        and a known expected count; otherwise None (no model yet).
        """
        if not self.services:
            return None
        rows = []
        n_items = None
        for progress in self.services.values():
            if progress.expected is None or progress.completed == 0:
                return None
            if n_items is None:
                n_items = progress.expected
            # The equations assume one stream: model the common length.
            n_items = min(n_items, progress.expected)
            rows.append(progress.mean_seconds)
        if not n_items:
            return None
        import numpy as np

        from repro.model.makespan import makespans

        T = np.tile(np.array(rows, dtype=float)[:, None], (1, n_items))
        return float(makespans(T)[self.policy])

    def eta(self) -> Optional[float]:
        """Blended remaining simulated seconds, or None without data.

        ``fraction * rate + (1 - fraction) * model``: early in the run
        the model prediction dominates (one observation per service is
        enough to evaluate it), late in the run the observed completion
        rate — which has integrated every real queue wait and fault —
        takes over.
        """
        fraction = self.completion_fraction()
        if fraction is None or fraction <= 0.0:
            return None
        if fraction >= 1.0:
            return 0.0
        elapsed = self.elapsed
        rate_remaining = elapsed * (1.0 - fraction) / fraction
        model = self.model_makespan()
        if model is None:
            return rate_remaining
        model_remaining = max(0.0, model - elapsed)
        return fraction * rate_remaining + (1.0 - fraction) * model_remaining

    def _check_eta_blowout(self, now: float) -> None:
        if self._eta_blowout_raised:
            return
        fraction = self.completion_fraction()
        model = self.model_makespan()
        if fraction is None or model is None or model <= 0.0:
            return
        if fraction < 0.1 or fraction >= 1.0:
            return
        rate_total = self.elapsed / fraction
        if rate_total > self.rules.eta_blowout_factor * model:
            self._eta_blowout_raised = True
            self._emit(
                "eta-blowout",
                now,
                subject="run",
                scope="run",
                severity="critical",
                message=(
                    f"projected makespan {rate_total:.0f}s exceeds the model "
                    f"prediction {model:.0f}s by more than "
                    f"{self.rules.eta_blowout_factor:g}x"
                ),
                projected=rate_total,
                model=model,
                fraction=fraction,
            )

    def progress_line(self) -> str:
        """One human-readable status line for the logbridge."""
        done = self.completed_items()
        expected = self.expected_total()
        in_flight = sum(p.in_flight for p in self.services.values())
        parts = [f"[t={self._last_event:.1f}s]"]
        if expected:
            pct = 100.0 * done / expected
            parts.append(f"progress {done}/{expected} ({pct:.0f}%)")
        else:
            parts.append(f"progress {done} items")
        parts.append(f"in-flight {in_flight}")
        parts.append(f"jobs {self.jobs_completed}/{self.jobs_started}")
        remaining = self.eta()
        if remaining is not None:
            parts.append(f"eta ~{remaining:.0f}s")
        if self.alerts:
            parts.append(f"alerts {len(self.alerts)}")
        return " ".join(parts)

    def _progress_tick(self, force: bool = False) -> None:
        if self.on_progress is None:
            return
        done = self.completed_items()
        if force or (done and done % self.progress_every == 0):
            self.on_progress(self.progress_line())

    # -- alert emission --------------------------------------------------
    def _emit(
        self,
        kind: str,
        time: float,
        subject: str,
        scope: str,
        message: str,
        severity: str = "warning",
        **attributes: Any,
    ) -> Alert:
        alert = Alert(
            kind=kind,
            time=time,
            subject=subject,
            scope=scope,
            severity=severity,
            message=message,
            sequence=self._alert_sequence,
            attributes=attributes,
        )
        self._alert_sequence += 1
        self.alerts.append(alert)
        for sink in self.alert_sinks:
            sink(alert)
        bus = self.bus
        if bus is not None:
            bus.metrics.counter("monitor.alerts.total").inc()
            bus.metrics.counter(f"monitor.alerts.{kind}").inc()
            bus.record(
                f"alert.{kind}",
                "alert",
                time,
                time,
                parent=bus.run_span,
                status=severity,
                subject=subject,
                scope=scope,
                message=message,
                sequence=alert.sequence,
                **attributes,
            )
        return alert

    # -- health provider (the broker feedback hook) ----------------------
    #: added to a CE's load estimate per point of lost health score
    PENALTY_SCALE = 10.0

    def penalty(self, ce: str) -> float:
        """Ranking demotion: grows as the health score drops."""
        if not self.fleet.seen(ce):
            return 0.0
        health = self.fleet.health_of(ce)
        return self.PENALTY_SCALE * (1.0 - health.score)

    def blacklisted(self, ce: str) -> bool:
        """Flagged CEs (straggler or blackhole) are avoided when possible."""
        if not self.fleet.seen(ce):
            return False
        return self.fleet.health_of(ce).flagged

    def flagged_ces(self) -> List[str]:
        """Currently flagged CEs, first-seen order."""
        return [h.ce for h in self.fleet.table() if h.flagged]

    # -- reporting / replay ----------------------------------------------
    def health_table(self) -> List[CEHealth]:
        """Per-CE health summaries, first-seen order."""
        return self.fleet.table()

    def sorted_alerts(self) -> List[Alert]:
        """All alerts in (time, sequence) order."""
        return sorted(self.alerts, key=alert_sort_key)

    def alert_counts(self) -> Dict[str, int]:
        """``kind -> count`` over everything raised so far."""
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    def summary(self) -> Dict[str, Any]:
        """A plain-dict snapshot (stable keys, JSON-serializable)."""
        return {
            "completed_items": self.completed_items(),
            "expected_items": self.expected_total(),
            "elapsed": self.elapsed,
            "jobs": {
                "started": self.jobs_started,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
            },
            "alerts": self.alert_counts(),
            "flagged_ces": self.flagged_ces(),
            "health": {
                h.ce: round(h.score, 6) for h in self.health_table()
            },
        }

    def replay(self, spans: Iterable[Span]) -> "RunMonitor":
        """Feed a recorded stream of closed spans through this monitor.

        The stream must be in completion order (exactly what
        :class:`~repro.observability.bus.JsonlExporter` wrote).  Each
        span is announced (``on_start``) and immediately closed
        (``on_end``) — since alert-relevant state only advances on
        close, the final health scores and alerts match the live run's.
        Returns self for chaining.
        """
        for span in spans:
            self.on_start(span)
            self.on_end(span)
        return self
