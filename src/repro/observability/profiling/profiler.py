"""The instrumenting hot-path profiler: nested scopes, explicit cost.

Design
------
A :class:`Profiler` owns a tree of :class:`ScopeStats`.  Instrumented
code brackets a region with :meth:`Profiler.enter` / :meth:`exit` (or
the :meth:`scope` context manager outside the hot path); identical
names under the same parent share one node, so the tree stays small no
matter how many times a region runs.  Each node accounts:

``calls``
    how many times the region completed,
``cum``
    clock seconds inside the region including children,
``self``
    clock seconds minus the time attributed to child scopes — the
    number a rebuild must shrink.

The clock is injectable (:mod:`.clock`): the shared wall clock for
real measurements, a :class:`~.clock.TickClock` when the profile must
be byte-identical across identically seeded runs.

Toggleability is the contract that lets this live *permanently* inside
``Engine.step``, ``MoteurEnactor._invoke`` and friends: every
instrumented object carries a ``profiler`` attribute that defaults to
``None``, and the hot path pays exactly one attribute load plus one
``is not None`` test when profiling is off — the same idiom the
instrumentation bus already uses (``if bus is None: return``).  The
overhead benchmark (``benchmarks/bench_profiler_overhead.py``) holds
the off-cost under 1% and the on-cost under 10%.

A :class:`Profile` is the immutable, serializable snapshot: scope tree
plus churn counters plus optional memory report, with a stable sorted
JSON encoding.  ``flamegraph.py`` renders it; ``attribution.py`` diffs
two of them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.observability.profiling.churn import ChurnCounters, MemoryTracker
from repro.observability.profiling.clock import Clock, TickClock, wall_clock

__all__ = ["ScopeStats", "Profiler", "Profile", "ProfilerError", "install"]


class ProfilerError(RuntimeError):
    """Unbalanced enter/exit or a malformed profile file."""


class ScopeStats:
    """One node of the scope tree: a named region under one parent."""

    __slots__ = ("name", "calls", "cum", "self_time", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum = 0.0
        self.self_time = 0.0
        self.children: Dict[str, "ScopeStats"] = {}

    @property
    def component(self) -> str:
        """The accounting bucket: the scope name up to the first dot."""
        name = self.name
        dot = name.find(".")
        return name if dot < 0 else name[:dot]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "cum": self.cum,
            "self": self.self_time,
            "children": [
                self.children[name].to_dict() for name in sorted(self.children)
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScopeStats":
        try:
            node = cls(str(payload["name"]))
            node.calls = int(payload["calls"])
            node.cum = float(payload["cum"])
            node.self_time = float(payload["self"])
            children = payload["children"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfilerError(f"malformed scope node: {payload!r}") from exc
        for child in children:
            parsed = cls.from_dict(child)
            node.children[parsed.name] = parsed
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScopeStats {self.name!r} calls={self.calls} "
            f"cum={self.cum:.6f} self={self.self_time:.6f}>"
        )


class _Scope:
    """Context-manager shim over enter/exit (convenience, not hot path)."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "Profiler":
        self._profiler.enter(self._name)
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.exit()


#: name of the synthetic root every profile hangs off
ROOT_NAME = "profile"


class Profiler:
    """Collects nested scope timings, call counts and churn counters.

    Single-threaded by design — the discrete-event engine it
    instruments is single-threaded, and keeping enter/exit lock-free
    is what keeps the on-cost inside the 10% budget.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        track_memory: bool = False,
        label: str = "",
    ) -> None:
        self.clock: Clock = clock if clock is not None else wall_clock
        self.label = label
        self.root = ScopeStats(ROOT_NAME)
        self.churn = ChurnCounters()
        self.memory = MemoryTracker(enabled=track_memory)
        #: frames: [node, start_reading, seconds_attributed_to_children]
        self._stack: List[List[Any]] = []
        self._current = self.root
        self.memory.start()

    # -- hot-path API --------------------------------------------------
    def enter(self, name: str) -> None:
        """Open scope *name* under the current scope."""
        parent = self._current
        node = parent.children.get(name)
        if node is None:
            node = ScopeStats(name)
            parent.children[name] = node
        self._stack.append([node, self.clock(), 0.0])
        self._current = node

    def exit(self) -> None:
        """Close the innermost open scope."""
        stack = self._stack
        if not stack:
            raise ProfilerError("exit() with no open scope")
        node, start, child_seconds = stack.pop()
        elapsed = self.clock() - start
        node.calls += 1
        node.cum += elapsed
        node.self_time += elapsed - child_seconds
        if stack:
            frame = stack[-1]
            frame[2] += elapsed
            self._current = frame[0]
        else:
            self._current = self.root

    def count(self, name: str, n: int = 1) -> None:
        """Bump churn counter *name* (see :mod:`.churn`)."""
        counts = self.churn.counts
        counts[name] = counts.get(name, 0) + n

    # -- convenience API ----------------------------------------------
    def scope(self, name: str) -> _Scope:
        """``with profiler.scope("engine.step"): ...``"""
        return _Scope(self, name)

    @property
    def depth(self) -> int:
        """Currently open scopes (0 between engine steps)."""
        return len(self._stack)

    def snapshot(self, label: Optional[str] = None) -> "Profile":
        """Freeze the current tree + counters into a :class:`Profile`.

        Open scopes (``depth > 0``) are not yet accounted; snapshot
        between engine steps — or after the run — for exact totals.
        """
        self.memory.stop()
        root = ScopeStats.from_dict(self.root.to_dict())  # deep copy
        root.cum = sum(child.cum for child in root.children.values())
        clock = self.clock
        if isinstance(clock, TickClock):
            clock_kind = "deterministic"
        elif clock is wall_clock:
            clock_kind = "wall"
        else:
            clock_kind = "custom"
        return Profile(
            label=label if label is not None else self.label,
            clock=clock_kind,
            root=root,
            counters=self.churn.snapshot(),
            memory=self.memory.report(),
        )

    def reset(self) -> None:
        """Drop all accounting (open scopes must be closed first)."""
        if self._stack:
            raise ProfilerError(f"reset() with {self.depth} open scope(s)")
        self.root = ScopeStats(ROOT_NAME)
        self._current = self.root
        self.churn.clear()


class Profile:
    """An immutable snapshot of one profiled run."""

    __slots__ = ("label", "clock", "root", "counters", "memory")

    #: bumped when the on-disk schema changes
    FORMAT = 1

    def __init__(
        self,
        label: str,
        clock: str,
        root: ScopeStats,
        counters: Dict[str, int],
        memory: Optional[Dict[str, int]] = None,
    ) -> None:
        self.label = label
        self.clock = clock
        self.root = root
        self.counters = dict(counters)
        self.memory = dict(memory) if memory is not None else None

    # -- queries -------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Root cumulative seconds (== sum of every scope's self time)."""
        return self.root.cum

    def walk(self) -> Iterator[Tuple[Tuple[str, ...], ScopeStats]]:
        """Yield ``(path, node)`` depth-first, children in name order.

        The path excludes the synthetic root.
        """
        stack: List[Tuple[Tuple[str, ...], ScopeStats]] = [
            ((name,), self.root.children[name])
            for name in sorted(self.root.children, reverse=True)
        ]
        while stack:
            path, node = stack.pop()
            yield path, node
            for name in sorted(node.children, reverse=True):
                stack.append((path + (name,), node.children[name]))

    def by_component(self) -> Dict[str, Dict[str, float]]:
        """Self seconds + completed calls aggregated per component.

        The component is the scope name's first dot-segment (``engine``,
        ``enactor``, ``grid``, ``broker``, ``cache``, ``bus``) — the
        granularity `compare-runs` attribution reasons about.
        """
        table: Dict[str, Dict[str, float]] = {}
        for _path, node in self.walk():
            row = table.setdefault(node.component, {"self": 0.0, "calls": 0})
            row["self"] += node.self_time
            row["calls"] += node.calls
        return {name: table[name] for name in sorted(table)}

    def hottest(self, limit: int = 15) -> List[Tuple[Tuple[str, ...], ScopeStats]]:
        """Scopes by descending self time (path ties broken by name)."""
        ranked = sorted(
            self.walk(), key=lambda item: (-item[1].self_time, item[0])
        )
        return ranked[:limit]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "format": self.FORMAT,
            "label": self.label,
            "clock": self.clock,
            "root": self.root.to_dict(),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        if self.memory is not None:
            payload["memory"] = {k: self.memory[k] for k in sorted(self.memory)}
        return payload

    def to_json(self) -> str:
        """Canonical encoding: sorted keys, no whitespace drift.

        With a deterministic clock this string is byte-identical across
        identically seeded runs — the property CI asserts.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Profile":
        if not isinstance(payload, dict) or "root" not in payload:
            raise ProfilerError(f"not a profile payload: {type(payload).__name__}")
        fmt = payload.get("format")
        if fmt != cls.FORMAT:
            raise ProfilerError(f"unsupported profile format {fmt!r}")
        memory = payload.get("memory")
        return cls(
            label=str(payload.get("label", "")),
            clock=str(payload.get("clock", "wall")),
            root=ScopeStats.from_dict(payload["root"]),
            counters={
                str(k): int(v) for k, v in dict(payload.get("counters", {})).items()
            },
            memory={str(k): int(v) for k, v in memory.items()}
            if isinstance(memory, dict)
            else None,
        )

    def save(self, path: "str | Path") -> Path:
        """Write the canonical JSON encoding to *path*."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "Profile":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ProfilerError(f"cannot read profile {path}: {exc}") from exc
        return cls.from_dict(payload)


def install(profiler: Optional[Profiler], *targets: Any) -> Optional[Profiler]:
    """Point every target's ``profiler`` attribute at *profiler*.

    Targets are the instrumented objects — engine, grid, broker,
    enactor, bus.  ``None`` targets are skipped, so callers can pass
    optional pieces unconditionally::

        install(prof, engine, grid, grid and grid.broker, bus)

    Passing ``profiler=None`` uninstalls (restores the zero-cost path).
    """
    for target in targets:
        if target is not None:
            target.profiler = profiler
    return profiler
