"""Allocation-pressure accounting: how much garbage does a run make?

ROADMAP item 2 names "span/token churn, provenance hashing" as the
enactor overheads to cut.  Time profiles alone hide that cost — a
million tiny allocations show up as a diffuse slowdown everywhere, not
as one hot scope — so the profiler also counts the *objects* the hot
path creates:

* ``engine.heap_push`` / ``engine.heap_pop`` — event-heap traffic,
* ``bus.spans`` — spans emitted on the instrumentation bus,
* ``enactor.tokens`` — data/error tokens created,
* ``enactor.keys`` — provenance cache keys hashed,
* ``enactor.journal_appends`` — WAL lines written.

Counts are plain integers keyed by name, deterministic for a seeded
run, and land in the profile file next to the scope tree.

:class:`MemoryTracker` adds the optional ``tracemalloc`` dimension:
real allocated-byte deltas and peak, for when counts are not enough.
It is off by default because ``tracemalloc`` itself costs 2-4x — and
its numbers are machine-dependent, so they live in the profile's
*memory* section, never in the deterministic byte-identical part.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["ChurnCounters", "MemoryTracker"]


class ChurnCounters:
    """Named integer counters for object-allocation pressure."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created on first use)."""
        counts = self.counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> int:
        """Current value of *name* (0 if never counted)."""
        return self.counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A sorted copy, ready for serialization."""
        return {name: self.counts[name] for name in sorted(self.counts)}

    def clear(self) -> None:
        self.counts.clear()


class MemoryTracker:
    """Optional ``tracemalloc`` snapshot deltas around a profiled run.

    ``start()``/``stop()`` bracket the region; ``report()`` returns
    ``{"allocated_bytes": ..., "peak_bytes": ...}`` or ``None`` when
    tracking never ran (disabled, or tracemalloc unavailable).  If
    tracemalloc was already tracing (e.g. an outer test harness), the
    tracker piggybacks on it and leaves it running.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._tracemalloc = None
        self._started = False
        self._owns_tracing = False
        self._baseline = 0
        self._report: Optional[Dict[str, int]] = None
        if enabled:
            try:
                import tracemalloc
            except ImportError:  # pragma: no cover - stdlib, but stay gated
                self.enabled = False
            else:
                self._tracemalloc = tracemalloc

    def start(self) -> None:
        if not self.enabled or self._started:
            return
        tm = self._tracemalloc
        if not tm.is_tracing():
            tm.start()
            self._owns_tracing = True
        self._baseline = tm.get_traced_memory()[0]
        tm.reset_peak()
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        tm = self._tracemalloc
        current, peak = tm.get_traced_memory()
        self._report = {
            "allocated_bytes": max(0, current - self._baseline),
            "peak_bytes": peak,
        }
        if self._owns_tracing:
            tm.stop()
            self._owns_tracing = False
        self._started = False

    def report(self) -> Optional[Dict[str, int]]:
        """The last start/stop delta, or None if tracking never ran."""
        return dict(self._report) if self._report is not None else None
