"""Turn profiles into answers: reports, diffs, regression attribution.

A tripped ``compare-runs --budget-throughput`` gate says the run got
slower; this module says *where*.  Three layers:

* :func:`profile_counters` folds a profile into flat runstore counters
  — ``perf.profile.<component>`` (self microseconds) and
  ``perf.profile.<component>.calls`` — so every runstore row carries a
  compact per-component breakdown next to ``perf.events_per_sec``.
* :func:`attribute` ranks the per-component deltas between two counter
  mappings (live profiles or stored runstore rows) — the table
  ``compare-runs`` prints when a throughput budget fails.
* :func:`diff_profiles` is the full-resolution version over two
  profile files: per-component and per-scope deltas plus churn-counter
  movement, for ``repro profile diff``.

Components are scope-name prefixes (``engine``, ``enactor``, ``grid``,
``broker``, ``cache``, ``bus``) — coarse on purpose: the question a
gate failure asks is "which subsystem do I profile next", not "which
line".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.observability.profiling.profiler import Profile

__all__ = [
    "PROFILE_PREFIX",
    "profile_counters",
    "components_from_counters",
    "ComponentDelta",
    "attribute",
    "ScopeDelta",
    "ProfileDiff",
    "diff_profiles",
    "format_attribution",
    "format_profile_report",
    "format_profile_diff",
]

#: runstore counter namespace for the per-component breakdown
PROFILE_PREFIX = "perf.profile."


def profile_counters(profile: Profile) -> Dict[str, float]:
    """Flatten a profile into runstore counters.

    ``perf.profile.<component>`` carries the component's self time in
    microseconds; ``perf.profile.<component>.calls`` its completed
    scope count.  Component names contain no dots, so the two are
    unambiguous to parse back.
    """
    counters: Dict[str, float] = {}
    for component, row in profile.by_component().items():
        counters[f"{PROFILE_PREFIX}{component}"] = round(row["self"] * 1e6, 1)
        counters[f"{PROFILE_PREFIX}{component}.calls"] = float(row["calls"])
    return counters


def components_from_counters(
    counters: Mapping[str, float],
) -> Dict[str, Dict[str, float]]:
    """Parse ``perf.profile.*`` counters back to per-component rows."""
    table: Dict[str, Dict[str, float]] = {}
    for key, value in counters.items():
        if not key.startswith(PROFILE_PREFIX):
            continue
        rest = key[len(PROFILE_PREFIX):]
        if rest.endswith(".calls"):
            component, field = rest[: -len(".calls")], "calls"
        elif "." not in rest:
            component, field = rest, "self_us"
        else:
            continue  # unknown sub-key; ignore rather than misattribute
        table.setdefault(component, {"self_us": 0.0, "calls": 0.0})[field] = float(
            value
        )
    return {name: table[name] for name in sorted(table)}


@dataclass(frozen=True)
class ComponentDelta:
    """One component's movement between baseline and candidate."""

    component: str
    baseline_us: float
    candidate_us: float
    baseline_calls: float = 0.0
    candidate_calls: float = 0.0

    @property
    def delta_us(self) -> float:
        return self.candidate_us - self.baseline_us

    @property
    def ratio(self) -> float:
        """Relative growth; a zero baseline reports the raw growth in seconds."""
        if self.baseline_us > 0:
            return self.delta_us / self.baseline_us
        return self.delta_us / 1e6

    def describe(self) -> str:
        return (
            f"{self.component}: {self.baseline_us:.0f}us -> "
            f"{self.candidate_us:.0f}us  ({self.delta_us:+.0f}us, "
            f"{self.ratio:+.0%}; calls {self.baseline_calls:.0f} -> "
            f"{self.candidate_calls:.0f})"
        )


def attribute(
    baseline: Mapping[str, float], candidate: Mapping[str, float]
) -> List[ComponentDelta]:
    """Rank components by absolute self-time growth, worst first.

    Inputs are counter mappings containing ``perf.profile.*`` keys —
    runstore rows or :func:`profile_counters` output.  Components seen
    on only one side count from/to zero.  Empty when neither side
    carries a profile breakdown.
    """
    left = components_from_counters(baseline)
    right = components_from_counters(candidate)
    deltas = [
        ComponentDelta(
            component=name,
            baseline_us=left.get(name, {}).get("self_us", 0.0),
            candidate_us=right.get(name, {}).get("self_us", 0.0),
            baseline_calls=left.get(name, {}).get("calls", 0.0),
            candidate_calls=right.get(name, {}).get("calls", 0.0),
        )
        for name in sorted(set(left) | set(right))
    ]
    return sorted(deltas, key=lambda d: (-d.delta_us, d.component))


@dataclass(frozen=True)
class ScopeDelta:
    """One scope path's self-time movement between two profiles."""

    path: Tuple[str, ...]
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline


@dataclass(frozen=True)
class ProfileDiff:
    """Everything that moved between two profiles."""

    baseline: Profile
    candidate: Profile
    components: Tuple[ComponentDelta, ...]
    scopes: Tuple[ScopeDelta, ...]
    counters: Dict[str, int]  # churn counter deltas (candidate - baseline)

    @property
    def top_component(self) -> "ComponentDelta | None":
        """The worst-regressed component, if anything regressed."""
        for delta in self.components:
            if delta.delta_us > 0:
                return delta
        return None


def diff_profiles(baseline: Profile, candidate: Profile) -> ProfileDiff:
    """Full-resolution diff: components, scopes, churn counters."""
    components = attribute(profile_counters(baseline), profile_counters(candidate))
    left = {path: node.self_time for path, node in baseline.walk()}
    right = {path: node.self_time for path, node in candidate.walk()}
    scopes = sorted(
        (
            ScopeDelta(path, left.get(path, 0.0), right.get(path, 0.0))
            for path in set(left) | set(right)
        ),
        key=lambda d: (-d.delta, d.path),
    )
    counters = {
        name: candidate.counters.get(name, 0) - baseline.counters.get(name, 0)
        for name in sorted(set(baseline.counters) | set(candidate.counters))
    }
    return ProfileDiff(
        baseline=baseline,
        candidate=candidate,
        components=tuple(components),
        scopes=tuple(scopes),
        counters=counters,
    )


# -- formatting ------------------------------------------------------------


def format_attribution(deltas: List[ComponentDelta], limit: int = 5) -> List[str]:
    """Printable lines naming the top regressed components.

    Only components that actually grew appear; an empty list means the
    slowdown is not visible in the component breakdown (or no
    breakdown was recorded).
    """
    regressed = [d for d in deltas if d.delta_us > 0][:limit]
    if not regressed:
        return []
    lines = ["top regressed components (perf.profile.*, self time):"]
    lines.extend(f"  {delta.describe()}" for delta in regressed)
    return lines


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    """Minimal aligned table (kept local: observability must not import
    the experiments reporting helpers)."""
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(row) for row in rows)
    return out


def format_profile_report(profile: Profile, limit: int = 15) -> str:
    """Human report: component table, hottest scopes, churn counters."""
    lines: List[str] = [
        f"profile: {profile.label or '(unlabelled)'}  "
        f"clock={profile.clock}  total={profile.total_time * 1e3:.3f}ms"
    ]
    components = profile.by_component()
    total = profile.total_time or 1.0
    if components:
        rows = [
            [
                name,
                f"{row['self'] * 1e6:.0f}",
                f"{row['self'] / total:.1%}",
                f"{row['calls']:.0f}",
            ]
            for name, row in sorted(
                components.items(), key=lambda item: -item[1]["self"]
            )
        ]
        lines.append("")
        lines.extend(_table(["component", "self (us)", "share", "calls"], rows))
    hottest = profile.hottest(limit)
    if hottest:
        rows = [
            [
                ";".join(path),
                f"{node.self_time * 1e6:.0f}",
                f"{node.cum * 1e6:.0f}",
                f"{node.calls}",
            ]
            for path, node in hottest
        ]
        lines.append("")
        lines.extend(_table(["scope", "self (us)", "cum (us)", "calls"], rows))
    if profile.counters:
        lines.append("")
        lines.append("churn counters:")
        lines.extend(
            f"  {name:<28} {value}" for name, value in profile.counters.items()
        )
    if profile.memory is not None:
        lines.append("")
        lines.append(
            f"memory (tracemalloc): allocated "
            f"{profile.memory.get('allocated_bytes', 0):,} bytes, peak "
            f"{profile.memory.get('peak_bytes', 0):,} bytes"
        )
    return "\n".join(lines)


def format_profile_diff(diff: ProfileDiff, limit: int = 10) -> str:
    """Human diff: ranked components, biggest scope moves, churn moves."""
    lines = [
        f"baseline:  {diff.baseline.label or '(unlabelled)'}  "
        f"total={diff.baseline.total_time * 1e3:.3f}ms",
        f"candidate: {diff.candidate.label or '(unlabelled)'}  "
        f"total={diff.candidate.total_time * 1e3:.3f}ms",
    ]
    if diff.baseline.clock != diff.candidate.clock:
        lines.append(
            f"WARNING: clocks differ ({diff.baseline.clock} vs "
            f"{diff.candidate.clock}); deltas are not comparable units"
        )
    rows = [
        [
            d.component,
            f"{d.baseline_us:.0f}",
            f"{d.candidate_us:.0f}",
            f"{d.delta_us:+.0f}",
            f"{d.ratio:+.0%}",
            f"{d.baseline_calls:.0f} -> {d.candidate_calls:.0f}",
        ]
        for d in diff.components
    ]
    if rows:
        lines.append("")
        lines.extend(
            _table(
                ["component", "base (us)", "cand (us)", "delta", "ratio", "calls"],
                rows,
            )
        )
    moved = [d for d in diff.scopes if d.delta != 0.0][:limit]
    if moved:
        lines.append("")
        lines.append("biggest scope moves (self time):")
        lines.extend(
            f"  {';'.join(d.path)}: {d.baseline * 1e6:.0f}us -> "
            f"{d.candidate * 1e6:.0f}us ({d.delta * 1e6:+.0f}us)"
            for d in moved
        )
    churn_moves = {name: delta for name, delta in diff.counters.items() if delta}
    if churn_moves:
        lines.append("")
        lines.append("churn deltas:")
        lines.extend(f"  {name:<28} {delta:+d}" for name, delta in churn_moves.items())
    return "\n".join(lines)
