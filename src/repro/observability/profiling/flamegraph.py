"""Flamegraph exporters: collapsed-stack text and speedscope JSON.

Two interchange formats, both rendered from the :class:`~.profiler.Profile`
scope tree:

* **Collapsed stacks** (Brendan Gregg's ``stackcollapse`` format): one
  line per unique stack, frames joined by ``;``, followed by an integer
  weight — here the scope's *self* time in whole microseconds.  Feed it
  to ``flamegraph.pl`` or paste into speedscope directly.
* **speedscope JSON** (https://www.speedscope.app/file-format-schema.json):
  a ``sampled`` profile whose samples are the unique stacks and whose
  weights are the same self-time microseconds.

Both encoders are deterministic — stacks sorted, frames indexed in
first-appearance order — so a profile recorded with the deterministic
clock exports byte-identical flamegraphs across identically seeded
runs.  Both have strict parsers (:func:`parse_collapsed`,
:func:`parse_speedscope`) that reject malformed input and reconstruct
the exact stack→weight mapping, which is what the round-trip tests
assert.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.observability.profiling.profiler import Profile, ProfilerError

__all__ = [
    "collapsed_weights",
    "to_collapsed",
    "parse_collapsed",
    "to_speedscope",
    "parse_speedscope",
    "speedscope_json",
]

#: one stack: the path of scope names from a top-level scope down
Stack = Tuple[str, ...]


def _micros(seconds: float) -> int:
    """Self seconds -> whole microseconds (the flamegraph weight unit)."""
    return int(round(seconds * 1e6))


def collapsed_weights(profile: Profile) -> Dict[Stack, int]:
    """The stack -> self-microseconds mapping both exporters encode.

    Zero-weight stacks (all time attributed to children, or a scope
    faster than 1µs of accumulated self time) are dropped — the
    collapsed format has no notion of a zero-count sample.
    """
    weights: Dict[Stack, int] = {}
    for path, node in profile.walk():
        weight = _micros(node.self_time)
        if weight > 0:
            weights[path] = weight
    return weights


def to_collapsed(profile: Profile) -> str:
    """Render Brendan Gregg collapsed-stack text (sorted, newline-terminated)."""
    weights = collapsed_weights(profile)
    lines = [
        ";".join(stack) + f" {weights[stack]}" for stack in sorted(weights)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Stack, int]:
    """Strictly parse collapsed-stack text back to stack -> weight.

    Raises :class:`ProfilerError` on empty frames, non-positive or
    non-integer weights, or duplicate stacks.
    """
    weights: Dict[Stack, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack_part, sep, weight_part = line.rpartition(" ")
        if not sep or not stack_part:
            raise ProfilerError(f"line {lineno}: not 'stack weight': {line!r}")
        try:
            weight = int(weight_part)
        except ValueError as exc:
            raise ProfilerError(
                f"line {lineno}: weight {weight_part!r} is not an integer"
            ) from exc
        if weight <= 0:
            raise ProfilerError(f"line {lineno}: weight must be positive, got {weight}")
        stack = tuple(stack_part.split(";"))
        if any(not frame for frame in stack):
            raise ProfilerError(f"line {lineno}: empty frame in {stack_part!r}")
        if stack in weights:
            raise ProfilerError(f"line {lineno}: duplicate stack {stack_part!r}")
        weights[stack] = weight
    return weights


_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def to_speedscope(profile: Profile) -> Dict[str, Any]:
    """Render the speedscope document (a ``sampled`` profile)."""
    weights = collapsed_weights(profile)
    frames: List[str] = []
    frame_index: Dict[str, int] = {}
    samples: List[List[int]] = []
    sample_weights: List[int] = []
    for stack in sorted(weights):
        indexed = []
        for frame in stack:
            if frame not in frame_index:
                frame_index[frame] = len(frames)
                frames.append(frame)
            indexed.append(frame_index[frame])
        samples.append(indexed)
        sample_weights.append(weights[stack])
    total = sum(sample_weights)
    name = profile.label or "repro profile"
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.observability.profiling",
        "shared": {"frames": [{"name": frame} for frame in frames]},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": sample_weights,
            }
        ],
    }


def speedscope_json(profile: Profile) -> str:
    """The canonical speedscope encoding (sorted keys, stable bytes)."""
    return json.dumps(to_speedscope(profile), sort_keys=True, separators=(",", ":"))


def parse_speedscope(document: "Dict[str, Any] | str") -> Dict[Stack, int]:
    """Strictly validate a speedscope doc; returns stack -> weight.

    Accepts the dict or its JSON text.  Raises :class:`ProfilerError`
    on schema violations: wrong ``$schema``, missing sections, frame
    indices out of range, mismatched samples/weights lengths, or an
    ``endValue`` that disagrees with the weight sum.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ProfilerError(f"speedscope document is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProfilerError("speedscope document must be a JSON object")
    if document.get("$schema") != _SPEEDSCOPE_SCHEMA:
        raise ProfilerError(f"unexpected $schema {document.get('$schema')!r}")
    shared = document.get("shared")
    profiles = document.get("profiles")
    if not isinstance(shared, dict) or not isinstance(profiles, list) or not profiles:
        raise ProfilerError("speedscope document needs shared.frames and profiles")
    raw_frames = shared.get("frames")
    if not isinstance(raw_frames, list):
        raise ProfilerError("shared.frames must be a list")
    frames: List[str] = []
    for entry in raw_frames:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise ProfilerError(f"malformed frame entry: {entry!r}")
        frames.append(entry["name"])
    prof = profiles[0]
    if prof.get("type") != "sampled" or prof.get("unit") != "microseconds":
        raise ProfilerError("expected a sampled, microsecond-unit profile")
    samples = prof.get("samples")
    weights = prof.get("weights")
    if not isinstance(samples, list) or not isinstance(weights, list):
        raise ProfilerError("profile needs samples and weights lists")
    if len(samples) != len(weights):
        raise ProfilerError(
            f"samples/weights length mismatch: {len(samples)} vs {len(weights)}"
        )
    out: Dict[Stack, int] = {}
    for sample, weight in zip(samples, weights):
        if not isinstance(weight, int) or weight <= 0:
            raise ProfilerError(f"weight must be a positive integer, got {weight!r}")
        if not isinstance(sample, list) or not sample:
            raise ProfilerError(f"sample must be a non-empty index list: {sample!r}")
        stack: List[str] = []
        for index in sample:
            if not isinstance(index, int) or not 0 <= index < len(frames):
                raise ProfilerError(f"frame index {index!r} out of range")
            stack.append(frames[index])
        key = tuple(stack)
        if key in out:
            raise ProfilerError(f"duplicate sample stack {key!r}")
        out[key] = weight
    if prof.get("endValue") != sum(weights):
        raise ProfilerError(
            f"endValue {prof.get('endValue')!r} != weight sum {sum(weights)}"
        )
    return out
