"""The one time source every performance number routes through.

Three kinds of callers need "a clock" in this codebase and they must
agree on what that means:

* the hot-path profiler (:mod:`repro.observability.profiling.profiler`)
  timing ``scope()`` regions,
* the service throughput counters
  (:meth:`repro.service.scheduler.EnactmentService.perf_counters`),
* the overhead benchmarks under ``benchmarks/``.

``wall_clock`` is that shared helper: a monotonic wall-time reading
(``time.perf_counter``) behind one name, so swapping the time source —
for tests, or for a deterministic profile — is one assignment, not a
grep for ``perf_counter`` call sites.

Determinism matters more than precision for some profiles: the
acceptance bar for the profiler is that two identically seeded runs
produce *byte-identical* profile files, which no wall clock can
deliver.  :class:`TickClock` is the deterministic alternative — every
reading advances a virtual quantum, so durations become exact call
counts in disguise: reproducible across runs, machines, and CI,
while preserving the tree shape and relative weights that matter for
flamegraphs and regression attribution.  :class:`ManualClock` is the
test double where the reading only moves when the test says so.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "wall_clock", "TickClock", "ManualClock", "resolve_clock"]

#: anything callable returning "seconds now" works as a clock
Clock = Callable[[], float]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (the shared ``perf_counter`` alias)."""
    return time.perf_counter()


class TickClock:
    """Deterministic clock: each reading advances one fixed quantum.

    With this clock a scope's "duration" is proportional to the number
    of clock readings taken inside it — i.e. to the number of profiled
    operations — which is a pure function of the simulation's seeded
    control flow.  Same seed, same profile bytes.
    """

    __slots__ = ("ticks", "quantum")

    def __init__(self, quantum: float = 1e-6) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self.ticks = 0
        self.quantum = quantum

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.quantum


class ManualClock:
    """Test clock: reads return the value last set/advanced to."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self.now += seconds
        return self.now

    def __call__(self) -> float:
        return self.now


def resolve_clock(spec: "str | Clock | None") -> Clock:
    """Map a CLI-ish spec to a clock instance.

    ``None``/"wall" -> the shared wall clock; "deterministic"/"tick"
    -> a fresh :class:`TickClock`; a callable passes through.
    """
    if spec is None or spec == "wall":
        return wall_clock
    if spec in ("deterministic", "tick"):
        return TickClock()
    if callable(spec):
        return spec
    raise ValueError(f"unknown clock spec {spec!r} (wall | deterministic)")
