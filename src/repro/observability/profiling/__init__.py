"""Hot-path profiling: deterministic scopes, churn counts, flamegraphs.

The measurement side of ROADMAP item 2 ("make the event core
scream").  A :class:`Profiler` installed on the engine/grid/enactor/
bus (see :func:`install`) accounts every hot-path region — event
dispatch, invocation lifecycle, submission, brokering, cache lookups,
and the instrumentation bus itself — into a scope tree with per-call
self/cumulative time, plus allocation-pressure counters.  Snapshots
(:class:`Profile`) export to collapsed-stack / speedscope flamegraphs
and diff into ranked per-component regression tables that
``compare-runs`` prints when a throughput budget trips.

Profiling is off unless installed; the instrumented call sites pay one
``is not None`` test when it is not.
"""

from repro.observability.profiling.attribution import (
    PROFILE_PREFIX,
    ComponentDelta,
    ProfileDiff,
    ScopeDelta,
    attribute,
    components_from_counters,
    diff_profiles,
    format_attribution,
    format_profile_diff,
    format_profile_report,
    profile_counters,
)
from repro.observability.profiling.churn import ChurnCounters, MemoryTracker
from repro.observability.profiling.clock import (
    Clock,
    ManualClock,
    TickClock,
    resolve_clock,
    wall_clock,
)
from repro.observability.profiling.flamegraph import (
    collapsed_weights,
    parse_collapsed,
    parse_speedscope,
    speedscope_json,
    to_collapsed,
    to_speedscope,
)
from repro.observability.profiling.profiler import (
    Profile,
    Profiler,
    ProfilerError,
    ScopeStats,
    install,
)

__all__ = [
    "Clock",
    "wall_clock",
    "TickClock",
    "ManualClock",
    "resolve_clock",
    "ChurnCounters",
    "MemoryTracker",
    "Profiler",
    "Profile",
    "ProfilerError",
    "ScopeStats",
    "install",
    "collapsed_weights",
    "to_collapsed",
    "parse_collapsed",
    "to_speedscope",
    "parse_speedscope",
    "speedscope_json",
    "PROFILE_PREFIX",
    "profile_counters",
    "components_from_counters",
    "ComponentDelta",
    "ScopeDelta",
    "ProfileDiff",
    "attribute",
    "diff_profiles",
    "format_attribution",
    "format_profile_report",
    "format_profile_diff",
]
