"""The instrumentation bus: span producers on one side, subscribers on the other.

Instrumented code (enactor, middleware, computing elements) talks to an
:class:`InstrumentationBus`; what happens to the spans is decided by
the attached :class:`Subscriber` s:

* :class:`InMemoryCollector` — keeps every finished span for in-process
  assertions and reports,
* :class:`JsonlExporter` — one JSON object per finished span, the
  on-disk run-trace format (``python -m repro.experiments report-trace``
  reads it back),
* :class:`ChromeTraceExporter` — the Chrome trace-event JSON that
  ``chrome://tracing`` and Perfetto load directly,
* :class:`LoggingSubscriber` — bridges finished spans onto the standard
  :mod:`logging` tree (see :mod:`repro.observability.logbridge`).

The bus also owns the run's :class:`~repro.observability.metrics.MetricsRegistry`
so a single object wires a whole stack, and it allocates span ids from
a deterministic sequence — simulated systems must stay replayable.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Span, span_sort_key

__all__ = [
    "Subscriber",
    "InstrumentationBus",
    "InMemoryCollector",
    "JsonlExporter",
    "ChromeTraceExporter",
    "chrome_trace_json",
]


class Subscriber:
    """Receives span lifecycle notifications; override what you need."""

    def on_start(self, span: Span) -> None:
        """Called when a span opens (default: ignore)."""

    def on_end(self, span: Span) -> None:
        """Called when a span closes (default: ignore)."""


class InstrumentationBus:
    """Fan-out point for spans plus the shared metrics registry.

    One bus instruments one simulation stack (engine + grid + enactor).
    Sharing it across several sequential runs is fine — that is how the
    warm-re-execution studies compare cold and warm traces — and the
    per-run metrics protocol (:meth:`MetricsRegistry.snapshot` +
    ``since``) keeps the numbers separable.
    """

    def __init__(self, subscribers: Optional[List[Subscriber]] = None) -> None:
        self.subscribers: List[Subscriber] = list(subscribers or [])
        self.metrics = MetricsRegistry()
        #: the currently running enactment's root span, if any; the
        #: grid parents its job spans here (correct whenever a single
        #: enactment drives the grid, which is the harness protocol).
        self.run_span: Optional[Span] = None
        self._sequence = 0
        self._run_sequence = 0
        #: hot-path profiler (repro.observability.profiling).  The bus
        #: instruments *itself* so the cost of observability shows up in
        #: profiles as the ``bus`` component instead of inflating
        #: whatever scope happened to emit a span.  None = off.
        self.profiler = None

    # -- wiring ----------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach *subscriber*; returns it for chaining."""
        self.subscribers.append(subscriber)
        return subscriber

    def collector(self) -> "InMemoryCollector":
        """Attach and return a fresh in-memory collector."""
        return self.subscribe(InMemoryCollector())  # type: ignore[return-value]

    # -- span lifecycle --------------------------------------------------
    def next_span_id(self, hint: str = "s") -> str:
        """Allocate a deterministic span id (``s1``, ``s2``, ...)."""
        self._sequence += 1
        return f"{hint}{self._sequence}"

    def next_trace_id(self, name: str) -> str:
        """Allocate a run-level correlation id."""
        self._run_sequence += 1
        return f"run-{self._run_sequence}:{name}"

    def begin(
        self,
        name: str,
        category: str,
        start: float,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Open a span and notify subscribers."""
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("bus.begin")
            profiler.count("bus.spans")
        try:
            if trace_id is None:
                trace_id = parent.trace_id if parent is not None else ""
            span = Span(
                name=name,
                category=category,
                span_id=span_id if span_id is not None else self.next_span_id(),
                trace_id=trace_id,
                parent_id=parent.span_id if parent is not None else None,
                start=start,
                status=status,
                attributes=dict(attributes),
            )
            for subscriber in self.subscribers:
                subscriber.on_start(span)
            return span
        finally:
            if profiler is not None:
                profiler.exit()

    def end(self, span: Span, end: float, status: Optional[str] = None, **attributes: Any) -> Span:
        """Close *span* and notify subscribers."""
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("bus.end")
        try:
            span.close(end, status=status, **attributes)
            for subscriber in self.subscribers:
                subscriber.on_end(span)
            return span
        finally:
            if profiler is not None:
                profiler.exit()

    def record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Emit an already-finished span (phase spans, instant events)."""
        span = self.begin(
            name,
            category,
            start,
            parent=parent,
            trace_id=trace_id,
            span_id=span_id,
            status=status,
            **attributes,
        )
        return self.end(span, end)


class InMemoryCollector(Subscriber):
    """Keeps every finished span in memory, with query helpers."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def on_end(self, span: Span) -> None:
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def named(self, name: str) -> List[Span]:
        """Finished spans called *name*, start order."""
        return sorted((s for s in self.spans if s.name == name), key=span_sort_key)

    def category(self, category: str) -> List[Span]:
        """Finished spans of one *category*, start order."""
        return sorted((s for s in self.spans if s.category == category), key=span_sort_key)

    def for_job(self, job_id: int) -> List[Span]:
        """Every span attributed to grid job *job_id* (phases included)."""
        out = []
        for span in self.spans:
            attrs = span.attributes
            if attrs.get("job_id") == job_id or job_id in (attrs.get("job_ids") or ()):
                out.append(span)
        return sorted(out, key=span_sort_key)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span*, start order."""
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id), key=span_sort_key
        )

    def clear(self) -> None:
        """Forget everything collected so far."""
        self.spans.clear()


class JsonlExporter(Subscriber):
    """Writes one JSON line per finished span.

    Accepts a path (opened lazily, closed by :meth:`close`) or any
    file-like object (left open; the caller owns it).  Lines appear in
    span *completion* order — a stream, not a sorted report; readers
    sort by start time.

    Every line is flushed as it is written: the file on disk is always
    a valid JSONL prefix of the trace, so ``tail -f`` (or the live
    monitor's replay tests) can read it *mid-run* instead of finding an
    empty buffer.  Usable as a context manager::

        with JsonlExporter("run.jsonl") as exporter:
            bus.subscribe(exporter)
            ...
    """

    def __init__(self, destination: Union[str, os.PathLike, io.TextIOBase]) -> None:
        self._path: Optional[str] = None
        self._file: Optional[Any] = None
        self._owns_file = False
        if hasattr(destination, "write"):
            self._file = destination
        else:
            self._path = os.fspath(destination)
        self.lines_written = 0

    def _handle(self):
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
            self._owns_file = True
        return self._file

    def on_end(self, span: Span) -> None:
        handle = self._handle()
        handle.write(json.dumps(span.to_dict(), sort_keys=True))
        handle.write("\n")
        handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the output (no-op for caller-owned files)."""
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ChromeTraceExporter(Subscriber):
    """Accumulates Chrome trace-event JSON (``chrome://tracing``, Perfetto).

    Every finished span becomes a complete ("X") event with microsecond
    timestamps; zero-duration spans (cache hits, instantaneous phases)
    become thread-scoped instant ("i") events, which Perfetto draws as
    markers instead of silently dropping 0-width slices.  Lanes (tids)
    are assigned per processor / computing element / category so the
    rendered view reads like the paper's execution diagrams: one row
    per service, grid activity below.
    """

    PID = 1

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._lanes: Dict[str, int] = {}

    def _lane(self, span: Span) -> int:
        attrs = span.attributes
        label = (
            attrs.get("processor")
            or attrs.get("ce")
            or ("grid jobs" if span.category == "grid" else span.category)
        )
        lane = self._lanes.get(label)
        if lane is None:
            lane = self._lanes[label] = len(self._lanes) + 1
            self.events.append(
                {
                    "ph": "M",
                    "pid": self.PID,
                    "tid": lane,
                    "name": "thread_name",
                    "args": {"name": str(label)},
                }
            )
        return lane

    def on_end(self, span: Span) -> None:
        args = {k: v for k, v in span.attributes.items()}
        args["status"] = span.status
        args["span_id"] = span.span_id
        if span.trace_id:
            args["trace_id"] = span.trace_id
        event: Dict[str, Any] = {
            "pid": self.PID,
            "tid": self._lane(span),
            "name": span.name,
            "cat": span.category,
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.duration > 0.0:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread scope: marker drawn on the span's lane
        self.events.append(event)

    def to_json(self) -> str:
        """The accumulated trace as a Chrome trace-event JSON document."""
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"}, default=str
        )

    def write(self, path: Union[str, os.PathLike]) -> None:
        """Write :meth:`to_json` to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


def chrome_trace_json(spans: List[Span]) -> str:
    """One-shot conversion: a span list to Chrome trace-event JSON."""
    exporter = ChromeTraceExporter()
    for span in sorted(spans, key=span_sort_key):
        exporter.on_end(span)
    return exporter.to_json()
