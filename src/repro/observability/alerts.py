"""Typed, structured alerts: what the live monitor tells the world.

An :class:`Alert` is one actionable finding, raised by the
:class:`~repro.observability.monitor.RunMonitor` while a run is in
flight.  The kinds mirror the production-grid failure modes the paper's
era fought by hand via job monitoring:

``straggler``
    a job (scope ``job``) or computing element (scope ``ce``) whose
    queue/run phases are abnormally long against the fleet's robust
    statistics;
``blackhole``
    a CE failing jobs quickly enough to look attractive to least-loaded
    ranking (high fault rate + low time-to-failure);
``fault-burst``
    several failed attempts inside a short window — the "D0 was
    submitted twice because an error occurred" narrative of Figure 6,
    observed live;
``eta-blowout``
    the blended progress ETA drifted past the Section 3.5 model
    prediction by more than the configured factor;
``queue-stall``
    one job sat in a CE batch queue beyond the absolute stall
    threshold;
``slo-burn``
    a control-plane service-level objective (queue-wait p95, run
    success rate, fair-share deviation — see
    :mod:`repro.observability.ops.slo`) is burning its error budget
    faster than the configured burn-rate threshold.

Alerts are timestamped in simulated seconds, carry a monotonically
increasing per-monitor sequence number (so ordering is total and
deterministic even at equal timestamps), and serialize to one JSON
object per line — the same streaming discipline as the span trace, so
``tail -f`` on the alert file works mid-run.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "ALERT_KINDS",
    "Alert",
    "AlertError",
    "AlertRules",
    "JsonlAlertWriter",
    "alert_sort_key",
    "alerts_to_jsonl",
    "alerts_from_jsonl",
]

#: every kind the monitor can raise, in severity-agnostic display order
ALERT_KINDS: Tuple[str, ...] = (
    "straggler",
    "blackhole",
    "fault-burst",
    "eta-blowout",
    "queue-stall",
    "slo-burn",
    "se-outage",
    "replica-corruption",
    "transfer-storm",
)


class AlertError(ValueError):
    """Malformed alert records or streams."""


@dataclass(frozen=True)
class Alert:
    """One actionable monitoring finding.

    ``subject`` names what the alert is about (a CE name, a service
    name, or ``job:<id>``); ``scope`` qualifies the granularity
    (``job``, ``ce``, ``service``, ``run``).  ``sequence`` is assigned
    by the emitting monitor and makes ordering total: two alerts raised
    at the same simulated instant still compare deterministically.
    """

    kind: str
    time: float
    subject: str
    scope: str = "ce"
    severity: str = "warning"
    message: str = ""
    sequence: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ALERT_KINDS:
            raise AlertError(
                f"unknown alert kind {self.kind!r}; expected one of {ALERT_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL line schema (stable, documented in the README)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "subject": self.subject,
            "scope": self.scope,
            "severity": self.severity,
            "message": self.message,
            "sequence": self.sequence,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Alert":
        """Rebuild an alert from its :meth:`to_dict` form."""
        try:
            return cls(
                kind=str(payload["kind"]),
                time=float(payload["time"]),
                subject=str(payload["subject"]),
                scope=str(payload.get("scope", "ce")),
                severity=str(payload.get("severity", "warning")),
                message=str(payload.get("message", "")),
                sequence=int(payload.get("sequence", 0)),
                attributes=dict(payload.get("attributes") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AlertError(f"malformed alert record: {exc}") from None


def alert_sort_key(alert: Alert) -> Tuple[float, int]:
    """Total deterministic ordering: by time, then emission sequence."""
    return (alert.time, alert.sequence)


def alerts_to_jsonl(alerts: Iterable[Alert]) -> str:
    """Serialize *alerts* as one JSON object per line."""
    return "\n".join(json.dumps(a.to_dict(), sort_keys=True) for a in alerts)


def alerts_from_jsonl(text: "str | Iterable[str]") -> List[Alert]:
    """Parse an alert JSONL stream (blank lines ignored)."""
    lines = text.splitlines() if isinstance(text, str) else text
    alerts: List[Alert] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AlertError(f"line {lineno} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "kind" not in payload:
            raise AlertError(f"line {lineno} is not an alert record: {line[:80]!r}")
        alerts.append(Alert.from_dict(payload))
    return alerts


@dataclass(frozen=True)
class AlertRules:
    """Pluggable thresholds gating when each alert kind fires.

    Embeds the statistical thresholds
    (:class:`~repro.observability.health.HealthThresholds` fields are
    mirrored here so one object configures the whole monitor) plus the
    alert-only knobs.
    """

    #: robust z over fleet queue/run durations flagging a straggler job
    straggler_z: float = 3.5
    #: fraction of straggler jobs flagging a straggler CE
    ce_straggler_fraction: float = 0.5
    #: attempt fault rate flagging a blackhole-suspect CE
    blackhole_fault_rate: float = 0.5
    #: "fast failure" = median TTF below this fraction of the fleet's
    #: median run phase
    blackhole_ttf_factor: float = 0.5
    #: absolute fast-failure bound used before any run phase completed
    blackhole_ttf_floor: float = 120.0
    #: observations required before CE-level flags can raise
    min_samples: int = 4
    #: faults within ``fault_burst_window`` needed for a fault-burst
    fault_burst_count: int = 3
    #: sliding window (simulated seconds) for fault-burst counting
    fault_burst_window: float = 900.0
    #: a queue phase beyond this many seconds is a queue-stall
    queue_stall_seconds: float = 3600.0
    #: blended ETA beyond model prediction x this factor = eta-blowout
    eta_blowout_factor: float = 2.0
    #: failed transfers within ``transfer_storm_window`` = transfer-storm
    transfer_storm_count: int = 5
    #: sliding window (simulated seconds) for transfer-storm counting
    transfer_storm_window: float = 600.0

    def __post_init__(self) -> None:
        if self.fault_burst_count < 1:
            raise ValueError(
                f"fault_burst_count must be >= 1, got {self.fault_burst_count}"
            )
        if self.fault_burst_window <= 0:
            raise ValueError(
                f"fault_burst_window must be > 0, got {self.fault_burst_window}"
            )
        if self.eta_blowout_factor <= 1.0:
            raise ValueError(
                f"eta_blowout_factor must be > 1, got {self.eta_blowout_factor}"
            )
        if self.transfer_storm_count < 1:
            raise ValueError(
                f"transfer_storm_count must be >= 1, got {self.transfer_storm_count}"
            )
        if self.transfer_storm_window <= 0:
            raise ValueError(
                f"transfer_storm_window must be > 0, got {self.transfer_storm_window}"
            )

    def health_thresholds(self):
        """The embedded :class:`~repro.observability.health.HealthThresholds`."""
        from repro.observability.health import HealthThresholds

        return HealthThresholds(
            straggler_z=self.straggler_z,
            ce_straggler_fraction=self.ce_straggler_fraction,
            blackhole_fault_rate=self.blackhole_fault_rate,
            blackhole_ttf_factor=self.blackhole_ttf_factor,
            blackhole_ttf_floor=self.blackhole_ttf_floor,
            min_samples=self.min_samples,
        )


class JsonlAlertWriter:
    """Streams alerts to disk, one JSON line each, flushed per line.

    Mirrors the (fixed) :class:`~repro.observability.bus.JsonlExporter`
    discipline: a live file a human can ``tail -f`` while the run is in
    flight, usable as a context manager.  Accepts a path (opened
    lazily, closed by :meth:`close`) or a file-like object (caller
    owns it).
    """

    def __init__(self, destination: Union[str, os.PathLike, io.TextIOBase]) -> None:
        self._path: Optional[str] = None
        self._file: Optional[Any] = None
        self._owns_file = False
        if hasattr(destination, "write"):
            self._file = destination
        else:
            self._path = os.fspath(destination)
        self.lines_written = 0

    def _handle(self):
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
            self._owns_file = True
        return self._file

    def __call__(self, alert: Alert) -> None:
        """Write one alert line (the monitor's alert-sink signature)."""
        handle = self._handle()
        handle.write(json.dumps(alert.to_dict(), sort_keys=True))
        handle.write("\n")
        handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the output (no-op for caller-owned files)."""
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlAlertWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
