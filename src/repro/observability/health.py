"""Online per-CE health scoring from rolling robust statistics.

Production-grid behaviour is erratic *while you run*: Section 5.1
models queue times as a random y-intercept/slope precisely because the
"time to access the infrastructure" varies wildly between jobs, and
the Figure 6 narrative ("D0 was submitted twice because an error
occurred") shows operators reacting to faults mid-run.  This module is
the statistical substrate of that reaction: it maintains, incrementally
as job phase spans close, per-computing-element summaries robust to the
heavy-tailed distributions the testbeds are calibrated with.

Two failure signatures matter (both inherited from EGEE operations):

**stragglers**
    jobs whose queue or run phase is abnormally long compared to the
    fleet, measured by a robust z-score — ``(x - median) / (1.4826 *
    MAD)`` — so a handful of enormous outliers cannot inflate the scale
    estimate the way they would a standard deviation.  A CE that keeps
    producing straggler jobs is itself flagged.

**blackholes**
    the classic fast-failure mode: a CE that accepts jobs and fails
    them *quickly*.  Under least-loaded ranking a blackhole is
    self-reinforcing — its queue drains instantly, so it looks idle and
    attracts ever more jobs.  Detected as a high fault rate combined
    with an abnormally *low* median time-to-failure.

Everything here is pure bookkeeping over closed span durations: feeding
the same durations in the same order always reproduces the same scores,
which is what makes the monitor's replay invariant testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "RobustStats",
    "robust_stats",
    "robust_z",
    "RollingSample",
    "HealthThresholds",
    "CEHealth",
    "FleetHealth",
]

#: consistency constant making MAD comparable to a standard deviation
#: for normal data (1 / Phi^-1(3/4))
MAD_SCALE = 1.4826

#: same idea for the mean absolute deviation (sqrt(pi/2)), the fallback
#: scale when the MAD degenerates to zero
MEAN_AD_SCALE = 1.2533


def _median(sorted_values: List[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return 0.5 * (sorted_values[mid - 1] + sorted_values[mid])


@dataclass(frozen=True)
class RobustStats:
    """Median/MAD summary of a sample, with a degeneracy-proof scale.

    ``scale`` is ``MAD_SCALE * mad`` when the MAD is positive; for
    zero-variance samples (every value identical — constant-duration
    phases on the ideal testbed do this) it falls back to the scaled
    mean absolute deviation, and to ``0.0`` when even that vanishes.
    """

    count: int
    median: float
    mad: float
    scale: float


def robust_stats(values: "List[float] | Tuple[float, ...]") -> RobustStats:
    """Median, MAD and a usable scale estimate for *values*.

    Raises :class:`ValueError` on an empty sample — callers guard with
    their own ``min_samples`` thresholds anyway.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    med = _median(ordered)
    deviations = sorted(abs(v - med) for v in ordered)
    mad = _median(deviations)
    if mad > 0.0:
        scale = MAD_SCALE * mad
    else:
        # MAD = 0 happens whenever more than half the sample sits on the
        # median (zero-variance phases, quantized durations).  Fall back
        # to the mean absolute deviation so a genuinely spread sample
        # still gets a finite scale.
        mean_ad = sum(deviations) / len(deviations)
        scale = MEAN_AD_SCALE * mean_ad
    return RobustStats(count=len(ordered), median=med, mad=mad, scale=scale)


def robust_z(value: float, stats: RobustStats) -> float:
    """Robust z-score of *value* against *stats*.

    With a degenerate scale (all reference values identical) any
    deviation is infinitely surprising: returns ``0.0`` on the median
    and ``±inf`` off it, never a division error.
    """
    centered = value - stats.median
    if stats.scale == 0.0:
        if centered == 0.0:
            return 0.0
        return float("inf") if centered > 0 else float("-inf")
    return centered / stats.scale


class RollingSample:
    """A bounded rolling window of observations with cached statistics.

    ``maxlen`` bounds memory so the monitor stays O(window) per CE no
    matter how long the run is; statistics are recomputed lazily and
    cached until the next :meth:`add`.
    """

    def __init__(self, maxlen: int = 512) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._values: Deque[float] = deque(maxlen=maxlen)
        self._cached: Optional[RobustStats] = None

    def add(self, value: float) -> None:
        """Append one observation (evicting the oldest when full)."""
        self._values.append(float(value))
        self._cached = None

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> List[float]:
        """The current window contents, oldest first."""
        return list(self._values)

    def stats(self) -> RobustStats:
        """Robust statistics over the current window (cached)."""
        if self._cached is None:
            self._cached = robust_stats(list(self._values))
        return self._cached

    def z(self, value: float) -> float:
        """Robust z of *value* against the current window."""
        return robust_z(value, self.stats())


@dataclass(frozen=True)
class HealthThresholds:
    """When does a CE statistic become a flag?

    All detections are gated on ``min_samples`` observations so a
    single unlucky job can neither brand a CE a blackhole nor a
    straggler (single-sample CEs always score healthy).
    """

    #: robust z above which one queue/run phase marks a straggler *job*
    straggler_z: float = 3.5
    #: fraction of a CE's completed jobs flagged as stragglers before
    #: the CE itself is flagged
    ce_straggler_fraction: float = 0.5
    #: attempt fault rate at or above which a CE is blackhole-suspect
    blackhole_fault_rate: float = 0.5
    #: a blackhole fails *fast*: its median time-to-failure must sit
    #: below this fraction of the fleet's median successful run phase
    blackhole_ttf_factor: float = 0.5
    #: absolute time-to-failure (seconds) below which "fast" holds even
    #: without fleet context (no successful run observed yet)
    blackhole_ttf_floor: float = 120.0
    #: observations needed before any CE-level flag can raise
    min_samples: int = 4

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if not 0.0 < self.ce_straggler_fraction <= 1.0:
            raise ValueError(
                f"ce_straggler_fraction must be in (0, 1], got {self.ce_straggler_fraction}"
            )
        if not 0.0 < self.blackhole_fault_rate <= 1.0:
            raise ValueError(
                f"blackhole_fault_rate must be in (0, 1], got {self.blackhole_fault_rate}"
            )


@dataclass
class CEHealth:
    """One computing element's rolling health summary."""

    ce: str
    #: successfully completed run phases observed
    completed: int = 0
    #: failed attempts observed (job.fault spans)
    faults: int = 0
    #: straggler-flagged jobs (distinct job ids)
    straggler_jobs: int = 0
    median_queue: float = 0.0
    median_run: float = 0.0
    #: median time from matching to failure detection (0 when faultless)
    median_ttf: float = 0.0
    is_straggler: bool = False
    is_blackhole: bool = False
    #: composite score in [0, 1]: 1.0 = healthy
    score: float = 1.0

    @property
    def attempts(self) -> int:
        """Total attempts this CE handled (completions + faults)."""
        return self.completed + self.faults

    @property
    def fault_rate(self) -> float:
        """Failed attempts over total attempts (0.0 before any attempt)."""
        total = self.attempts
        return self.faults / total if total else 0.0

    @property
    def straggler_fraction(self) -> float:
        """Straggler jobs over completed jobs (0.0 before any completion)."""
        return self.straggler_jobs / self.completed if self.completed else 0.0

    @property
    def flagged(self) -> bool:
        """True when either failure signature holds."""
        return self.is_straggler or self.is_blackhole


class FleetHealth:
    """Rolling robust statistics for every CE plus the fleet baseline.

    The fleet-wide windows (one per phase name) are the reference
    population straggler z-scores are computed against; per-CE windows
    feed the CE summaries.  All updates are driven by the monitor as
    phase spans close — this class never looks at a clock.
    """

    #: phase spans whose durations feed straggler detection
    STRAGGLER_PHASES = ("job.queue", "job.run")

    def __init__(
        self,
        thresholds: Optional[HealthThresholds] = None,
        window: int = 512,
    ) -> None:
        self.thresholds = thresholds if thresholds is not None else HealthThresholds()
        self._window = window
        #: fleet-wide duration windows, keyed by phase span name
        self._fleet: Dict[str, RollingSample] = {}
        #: fleet windows keyed by (phase, job group) — straggler z-scores
        #: compare like with like (one service's jobs against the same
        #: service fleet-wide), so heterogeneous services do not read as
        #: pathology
        self._fleet_grouped: Dict[Tuple[str, str], RollingSample] = {}
        #: per-CE duration windows, keyed by (ce, phase span name)
        self._per_ce: Dict[Tuple[str, str], RollingSample] = {}
        #: per-CE time-to-failure windows
        self._ttf: Dict[str, RollingSample] = {}
        #: ce -> set of job ids flagged as stragglers (kept as a dict
        #: for deterministic iteration; values unused)
        self._straggler_jobs: Dict[str, Dict[int, None]] = {}
        #: counters per CE, insertion order = first-seen order
        self._completed: Dict[str, int] = {}
        self._faults: Dict[str, int] = {}

    # -- updates ---------------------------------------------------------
    def _touch(self, ce: str) -> None:
        self._completed.setdefault(ce, 0)
        self._faults.setdefault(ce, 0)

    def _sample(self, table: Dict, key) -> RollingSample:
        sample = table.get(key)
        if sample is None:
            sample = table[key] = RollingSample(maxlen=self._window)
        return sample

    def observe_phase(
        self,
        ce: str,
        phase: str,
        duration: float,
        job_id: Optional[int] = None,
        group: Optional[str] = None,
    ) -> bool:
        """Record one closed phase duration; returns True for a straggler.

        *group* names the job's population (typically the submitting
        service): when given, the straggler z-score is computed against
        the fleet window of that group only, so a service with long
        jobs is not misread as straggling next to a service with short
        ones.  The z-score is computed against the window *before* the
        new value is added, so one extreme observation cannot drag the
        reference median toward itself in the very comparison that is
        supposed to catch it.
        """
        self._touch(ce)
        is_straggler = False
        if phase in self.STRAGGLER_PHASES:
            if group is not None:
                reference = self._sample(self._fleet_grouped, (phase, group))
            else:
                reference = self._sample(self._fleet, phase)
            if len(reference) >= self.thresholds.min_samples:
                if robust_z(duration, reference.stats()) > self.thresholds.straggler_z:
                    is_straggler = True
                    if job_id is not None:
                        self._straggler_jobs.setdefault(ce, {})[job_id] = None
            if group is not None:
                reference.add(duration)
                self._sample(self._fleet, phase).add(duration)
            else:
                reference.add(duration)
        self._sample(self._per_ce, (ce, phase)).add(duration)
        if phase == "job.run":
            self._completed[ce] += 1
        return is_straggler

    def observe_fault(self, ce: str, time_to_failure: float) -> None:
        """Record one failed attempt on *ce* and its detection latency."""
        self._touch(ce)
        self._faults[ce] += 1
        self._sample(self._ttf, ce).add(time_to_failure)

    # -- queries ---------------------------------------------------------
    def ces(self) -> List[str]:
        """Every CE observed so far, first-seen order."""
        return list(self._completed)

    def seen(self, ce: str) -> bool:
        """True once *ce* produced at least one observation."""
        return ce in self._completed

    def fleet_median(self, phase: str) -> Optional[float]:
        """Fleet-wide median duration of *phase*, or None before data."""
        sample = self._fleet.get(phase)
        if sample is None or len(sample) == 0:
            return None
        return sample.stats().median

    def _ce_median(self, ce: str, phase: str) -> float:
        sample = self._per_ce.get((ce, phase))
        if sample is None or len(sample) == 0:
            return 0.0
        return sample.stats().median

    def health_of(self, ce: str) -> CEHealth:
        """The current :class:`CEHealth` summary of *ce*."""
        self._touch(ce)
        thresholds = self.thresholds
        completed = self._completed[ce]
        faults = self._faults[ce]
        straggler_jobs = len(self._straggler_jobs.get(ce, {}))
        ttf_sample = self._ttf.get(ce)
        median_ttf = (
            ttf_sample.stats().median if ttf_sample is not None and len(ttf_sample) else 0.0
        )
        health = CEHealth(
            ce=ce,
            completed=completed,
            faults=faults,
            straggler_jobs=straggler_jobs,
            median_queue=self._ce_median(ce, "job.queue"),
            median_run=self._ce_median(ce, "job.run"),
            median_ttf=median_ttf,
        )

        # Straggler CE: enough completions, and a qualifying fraction of
        # them were individually flagged against the fleet.
        if (
            completed >= thresholds.min_samples
            and health.straggler_fraction >= thresholds.ce_straggler_fraction
        ):
            health.is_straggler = True

        # Blackhole CE: enough attempts, dominated by faults, and those
        # faults arrive fast — relative to the fleet's successful run
        # phase when one exists, otherwise against the absolute floor.
        if health.attempts >= thresholds.min_samples and (
            health.fault_rate >= thresholds.blackhole_fault_rate
        ):
            fleet_run = self.fleet_median("job.run")
            if fleet_run is not None and fleet_run > 0:
                fast = median_ttf <= thresholds.blackhole_ttf_factor * fleet_run
            else:
                fast = median_ttf <= thresholds.blackhole_ttf_floor
            if fast:
                health.is_blackhole = True

        # Composite score: start healthy, subtract the failure evidence.
        score = 1.0
        score -= min(1.0, health.fault_rate)
        score -= 0.5 * min(1.0, health.straggler_fraction)
        if health.is_blackhole:
            score -= 0.5
        if health.is_straggler:
            score -= 0.25
        health.score = max(0.0, min(1.0, score))
        return health

    def table(self) -> List[CEHealth]:
        """Health summaries for every observed CE, first-seen order."""
        return [self.health_of(ce) for ce in self.ces()]
