"""Data-plane observability: byte-accounted transfers and timelines.

* :mod:`~repro.observability.dataflow.collector` — the
  :class:`DataFlowCollector` bus/seam subscriber turning every network
  transfer into a fully attributed :class:`TransferRecord` plus
  per-site storage gauges;
* :mod:`~repro.observability.dataflow.dot` — the deterministic DOT
  export of the site-to-site data-flow graph and its strict parser;
* :mod:`~repro.observability.dataflow.report` — per-link bandwidth /
  activity step profiles, ASCII sparklines and the ``report-dataflow``
  tables.
"""

from __future__ import annotations

from repro.observability.dataflow.collector import (
    TRANSFER_PURPOSES,
    DataFlowCollector,
    TransferRecord,
)
from repro.observability.dataflow.dot import DotParseError, dataflow_dot, parse_dot
from repro.observability.dataflow.report import (
    bandwidth_profile,
    format_dataflow_report,
    link_activity,
    sample_profile,
    sparkline,
)

__all__ = [
    "TRANSFER_PURPOSES",
    "TransferRecord",
    "DataFlowCollector",
    "dataflow_dot",
    "parse_dot",
    "DotParseError",
    "link_activity",
    "bandwidth_profile",
    "sample_profile",
    "sparkline",
    "format_dataflow_report",
]
