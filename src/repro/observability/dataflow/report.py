"""Human-readable data-flow reporting: tables and ASCII sparklines.

Builds on the :mod:`~repro.observability.timeline` step-function idea:
:func:`link_activity` is literally the PR-3 ``step_function`` over a
link's transfer intervals (how many transfers are in flight), while
:func:`bandwidth_profile` is its byte-weighted sibling — the aggregate
bytes/second a link carries over simulated time.  The
``report-dataflow`` CLI renders the profiles as per-link sparklines
next to the top-talker tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.dataflow.collector import DataFlowCollector, TransferRecord
from repro.observability.timeline import step_function
from repro.util.units import format_size

__all__ = [
    "link_activity",
    "bandwidth_profile",
    "sample_profile",
    "sparkline",
    "format_dataflow_report",
]

#: ASCII intensity ramp for sparklines (index 0 = idle)
_RAMP = " .:-=+*#%@"


def link_activity(records: Sequence[TransferRecord]) -> List[Tuple[float, int]]:
    """Concurrent-transfer step function over one link's records."""
    return step_function([(r.time, r.time + r.seconds) for r in records])


def bandwidth_profile(records: Sequence[TransferRecord]) -> List[Tuple[float, float]]:
    """Aggregate bytes/second carried, as a ``(time, rate)`` step list.

    Each transfer contributes ``bytes / seconds`` over its interval.
    Zero-duration transfers (an instantaneous network) carry no
    sustained rate and are skipped.
    """
    deltas: Dict[float, float] = {}
    for record in records:
        if record.seconds <= 0 or record.bytes <= 0:
            continue
        rate = record.bytes / record.seconds
        deltas[record.time] = deltas.get(record.time, 0.0) + rate
        end = record.time + record.seconds
        deltas[end] = deltas.get(end, 0.0) - rate
    profile: List[Tuple[float, float]] = []
    level = 0.0
    for time in sorted(deltas):
        level += deltas[time]
        profile.append((time, max(0.0, level)))
    return profile


def sample_profile(
    profile: Sequence[Tuple[float, float]],
    start: float,
    end: float,
    buckets: int,
) -> List[float]:
    """Time-averaged value of a step *profile* over *buckets* bins."""
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    if end <= start or not profile:
        return [0.0] * buckets
    width = (end - start) / buckets
    samples = []
    for index in range(buckets):
        lo = start + index * width
        hi = lo + width
        area = 0.0
        level = 0.0
        previous = lo
        for time, value in profile:
            if time >= hi:
                break
            if time > previous:
                area += level * (min(time, hi) - max(previous, lo))
                previous = time
            level = value
        area += level * (hi - max(previous, lo))
        samples.append(area / width)
    return samples


def sparkline(values: Sequence[float], peak: Optional[float] = None) -> str:
    """Render *values* as an ASCII intensity strip (``' .:-=+*#%@'``)."""
    top = peak if peak is not None else max(values, default=0.0)
    if top <= 0:
        return " " * len(values)
    chars = []
    for value in values:
        level = min(1.0, max(0.0, value / top))
        chars.append(_RAMP[round(level * (len(_RAMP) - 1))])
    return "".join(chars)


def _share(part: float, whole: float) -> str:
    return f"{part / whole:6.1%}" if whole else "     -"


def format_dataflow_report(
    collector: DataFlowCollector,
    counters: Optional[Dict[str, float]] = None,
    top: int = 10,
    width: int = 24,
) -> str:
    """The ``report-dataflow`` text: headline bytes, tables, sparklines.

    ``counters`` takes the run's counter mapping or a ``MetricsSnapshot``
    (``result.metrics`` works directly).
    """
    if counters is not None and not hasattr(counters, "get"):
        counters = counters.counters
    lines: List[str] = []
    total = collector.total_bytes
    lines.append(
        f"data plane: {len(collector.records)} transfers, "
        f"{format_size(total)} moved"
    )
    if counters:
        enactor = counters.get("bytes.enactor_moved", 0.0)
        peer = counters.get("bytes.peer_moved", 0.0)
        saved = counters.get("bytes.intermediate_saved_by_grouping", 0.0)
        lines.append(
            f"enactor-moved {format_size(enactor)} vs "
            f"peer-moved {format_size(peer)}; grouping saved "
            f"{format_size(saved)} of intermediate transfers"
        )
    lines.append("")

    link_bytes = collector.link_bytes()
    if link_bytes:
        counts = collector.link_transfer_counts()
        start = min(r.time for r in collector.records)
        end = max(r.time + r.seconds for r in collector.records)
        ranked = sorted(link_bytes.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        src_w = max(len("SRC"), max(len(src) for (src, _), _ in ranked))
        dst_w = max(len("DST"), max(len(dst) for (_, dst), _ in ranked))
        lines.append(f"top links by bytes (of {len(link_bytes)}):")
        lines.append(
            f"  {'SRC':<{src_w}}  {'DST':<{dst_w}}  {'XFERS':>6}  "
            f"{'BYTES':>10}  {'SHARE':>6}  BANDWIDTH"
        )
        for (src, dst), amount in ranked:
            profile = bandwidth_profile(collector.link_records(src, dst))
            strip = sparkline(sample_profile(profile, start, end, width))
            lines.append(
                f"  {src:<{src_w}}  {dst:<{dst_w}}  "
                f"{counts[(src, dst)]:>6}  {format_size(amount):>10}  "
                f"{_share(amount, total)}  |{strip}|"
            )
        lines.append("")

    service_bytes = collector.service_bytes()
    if service_bytes:
        ranked_services = sorted(
            service_bytes.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
        name_w = max(len("SERVICE"), max(len(n) for n, _ in ranked_services))
        lines.append(f"top services by bytes (of {len(service_bytes)}):")
        lines.append(f"  {'SERVICE':<{name_w}}  {'BYTES':>10}  {'SHARE':>6}")
        for name, amount in ranked_services:
            lines.append(
                f"  {name:<{name_w}}  {format_size(amount):>10}  "
                f"{_share(amount, total)}"
            )
        lines.append("")

    purposes = collector.purpose_bytes()
    if purposes:
        lines.append("bytes by purpose:")
        for purpose, amount in purposes.items():
            lines.append(
                f"  {purpose:<13} {format_size(amount):>10}  {_share(amount, total)}"
            )
        lines.append("")

    if collector.site_occupancy:
        site_w = max(len("SITE"), max(len(s) for s in collector.site_occupancy))
        lines.append("storage by site:")
        lines.append(f"  {'SITE':<{site_w}}  {'REPLICAS':>8}  {'BYTES':>10}")
        for site in sorted(collector.site_occupancy):
            lines.append(
                f"  {site:<{site_w}}  {collector.site_replicas.get(site, 0):>8}  "
                f"{format_size(collector.site_occupancy[site]):>10}"
            )
    return "\n".join(lines).rstrip("\n") + "\n"
