"""Typed per-transfer accounting of the data plane.

The grid's seams — :class:`~repro.grid.transfer.NetworkModel` transfer
observers, :class:`~repro.grid.storage.ReplicaCatalog` registration
observers, and the :attr:`~repro.grid.middleware.Grid.transfer_context`
the middleware publishes while timing each stage-in/out — already see
every byte that moves.  The :class:`DataFlowCollector` turns those raw
callbacks into :class:`TransferRecord` rows (src/dst site, GFN, bytes,
seconds, purpose, owning job/service/tenant/run) plus per-site storage
gauges, the substrate the DOT export, the ``report-dataflow`` tables
and the per-link bandwidth timelines are computed from.

Byte *counters* (``bytes.total``, ``bytes.enactor_moved``,
``bytes.link.<src>.<dst>``, ...) do **not** require this collector:
the grid and enactor emit them on the instrumentation bus whenever one
is attached, so every runstore row carries them.  The collector is the
analysis layer on top — attach one when you want the per-transfer
ledger, not just the totals.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.observability.bus import Subscriber
from repro.observability.spans import Span

__all__ = ["TransferRecord", "DataFlowCollector", "TRANSFER_PURPOSES"]

#: every purpose a transfer record may carry, in display order
TRANSFER_PURPOSES = ("stage-in", "stage-out", "intermediate", "cache-refill", "repair")

#: service label for transfers observed without a publishing grid
UNATTRIBUTED = "(unattributed)"


@dataclass(frozen=True)
class TransferRecord:
    """One observed data-plane transfer, fully attributed."""

    time: float  # simulated time of the evaluation
    src: str
    dst: str
    gfn: str
    bytes: int
    seconds: float
    purpose: str = "stage-in"
    job_id: Optional[int] = None
    service: Optional[str] = None
    tenant: Optional[str] = None
    run: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-plain form (deterministic key order via dataclass order)."""
        return asdict(self)


class DataFlowCollector(Subscriber):
    """Accounts every transfer the attached grid's data plane performs.

    Usage::

        collector = DataFlowCollector().attach(grid)
        app.enact(config, instrumentation=bus)
        collector.link_bytes()      # {(src, dst): bytes}
        collector.purpose_bytes()   # {"stage-in": ..., "intermediate": ...}

    The collector is also an :class:`InstrumentationBus` subscriber:
    when the grid carries a bus, ``attach`` subscribes it so the
    ``job.stage_in`` / ``job.stage_out`` phase spans can be folded into
    an independent per-phase byte tally (:attr:`phase_bytes`) — a
    cross-check that the span stream and the transfer ledger agree.
    """

    def __init__(self) -> None:
        self.records: List[TransferRecord] = []
        #: site -> bytes resident on its storage element (gauge)
        self.site_occupancy: Dict[str, int] = {}
        #: site -> replica count on its storage element (gauge)
        self.site_replicas: Dict[str, int] = {}
        #: independent tally folded from stage-in/out *spans*
        self.phase_bytes: Dict[str, int] = {"stage_in": 0, "stage_out": 0}
        self._grid = None
        self._clock: Callable[[], float] = lambda: 0.0

    # -- wiring ------------------------------------------------------------
    def attach(self, grid) -> "DataFlowCollector":
        """Observe *grid*: network transfers, registrations, spans."""
        self._grid = grid
        self._clock = lambda: grid.engine.now
        grid.network.add_observer(self._on_network_transfer)
        grid.catalog.add_observer(self._on_register)
        if grid.instrumentation is not None:
            grid.instrumentation.subscribe(self)
        return self

    def watch_network(self, network, clock: Optional[Callable[[], float]] = None) -> "DataFlowCollector":
        """Observe a bare :class:`NetworkModel` (no grid attribution)."""
        if clock is not None:
            self._clock = clock
        network.add_observer(self._on_network_transfer)
        return self

    # -- raw observers -----------------------------------------------------
    def _on_network_transfer(
        self, src: str, dst: str, size: float, seconds: float
    ) -> None:
        context = self._grid.transfer_context if self._grid is not None else None
        if context is None:
            record = TransferRecord(
                time=self._clock(), src=src, dst=dst, gfn="",
                bytes=int(size), seconds=seconds,
            )
        else:
            record = TransferRecord(
                time=self._clock(),
                src=src,
                dst=dst,
                gfn=context.gfn,
                bytes=int(size),
                seconds=seconds,
                purpose=context.purpose,
                job_id=context.job_id,
                service=context.service,
                tenant=context.tenant,
                run=context.run,
            )
        self.records.append(record)

    def _on_register(self, file, element) -> None:
        site = element.site
        self.site_replicas[site] = self.site_replicas.get(site, 0) + 1
        self.site_occupancy[site] = self.site_occupancy.get(site, 0) + int(file.size)
        grid = self._grid
        bus = grid.instrumentation if grid is not None else None
        if bus is not None:
            bus.metrics.gauge(f"grid.storage.replicas.{site}").set(
                self.site_replicas[site]
            )
            bus.metrics.gauge(f"grid.storage.occupancy.{site}").set(
                self.site_occupancy[site]
            )

    # -- span subscriber (cross-check tally) -------------------------------
    def on_end(self, span: Span) -> None:
        if span.name == "job.stage_in":
            self.phase_bytes["stage_in"] += int(span.attributes.get("bytes", 0))
        elif span.name == "job.stage_out":
            self.phase_bytes["stage_out"] += int(span.attributes.get("bytes", 0))

    # -- aggregations ------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Every byte the data plane moved (all purposes)."""
        return sum(record.bytes for record in self.records)

    def link_bytes(self) -> Dict[Tuple[str, str], int]:
        """Bytes per directed ``(src, dst)`` site pair, sorted by pair."""
        totals: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.src, record.dst)
            totals[key] = totals.get(key, 0) + record.bytes
        return dict(sorted(totals.items()))

    def link_transfer_counts(self) -> Dict[Tuple[str, str], int]:
        """Transfer count per directed site pair, sorted by pair."""
        counts: Dict[Tuple[str, str], int] = {}
        for record in self.records:
            key = (record.src, record.dst)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def service_bytes(self) -> Dict[str, int]:
        """Bytes per owning service, sorted by name."""
        totals: Dict[str, int] = {}
        for record in self.records:
            name = record.service or UNATTRIBUTED
            totals[name] = totals.get(name, 0) + record.bytes
        return dict(sorted(totals.items()))

    def purpose_bytes(self) -> Dict[str, int]:
        """Bytes per transfer purpose, in :data:`TRANSFER_PURPOSES` order."""
        totals = {purpose: 0 for purpose in TRANSFER_PURPOSES}
        for record in self.records:
            totals[record.purpose] = totals.get(record.purpose, 0) + record.bytes
        return {purpose: total for purpose, total in totals.items() if total}

    def link_service_bytes(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-link byte totals broken down by owning service."""
        result: Dict[Tuple[str, str], Dict[str, int]] = {}
        for record in self.records:
            services = result.setdefault((record.src, record.dst), {})
            name = record.service or UNATTRIBUTED
            services[name] = services.get(name, 0) + record.bytes
        return {
            link: dict(sorted(services.items()))
            for link, services in sorted(result.items())
        }

    def link_records(self, src: str, dst: str) -> List[TransferRecord]:
        """All records over one directed link, observation order."""
        return [r for r in self.records if r.src == src and r.dst == dst]
