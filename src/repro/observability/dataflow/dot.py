"""The data-flow graph as Graphviz DOT, plus a strict parser.

One node per site, one edge per directed link that carried bytes.  Edge
attributes carry the exact integer byte count (``bytes``), the number
of transfers (``transfers``) and the per-service breakdown
(``services="crestLines=123,..."``), so the graph is lossless with
respect to the per-link aggregation — the paired :func:`parse_dot`
round-trips it, and CI uses the parser to reject malformed exports.

Output is deterministic: sites and edges are emitted sorted, byte
counts are integers, and no wall-clock data is embedded — same-seed
runs produce byte-identical files.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.observability.dataflow.collector import DataFlowCollector
from repro.util.units import format_size

__all__ = ["dataflow_dot", "parse_dot", "DotParseError"]


class DotParseError(ValueError):
    """A DOT document that does not match the exporter's grammar."""


def _quote(name: str) -> str:
    if '"' in name or "\\" in name:
        raise ValueError(f"site name {name!r} cannot be DOT-quoted")
    return f'"{name}"'


def dataflow_dot(collector: DataFlowCollector, name: str = "dataflow") -> str:
    """Render the collector's per-link aggregation as a DOT digraph."""
    link_bytes = collector.link_bytes()
    counts = collector.link_transfer_counts()
    services = collector.link_service_bytes()
    sites = sorted({site for link in link_bytes for site in link})
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for site in sites:
        lines.append(f"  {_quote(site)} [shape=box];")
    for (src, dst), total in link_bytes.items():
        breakdown = ",".join(
            f"{service}={amount}"
            for service, amount in services.get((src, dst), {}).items()
        )
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} ["
            f'label="{format_size(total)}", '
            f'bytes="{total}", '
            f'transfers="{counts.get((src, dst), 0)}", '
            f'services="{breakdown}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


_HEADER = re.compile(r"^digraph ([A-Za-z_][A-Za-z0-9_]*) \{$")
_NODE = re.compile(r'^  "([^"\\]+)" \[shape=box\];$')
_EDGE = re.compile(r'^  "([^"\\]+)" -> "([^"\\]+)" \[(.*)\];$')
_ATTR = re.compile(r'([a-z]+)="([^"]*)"')


def parse_dot(text: str) -> Dict[str, object]:
    """Strictly parse a :func:`dataflow_dot` document.

    Returns ``{"name", "nodes", "edges"}`` where each edge is
    ``(src, dst, attrs)`` with ``bytes``/``transfers`` as ints and
    ``services`` as a ``{service: bytes}`` dict.  Raises
    :class:`DotParseError` on any deviation from the exporter's
    grammar — unknown lines, duplicate nodes/edges, edges referencing
    undeclared sites, non-integer byte counts, or a missing trailing
    newline.
    """
    if not text.endswith("\n"):
        raise DotParseError("document must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines:
        raise DotParseError("empty document")
    header = _HEADER.match(lines[0])
    if header is None:
        raise DotParseError(f"bad header: {lines[0]!r}")
    if lines[-1] != "}":
        raise DotParseError(f"bad footer: {lines[-1]!r}")
    body = lines[1:-1]
    if not body or body[0] != "  rankdir=LR;":
        raise DotParseError("missing rankdir line")
    nodes: List[str] = []
    edges: List[Tuple[str, str, Dict[str, object]]] = []
    seen_edges = set()
    for line in body[1:]:
        node = _NODE.match(line)
        if node is not None:
            if edges:
                raise DotParseError("node declared after an edge")
            if node.group(1) in nodes:
                raise DotParseError(f"duplicate node {node.group(1)!r}")
            nodes.append(node.group(1))
            continue
        edge = _EDGE.match(line)
        if edge is None:
            raise DotParseError(f"unparseable line: {line!r}")
        src, dst, raw_attrs = edge.groups()
        for site in (src, dst):
            if site not in nodes:
                raise DotParseError(f"edge references undeclared site {site!r}")
        if (src, dst) in seen_edges:
            raise DotParseError(f"duplicate edge {src!r} -> {dst!r}")
        seen_edges.add((src, dst))
        attrs: Dict[str, object] = dict(_ATTR.findall(raw_attrs))
        for key in ("label", "bytes", "transfers", "services"):
            if key not in attrs:
                raise DotParseError(f"edge {src!r} -> {dst!r} missing {key!r}")
        try:
            attrs["bytes"] = int(attrs["bytes"])  # type: ignore[arg-type]
            attrs["transfers"] = int(attrs["transfers"])  # type: ignore[arg-type]
        except ValueError:
            raise DotParseError(
                f"edge {src!r} -> {dst!r} has non-integer counts"
            ) from None
        services: Dict[str, int] = {}
        raw_services = str(attrs["services"])
        if raw_services:
            for part in raw_services.split(","):
                service, _, amount = part.rpartition("=")
                if not service or not amount.isdigit():
                    raise DotParseError(f"bad service breakdown entry {part!r}")
                if service in services:
                    raise DotParseError(f"duplicate service {service!r} on an edge")
                services[service] = int(amount)
        if services and sum(services.values()) != attrs["bytes"]:
            raise DotParseError(
                f"edge {src!r} -> {dst!r}: service breakdown does not sum "
                f"to the edge total"
            )
        attrs["services"] = services
        edges.append((src, dst, attrs))
    return {"name": header.group(1), "nodes": nodes, "edges": edges}
