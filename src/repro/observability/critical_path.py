"""Observed critical-path analytics: which chain actually gated the makespan.

:mod:`repro.workflow.analysis` predicts a critical path *statically* —
the longest source-to-sink chain of the workflow graph under the
constant-time hypothesis of Section 3.5.  This module reconstructs the
critical path a run *actually* exhibited, from its span stream:

1. start at the instant the ``run`` span closed,
2. repeatedly step to the invocation span that ends exactly there (in a
   discrete-event simulation the invocation that unblocked the next one
   ends at the very instant its successor starts — gate hand-offs,
   stage barriers and token deliveries are all instantaneous), and
3. stop at the instant the run span opened.

The resulting chain *tiles* the run interval: step durations sum to the
run span's makespan (a ``wait`` pseudo-step fills any interval where no
invocation gated progress, so the identity holds even for instrumented
regions the enactor does not cover).  Each step is then attributed to
the paper's phases by joining the invocation's grid jobs with their
phase spans — submission / scheduling / queuing / fault time (the
Section 5.1 H-overhead), stage-in / stage-out (data transfers) and
execution — which turns "the run took 4100 s" into "the gating chain
spent 2800 s queuing and 900 s executing".

Finally, :func:`diff_against_static` compares the services observed on
the gating chain with the static prediction, making DP/SP/JG policy
effects visible per run: under DP the same service appears once per
gating data set, under job grouping fused services show up under their
``a+b`` group name, and a mis-scheduled branch appears as an
*unexpected* service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.observability.spans import Span

__all__ = [
    "CriticalPathError",
    "CriticalPathStep",
    "ObservedCriticalPath",
    "CriticalPathDiff",
    "observed_critical_path",
    "diff_against_static",
    "PHASE_KEYS",
]

#: attribution buckets, in display order: grid overhead phases first
#: (the Section 5.1 y-intercept material), then data transfers, then
#: useful execution, then enactor residue and idle gaps.
PHASE_KEYS = (
    "submit",
    "schedule",
    "queue",
    "fault",
    "stage_in",
    "stage_out",
    "execute",
    "enactor",
    "wait",
)

#: span name -> overhead bucket (job.run is split against staging below)
_OVERHEAD_SPANS = {
    "job.submit": "submit",
    "job.schedule": "schedule",
    "job.queue": "queue",
    "job.fault": "fault",
}

#: buckets counted as grid overhead (the H of Section 5.1)
OVERHEAD_KEYS = ("submit", "schedule", "queue", "fault")

_EPS = 1e-9


class CriticalPathError(ValueError):
    """The span stream cannot be resolved into an observed critical path."""


@dataclass(frozen=True)
class CriticalPathStep:
    """One link of the observed gating chain.

    ``kind`` is the invocation's trace kind (``invocation`` /
    ``grouped`` / ``synchronization`` / ``cached``) or ``wait`` for a
    gap pseudo-step.  ``phases`` maps :data:`PHASE_KEYS` buckets to
    seconds; the buckets sum to :attr:`duration` (within float
    tolerance).
    """

    processor: str
    label: str
    kind: str
    start: float
    end: float
    phases: Mapping[str, float] = field(default_factory=dict)
    job_ids: Tuple[int, ...] = ()
    span_id: str = ""

    @property
    def duration(self) -> float:
        """Simulated seconds this step kept the run on the critical path."""
        return self.end - self.start

    def dominant_phase(self) -> str:
        """The bucket holding most of this step's time (``-`` when idle)."""
        if not self.phases:
            return "-"
        return max(self.phases, key=lambda key: (self.phases[key], key))


@dataclass(frozen=True)
class ObservedCriticalPath:
    """The reconstructed gating chain of one enactment."""

    trace_id: str
    workflow: str
    policy: str
    run_start: float
    run_end: float
    steps: Tuple[CriticalPathStep, ...] = ()

    @property
    def makespan(self) -> float:
        """The run span's duration — what the chain must account for."""
        return self.run_end - self.run_start

    @property
    def total(self) -> float:
        """Sum of step durations; equals :attr:`makespan` by construction."""
        return sum(step.duration for step in self.steps)

    def phase_totals(self) -> Dict[str, float]:
        """Seconds per attribution bucket over the whole chain."""
        totals: Dict[str, float] = {}
        for step in self.steps:
            for key, seconds in step.phases.items():
                totals[key] = totals.get(key, 0.0) + seconds
        return totals

    def overhead_total(self) -> float:
        """Grid-overhead seconds on the chain (Section 5.1's H share)."""
        totals = self.phase_totals()
        return sum(totals.get(key, 0.0) for key in OVERHEAD_KEYS)

    def processors(self) -> List[str]:
        """Gating processors, chain order, consecutive duplicates folded."""
        out: List[str] = []
        for step in self.steps:
            if step.kind == "wait":
                continue
            if not out or out[-1] != step.processor:
                out.append(step.processor)
        return out

    def services(self) -> List[str]:
        """Distinct gating processors in order of first appearance."""
        seen: Dict[str, None] = {}
        for step in self.steps:
            if step.kind != "wait":
                seen.setdefault(step.processor, None)
        return list(seen)


def _policy_of(run: Span) -> str:
    dp = bool(run.attributes.get("data_parallelism"))
    sp = bool(run.attributes.get("service_parallelism"))
    if dp and sp:
        return "SP+DP"
    if dp:
        return "DP"
    if sp:
        return "SP"
    return "NOP"


def _select_run(spans: Sequence[Span], trace_id: Optional[str]) -> Span:
    runs = [s for s in spans if s.name == "run" and s.end is not None]
    if trace_id is not None:
        runs = [s for s in runs if s.trace_id == trace_id]
    if not runs:
        raise CriticalPathError(
            "no finished run span"
            + (f" with trace id {trace_id!r}" if trace_id else "")
            + " in the stream (enact with an InstrumentationBus attached)"
        )
    # several runs share one bus in warm-re-execution studies: default
    # to the most recent enactment.
    return max(runs, key=lambda s: (s.start, s.trace_id))


def _phase_index(spans: Iterable[Span], trace_id: str) -> Dict[int, List[Span]]:
    """job_id -> phase spans of that job, within one trace."""
    index: Dict[int, List[Span]] = {}
    for span in spans:
        if span.trace_id != trace_id or span.end is None:
            continue
        if span.name in _OVERHEAD_SPANS or span.name in (
            "job.run",
            "job.stage_in",
            "job.stage_out",
        ):
            job_id = span.attributes.get("job_id")
            if job_id is not None:
                index.setdefault(int(job_id), []).append(span)
    return index


def _attribute(span: Span, phase_index: Mapping[int, List[Span]]) -> Dict[str, float]:
    """Split one invocation span's duration over the phase buckets.

    Grid phases tile each job's SUBMITTED -> DONE interval (see
    ``Grid._record_success``); stage-in/out are sub-intervals of
    ``job.run``, so execution is the run phase minus staging.  Whatever
    the job phases do not cover — gate-free service-layer latency, the
    whole duration of a local service — lands in ``execute`` when the
    invocation ran work and ``enactor`` when it merely coordinated.
    """
    duration = span.duration
    buckets = {key: 0.0 for key in PHASE_KEYS}
    covered = 0.0
    saw_jobs = False
    for job_id in span.attributes.get("job_ids") or ():
        for phase in phase_index.get(int(job_id), ()):
            saw_jobs = True
            if phase.name in _OVERHEAD_SPANS:
                buckets[_OVERHEAD_SPANS[phase.name]] += phase.duration
                covered += phase.duration
            elif phase.name == "job.run":
                buckets["execute"] += phase.duration
                covered += phase.duration
            elif phase.name == "job.stage_in":
                buckets["stage_in"] += phase.duration
                buckets["execute"] -= phase.duration
            elif phase.name == "job.stage_out":
                buckets["stage_out"] += phase.duration
                buckets["execute"] -= phase.duration
    if buckets["execute"] < 0.0:  # float residue of the staging split
        buckets["execute"] = 0.0
    residual = duration - covered
    if residual > (_EPS if saw_jobs else 0.0):
        # no grid jobs: the whole invocation is compute (local services,
        # synchronization statistics steps), however short — only job
        # steps carry float residue worth filtering.  With jobs, the
        # remainder is enactor/service-layer coordination around the
        # submissions.
        buckets["execute" if not saw_jobs else "enactor"] += residual
    return {key: seconds for key, seconds in buckets.items() if seconds > 0.0}


def _walk(run: Span, invocations: Sequence[Span]) -> List[Span]:
    """Backward greedy walk from run end to run start.

    Returns gating invocation spans in reverse chronological order;
    ``None`` gaps are handled by the caller.  At every cursor position
    the span that ends there with the *earliest start* is preferred —
    the longest step back, which also prefers real work over
    zero-duration cache hits that merely coincide.
    """
    candidates = [
        s
        for s in invocations
        if s.end is not None and s.end <= run.end + _EPS and s.start >= run.start - _EPS
    ]
    chain: List[Span] = []
    used: set = set()
    cursor = run.end
    while cursor > run.start + _EPS:
        ending = [
            s
            for s in candidates
            if id(s) not in used and abs((s.end or 0.0) - cursor) <= _EPS
        ]
        if ending:
            step = min(ending, key=lambda s: (s.start, s.span_id))
            used.add(id(step))
            chain.append(step)
            cursor = max(min(cursor, step.start), run.start)
        else:
            # No invocation ends here: an uninstrumented interval (the
            # enactor always closes one at hand-off points, but foreign
            # span streams may not).  Fall back to the latest earlier
            # end and leave a gap for the caller to fill.
            earlier = [
                s
                for s in candidates
                if id(s) not in used and (s.end or 0.0) < cursor - _EPS
            ]
            previous = max((s.end or 0.0 for s in earlier), default=run.start)
            chain.append(
                Span(
                    name="wait",
                    category="analysis",
                    span_id=f"gap@{previous:.6f}",
                    trace_id=run.trace_id,
                    start=max(previous, run.start),
                    end=cursor,
                    status="idle",
                )
            )
            cursor = max(previous, run.start)
    return chain


def observed_critical_path(
    spans: Sequence[Span], trace_id: Optional[str] = None
) -> ObservedCriticalPath:
    """Reconstruct the gating chain of one run from its span stream.

    *spans* is any collection containing the run's spans (an
    :class:`~repro.observability.bus.InMemoryCollector`'s ``spans`` or
    a parsed JSONL export).  With several runs in the stream the most
    recent is analyzed unless *trace_id* selects one.  The returned
    chain tiles ``[run.start, run.end]``: step durations sum to the run
    makespan within float tolerance.
    """
    run = _select_run(spans, trace_id)
    invocations = [
        s for s in spans if s.name == "invocation" and s.trace_id == run.trace_id
    ]
    phase_index = _phase_index(spans, run.trace_id)
    steps: List[CriticalPathStep] = []
    for span in reversed(_walk(run, invocations)):
        if span.name == "wait":
            steps.append(
                CriticalPathStep(
                    processor="(idle)",
                    label="-",
                    kind="wait",
                    start=span.start,
                    end=span.end or span.start,
                    phases={"wait": (span.end or span.start) - span.start},
                    span_id=span.span_id,
                )
            )
            continue
        attrs = span.attributes
        steps.append(
            CriticalPathStep(
                processor=str(attrs.get("processor", "?")),
                label=str(attrs.get("label", "?")),
                kind=str(attrs.get("kind", "invocation")),
                start=span.start,
                end=span.end if span.end is not None else span.start,
                phases=_attribute(span, phase_index),
                job_ids=tuple(int(j) for j in attrs.get("job_ids") or ()),
                span_id=span.span_id,
            )
        )
    return ObservedCriticalPath(
        trace_id=run.trace_id,
        workflow=str(run.attributes.get("workflow", "?")),
        policy=_policy_of(run),
        run_start=run.start,
        run_end=run.end if run.end is not None else run.start,
        steps=tuple(steps),
    )


@dataclass(frozen=True)
class CriticalPathDiff:
    """Static prediction vs observed gating chain, service by service."""

    #: service processors on the statically predicted critical path
    static: Tuple[str, ...]
    #: distinct gating services observed, first-appearance order
    observed: Tuple[str, ...]
    #: predicted to gate but never did (a policy hid them — or a bug)
    missing: Tuple[str, ...]
    #: gated the run without being predicted (parallel branch dominated)
    unexpected: Tuple[str, ...]

    @property
    def matches(self) -> bool:
        """True when observation and prediction name the same services."""
        return not self.missing and not self.unexpected


def _expand(name: str) -> List[str]:
    """A grouped virtual service gates for each of its members."""
    return name.split("+")


def diff_against_static(
    observed: ObservedCriticalPath,
    workflow,
    durations: Optional[Mapping[str, float]] = None,
) -> CriticalPathDiff:
    """Compare the observed chain with ``workflow.analysis.critical_path``.

    *workflow* is the (ungrouped) :class:`~repro.workflow.graph.Workflow`;
    grouped invocation names (``crestLines+crestMatch``) are expanded to
    their members before comparing, so a JG run diffs cleanly against
    the original graph.  *durations* forwards to the static predictor.
    """
    from repro.workflow.analysis import critical_path as static_critical_path
    from repro.workflow.graph import ProcessorKind

    static_services = tuple(
        name
        for name in static_critical_path(workflow, durations)
        if workflow.processor(name).kind is ProcessorKind.SERVICE
    )
    observed_services: List[str] = []
    for name in observed.services():
        for member in _expand(name):
            if member not in observed_services:
                observed_services.append(member)
    static_set = set(static_services)
    observed_set = set(observed_services)
    return CriticalPathDiff(
        static=static_services,
        observed=tuple(observed_services),
        missing=tuple(n for n in static_services if n not in observed_set),
        unexpected=tuple(n for n in observed_services if n not in static_set),
    )
