"""Resource timelines: utilization and queue-depth curves from spans.

The paper's execution diagrams (Figures 4-6) show *what ran when*; this
module derives the infrastructure view from the same span stream —
per computing element, how many jobs were running and how many sat in
the batch queue at every instant — plus a dependency-free ASCII Gantt
renderer so the terminal can show both layers at once:

* the **enactor lanes** (one per processor) reproduce the paper's
  diagrams on real simulated time,
* the **grid lanes** (one per CE) show where the broker put the load
  and where the queues backed up — the per-resource story behind a
  DP burst or an SP pipeline.

Step functions use the same sweep as
:meth:`repro.core.trace.ExecutionTrace.concurrency_profile`, including
its zero-duration burst handling: a cache hit (an instantaneous span)
still produces a visible ``(t, n+1)`` blip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observability.spans import Span

__all__ = [
    "step_function",
    "peak",
    "time_average",
    "busy_seconds",
    "ce_utilization",
    "ce_queue_depth",
    "utilization_table",
    "render_gantt",
]

Profile = List[Tuple[float, int]]


def step_function(intervals: Iterable[Tuple[float, float]]) -> Profile:
    """``(time, active_count)`` breakpoints for a set of intervals.

    Mirrors ``ExecutionTrace.concurrency_profile``: zero-length
    intervals contribute a momentary ``(t, active + burst)`` breakpoint
    immediately followed by ``(t, active)``, so peaks see them while
    the profile still settles at the correct steady level.
    """
    starts: Dict[float, int] = {}
    ends: Dict[float, int] = {}
    instants: Dict[float, int] = {}
    for begin, finish in intervals:
        if begin == finish:
            instants[begin] = instants.get(begin, 0) + 1
        else:
            starts[begin] = starts.get(begin, 0) + 1
            ends[finish] = ends.get(finish, 0) + 1
    profile: Profile = []
    active = 0
    for time in sorted({*starts, *ends, *instants}):
        active += starts.get(time, 0) - ends.get(time, 0)
        burst = instants.get(time, 0)
        if burst:
            profile.append((time, active + burst))
        profile.append((time, active))
    return profile


def peak(profile: Profile) -> int:
    """Highest level the step function reaches (0 when empty)."""
    return max((count for _, count in profile), default=0)


def time_average(profile: Profile, start: float, end: float) -> float:
    """Time-weighted mean level of *profile* over ``[start, end]``."""
    if end <= start:
        return 0.0
    total = 0.0
    level = 0
    cursor = start
    for time, count in profile:
        if time > cursor:
            total += level * (min(time, end) - cursor)
            cursor = min(time, end)
        if time >= end:
            break
        level = count
    if cursor < end:
        total += level * (end - cursor)
    return total / (end - start)


def busy_seconds(intervals: Sequence[Tuple[float, float]]) -> float:
    """Union-of-intervals coverage (overlaps not double-counted)."""
    busy = 0.0
    current_start: Optional[float] = None
    current_end = float("-inf")
    for begin, finish in sorted(intervals):
        if current_start is None or begin > current_end:
            if current_start is not None:
                busy += current_end - current_start
            current_start, current_end = begin, finish
        else:
            current_end = max(current_end, finish)
    if current_start is not None:
        busy += current_end - current_start
    return busy


def _intervals_by_ce(
    spans: Iterable[Span], name: str
) -> Dict[str, List[Tuple[float, float]]]:
    out: Dict[str, List[Tuple[float, float]]] = {}
    for span in spans:
        if span.name != name or span.end is None:
            continue
        ce = span.attributes.get("ce")
        if ce is None:
            continue
        out.setdefault(str(ce), []).append((span.start, span.end))
    return out


def ce_utilization(spans: Iterable[Span]) -> Dict[str, Profile]:
    """Per-CE running-job step functions (from ``job.run`` phase spans)."""
    return {
        ce: step_function(intervals)
        for ce, intervals in sorted(_intervals_by_ce(spans, "job.run").items())
    }


def ce_queue_depth(spans: Iterable[Span]) -> Dict[str, Profile]:
    """Per-CE batch-queue depth step functions (from ``job.queue`` spans)."""
    return {
        ce: step_function(intervals)
        for ce, intervals in sorted(_intervals_by_ce(spans, "job.queue").items())
    }


def utilization_table(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """One summary row per CE: jobs, peaks, busy fraction.

    Rows are plain dicts (``ce``, ``jobs``, ``peak_running``,
    ``peak_queued``, ``busy_fraction``, ``mean_running``) so reporting
    can format them without importing this module's internals.
    """
    running = _intervals_by_ce(spans, "job.run")
    queued = _intervals_by_ce(spans, "job.queue")
    window = _window(spans)
    rows: List[Dict[str, object]] = []
    for ce in sorted(set(running) | set(queued)):
        intervals = running.get(ce, [])
        profile = step_function(intervals)
        span_of_run = 0.0
        mean = 0.0
        if window is not None:
            span_of_run = window[1] - window[0]
            mean = time_average(profile, *window)
        rows.append(
            {
                "ce": ce,
                "jobs": len(intervals),
                "peak_running": peak(profile),
                "peak_queued": peak(step_function(queued.get(ce, []))),
                "busy_fraction": (
                    busy_seconds(intervals) / span_of_run if span_of_run > 0 else 0.0
                ),
                "mean_running": mean,
            }
        )
    return rows


# -- ASCII Gantt ---------------------------------------------------------


def _window(spans: Sequence[Span]) -> Optional[Tuple[float, float]]:
    """The run span's bounds, or the stream's envelope as a fallback."""
    runs = [s for s in spans if s.name == "run" and s.end is not None]
    if runs:
        return min(s.start for s in runs), max(s.end for s in runs)  # type: ignore[type-var]
    finished = [s for s in spans if s.end is not None]
    if not finished:
        return None
    return min(s.start for s in finished), max(s.end for s in finished)  # type: ignore[type-var]


def _level_char(count: int) -> str:
    if count <= 0:
        return "."
    if count == 1:
        return "#"
    if count <= 9:
        return str(count)
    return "+"


def _lane_row(
    intervals: Sequence[Tuple[float, float]], t0: float, dt: float, width: int
) -> str:
    counts = [0] * width
    for begin, finish in intervals:
        if dt <= 0:
            first, last = 0, width - 1
        else:
            first = int((begin - t0) / dt)
            # a zero-length interval still owns the cell containing it
            last = int(max(finish - t0, begin - t0) / dt)
            if finish > begin and (finish - t0) / dt == float(last) and last > first:
                last -= 1  # half-open: an interval ending on a boundary stays left
        for column in range(max(0, first), min(width - 1, last) + 1):
            counts[column] += 1
    return "".join(_level_char(c) for c in counts)


def render_gantt(
    spans: Sequence[Span],
    width: int = 72,
    include_queue: bool = True,
) -> str:
    """Terminal Gantt chart of one span stream, no dependencies.

    Three lane groups: invocations per processor (the enactor's view),
    running jobs per CE, and — when *include_queue* — queue depth per
    CE.  Cells show concurrency: ``.`` idle, ``#`` one, digits for 2-9,
    ``+`` beyond.  Lane labels are left-padded; every CE that ran or
    queued a job gets a row even if the window squeezes its activity
    into a single column.
    """
    window = _window(spans)
    if window is None:
        return "(no finished spans to render)"
    t0, t1 = window
    horizon = max(t1 - t0, 0.0)
    dt = horizon / width if width > 0 else 0.0

    lanes: List[Tuple[str, str, Sequence[Tuple[float, float]]]] = []
    by_processor: Dict[str, List[Tuple[float, float]]] = {}
    for span in spans:
        if span.name == "invocation" and span.end is not None:
            processor = str(span.attributes.get("processor", "?"))
            by_processor.setdefault(processor, []).append((span.start, span.end))
    for processor, intervals in by_processor.items():
        lanes.append(("invocations", processor, intervals))
    running = _intervals_by_ce(spans, "job.run")
    for ce in sorted(running):
        lanes.append(("running", ce, running[ce]))
    if include_queue:
        queued = _intervals_by_ce(spans, "job.queue")
        for ce in sorted(queued):
            lanes.append(("queued", ce, queued[ce]))

    if not lanes:
        return "(no invocation or job spans to render)"

    label_width = max(len(label) for _, label, _ in lanes)
    lines: List[str] = [
        f"window: {t0:.1f}s .. {t1:.1f}s "
        f"({horizon:.1f}s, {dt:.1f}s/column; . idle, # one, 2-9/+ overlap)"
    ]
    group_titles = {
        "invocations": "enactor: invocations per processor",
        "running": "grid: running jobs per CE",
        "queued": "grid: queued jobs per CE",
    }
    current_group: Optional[str] = None
    for group, label, intervals in lanes:
        if group != current_group:
            lines.append(f"-- {group_titles[group]} --")
            current_group = group
        row = _lane_row(intervals, t0, dt, width)
        profile = step_function(intervals)
        lines.append(
            f"{label.rjust(label_width)} |{row}| n={len(intervals)} peak={peak(profile)}"
        )
    return "\n".join(lines)
