"""The run-history store: one JSON summary per run, compared across runs.

A workflow *platform* (as opposed to a mere enactor) remembers what it
did: every enactment leaves a :class:`RunSummary` — policy, makespan,
critical-path phase totals, drift, cache and job counters — in an
append-only :class:`RunStore` (one JSON file per run, monotonically
numbered).  :func:`compare` then answers the question the ROADMAP's
"as fast as the hardware allows" goal is unfalsifiable without: *did
this change make the system slower?*  Budgeted comparisons return
structured :class:`Regression` records, and the CLI's ``compare-runs``
exits non-zero when any budget is blown — a regression gate CI can run
on every push.

Summaries are deliberately small and schema-stable (plain dicts of
floats): a baseline committed to the repository keeps comparing cleanly
against candidates produced months later.
"""

from __future__ import annotations

import datetime
import json
import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

try:  # POSIX advisory file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback path
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "RunStoreError",
    "RunSummary",
    "RunStore",
    "Budgets",
    "Regression",
    "RunComparison",
    "summarize_run",
    "compare",
]


class RunStoreError(ValueError):
    """Malformed summaries, unknown run references, invalid comparisons."""


@dataclass
class RunSummary:
    """Everything worth remembering about one enactment.

    All fields are JSON-plain.  ``created_at`` is wall-clock provenance
    only — comparisons never read it, so determinism is untouched.
    """

    workflow: str
    policy: str
    makespan: float
    run_id: str = ""
    n_items: int = 0
    seed: Optional[int] = None
    #: critical-path phase buckets -> seconds (see critical_path.PHASE_KEYS)
    phase_totals: Dict[str, float] = field(default_factory=dict)
    #: distinct gating services, first-appearance order
    critical_path: Tuple[str, ...] = ()
    #: drift-report excerpt: relative_error, predicted, y_intercept, slope
    drift: Dict[str, float] = field(default_factory=dict)
    #: cache excerpt: hits, misses, coalesced, hit_rate
    cache: Dict[str, float] = field(default_factory=dict)
    #: metrics counters (jobs submitted/completed/retries, bytes...)
    counters: Dict[str, float] = field(default_factory=dict)
    note: str = ""
    created_at: str = ""

    def to_dict(self) -> Dict[str, object]:
        """The JSON document this summary is stored as."""
        return {
            "run_id": self.run_id,
            "workflow": self.workflow,
            "policy": self.policy,
            "makespan": self.makespan,
            "n_items": self.n_items,
            "seed": self.seed,
            "phase_totals": dict(self.phase_totals),
            "critical_path": list(self.critical_path),
            "drift": dict(self.drift),
            "cache": dict(self.cache),
            "counters": dict(self.counters),
            "note": self.note,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunSummary":
        """Rebuild a summary from its :meth:`to_dict` form."""
        try:
            return cls(
                workflow=str(payload["workflow"]),
                policy=str(payload["policy"]),
                makespan=float(payload["makespan"]),  # type: ignore[arg-type]
                run_id=str(payload.get("run_id", "")),
                n_items=int(payload.get("n_items", 0)),  # type: ignore[arg-type]
                seed=(None if payload.get("seed") is None else int(payload["seed"])),  # type: ignore[arg-type]
                phase_totals={
                    str(k): float(v)
                    for k, v in (payload.get("phase_totals") or {}).items()  # type: ignore[union-attr]
                },
                critical_path=tuple(
                    str(p) for p in (payload.get("critical_path") or ())
                ),
                drift={
                    str(k): float(v)
                    for k, v in (payload.get("drift") or {}).items()  # type: ignore[union-attr]
                },
                cache={
                    str(k): float(v)
                    for k, v in (payload.get("cache") or {}).items()  # type: ignore[union-attr]
                },
                counters={
                    str(k): float(v)
                    for k, v in (payload.get("counters") or {}).items()  # type: ignore[union-attr]
                },
                note=str(payload.get("note", "")),
                created_at=str(payload.get("created_at", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(f"malformed run summary: {exc}") from None

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "RunSummary":
        """Load a summary from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise RunStoreError(f"cannot read run summary {os.fspath(path)!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"{os.fspath(path)!r} is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise RunStoreError(f"{os.fspath(path)!r} is not a run-summary document")
        return cls.from_dict(payload)


def summarize_run(
    result,
    spans: Sequence = (),
    records: Optional[Sequence] = None,
    processors: Optional[Sequence[str]] = None,
    n_items: int = 0,
    seed: Optional[int] = None,
    note: str = "",
) -> RunSummary:
    """Distill one :class:`~repro.core.enactor.EnactmentResult`.

    *spans* (the run's stream) feeds the critical-path phase totals;
    *records* (``grid.completed_records()``) and *processors* feed the
    drift excerpt.  Every part degrades gracefully: without spans the
    phase totals stay empty, without an applicable model the drift
    excerpt does — the makespan and counters always land.
    """
    from repro.observability.critical_path import (
        CriticalPathError,
        observed_critical_path,
    )
    from repro.observability.drift import DriftError, drift_report

    phase_totals: Dict[str, float] = {}
    critical: Tuple[str, ...] = ()
    if spans:
        try:
            observed = observed_critical_path(spans)
            phase_totals = {
                k: round(v, 6) for k, v in observed.phase_totals().items()
            }
            critical = tuple(observed.services())
        except CriticalPathError:
            pass
    drift: Dict[str, float] = {}
    try:
        report = drift_report(result, records=records, processors=processors)
        drift = {
            "relative_error": report.relative_error,
            "predicted": report.predicted_makespan,
            "y_intercept": report.y_intercept_estimate,
            "slope": report.slope_estimate,
        }
    except DriftError:
        pass
    cache: Dict[str, float] = {}
    if result.cache_stats is not None:
        total = result.cache_stats.total
        cache = {
            "hits": float(total.hits),
            "misses": float(total.misses),
            "coalesced": float(total.coalesced),
            "hit_rate": float(total.hit_rate),
        }
    counters: Dict[str, float] = {}
    if result.metrics is not None:
        counters = {k: float(v) for k, v in sorted(result.metrics.counters.items())}
    # The data-plane ledger is part of the row schema: zero-fill it so
    # every summary carries the enactor-bytes-moved yardstick even when
    # a run moved nothing (or ran without instrumentation).
    for bytes_key in (
        "bytes.total",
        "bytes.peer_moved",
        "bytes.enactor_moved",
        "bytes.intermediate_saved_by_grouping",
        # chaos/durability ledger: always present so pre-chaos baselines
        # and chaotic rows stay schema-comparable (a healthy run simply
        # reports zeros)
        "bytes.repair",
        "grid.transfer.failures",
        "grid.transfer.retries",
        "grid.transfer.outage_waits",
        "grid.repair.transfers",
        "grid.replicas.lost",
        "grid.replicas.quarantined",
        "grid.se.outage_windows",
        "monitor.alerts.se-outage",
        "monitor.alerts.replica-corruption",
        "monitor.alerts.transfer-storm",
    ):
        counters.setdefault(bytes_key, 0.0)
    return RunSummary(
        workflow=result.workflow_name,
        policy=result.config.label,
        makespan=float(result.makespan),
        n_items=n_items,
        seed=seed,
        phase_totals=phase_totals,
        critical_path=critical,
        drift=drift,
        cache=cache,
        counters=counters,
        note=note,
        created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    )


_RUN_FILE = re.compile(r"^run-(\d{4,})\.json$")


class RunStore:
    """Append-only directory of run summaries (``run-0001.json``, ...).

    Appends are safe for concurrent writers — threads in one process
    and separate processes alike: the next run index is claimed under
    an advisory lock (POSIX ``flock`` on ``.lock``; an ``O_EXCL``
    spin lock where ``fcntl`` is unavailable), and each writer stages
    through its own uniquely-named temp file before the atomic rename.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self._thread_lock = threading.Lock()

    # -- writing -----------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Advisory cross-process lock over index assignment."""
        lock_path = os.path.join(self.root, ".lock")
        with self._thread_lock:
            if fcntl is not None:
                fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    yield
                finally:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                    os.close(fd)
            else:  # pragma: no cover - non-POSIX fallback path
                excl = f"{lock_path}.excl"
                while True:
                    try:
                        os.close(os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                        break
                    except FileExistsError:
                        time.sleep(0.005)
                try:
                    yield
                finally:
                    os.unlink(excl)

    def append(self, summary: RunSummary) -> RunSummary:
        """Assign the next run id, write the summary, return it updated."""
        os.makedirs(self.root, exist_ok=True)
        with self._locked():
            next_index = max(self._indices(), default=0) + 1
            summary.run_id = f"run-{next_index:04d}"
            path = os.path.join(self.root, f"{summary.run_id}.json")
            # unique tmp + rename: a crashed writer never leaves a half
            # summary, and writers never share a staging file
            tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        return summary

    # -- reading -----------------------------------------------------------
    def _indices(self) -> List[int]:
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return [
            int(m.group(1)) for m in (_RUN_FILE.match(n) for n in names) if m
        ]

    def run_ids(self) -> List[str]:
        """Stored run ids, oldest first."""
        return [f"run-{i:04d}" for i in sorted(self._indices())]

    def runs(self) -> List[RunSummary]:
        """Every stored summary, oldest first."""
        return [self.get(run_id) for run_id in self.run_ids()]

    def get(self, run_id: str) -> RunSummary:
        """The summary stored under *run_id*."""
        path = os.path.join(self.root, f"{run_id}.json")
        if not os.path.exists(path):
            raise RunStoreError(
                f"no run {run_id!r} in store {self.root!r} "
                f"(have: {', '.join(self.run_ids()) or 'none'})"
            )
        return RunSummary.from_file(path)

    def latest(self, policy: Optional[str] = None) -> RunSummary:
        """The newest stored summary (optionally of one policy)."""
        for run_id in reversed(self.run_ids()):
            summary = self.get(run_id)
            if policy is None or summary.policy == policy:
                return summary
        raise RunStoreError(
            f"store {self.root!r} has no runs"
            + (f" with policy {policy!r}" if policy else "")
        )

    def resolve(self, reference: str) -> RunSummary:
        """A summary from a flexible reference.

        Accepts a stored run id (``run-0007``), the word ``latest``
        (optionally ``latest:POLICY``), or a path to a summary JSON
        file (anything containing a path separator or ending ``.json``).
        """
        if reference == "latest":
            return self.latest()
        if reference.startswith("latest:"):
            return self.latest(policy=reference.split(":", 1)[1])
        if os.sep in reference or reference.endswith(".json"):
            return RunSummary.from_file(reference)
        return self.get(reference)

    def __len__(self) -> int:
        return len(self._indices())


# -- comparison ------------------------------------------------------------


@dataclass(frozen=True)
class Budgets:
    """How much worse a candidate may be before it counts as a regression.

    Relative budgets are fractions (0.05 = +5% allowed); ``drift`` and
    ``hit_rate`` are absolute deltas on quantities that are themselves
    ratios.  ``alerts`` is the allowed absolute growth of the live
    monitor's ``monitor.alerts.total`` counter — the default 0.0 means
    any *new* health alert fails the gate.  ``throughput`` (off by
    default: the ``perf.*`` counters are wall-clock measurements, too
    noisy for an always-on gate) bounds the relative *loss* of
    ``perf.events_per_sec`` and growth of ``perf.us_per_invocation``
    when explicitly enabled via ``compare-runs --budget-throughput``.
    ``bytes`` (also opt-in, via ``compare-runs --budget-bytes``) bounds
    the relative *growth* of the data-plane counters ``bytes.total``
    and ``bytes.enactor_moved`` — the enactor-bytes-moved gate that
    catches a change quietly routing more data through the centralized
    enactor (ROADMAP item 4's yardstick).  Unlike ``perf.*``, byte
    counters are simulated and deterministic, so the budget can be 0.0.
    Phases smaller than ``min_seconds`` in both runs are noise and
    never compared.
    """

    makespan: float = 0.05
    phase: float = 0.10
    drift: float = 0.05
    hit_rate: float = 0.05
    jobs: float = 0.0
    alerts: float = 0.0
    throughput: Optional[float] = None
    bytes: Optional[float] = None
    min_seconds: float = 1.0


@dataclass(frozen=True)
class Regression:
    """One budget check that moved (regressed or improved)."""

    metric: str
    baseline: float
    candidate: float
    budget: float
    #: "relative" change is (cand-base)/base; "absolute" is cand-base
    mode: str = "relative"

    @property
    def change(self) -> float:
        """The measured change, in the budget's own units."""
        if self.mode == "relative":
            denominator = self.baseline if self.baseline > 0 else 1.0
            return (self.candidate - self.baseline) / denominator
        return self.candidate - self.baseline

    def describe(self) -> str:
        """One human line: metric, values, change vs budget."""
        if self.mode == "relative":
            change = f"{self.change:+.1%} (budget {self.budget:+.1%})"
        else:
            change = f"{self.change:+.3f} (budget {self.budget:+.3f})"
        return (
            f"{self.metric}: {self.baseline:.2f} -> {self.candidate:.2f}  {change}"
        )


@dataclass(frozen=True)
class RunComparison:
    """The structured outcome of one baseline-vs-candidate comparison."""

    baseline: RunSummary
    candidate: RunSummary
    budgets: Budgets
    regressions: Tuple[Regression, ...] = ()
    improvements: Tuple[Regression, ...] = ()
    checked: Tuple[str, ...] = ()
    #: one entry per checked metric, in check order — the full
    #: before/after table, not just the budget violations
    deltas: Tuple[Regression, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no budget was blown (the CI exit-0 condition)."""
        return not self.regressions


def _check(
    metric: str,
    baseline: float,
    candidate: float,
    budget: float,
    mode: str,
    regressions: List[Regression],
    improvements: List[Regression],
    deltas: List[Regression],
) -> None:
    entry = Regression(
        metric=metric, baseline=baseline, candidate=candidate, budget=budget, mode=mode
    )
    deltas.append(entry)
    if entry.change > budget:
        regressions.append(entry)
    elif entry.change < -budget:
        improvements.append(entry)


def compare(
    baseline: RunSummary,
    candidate: RunSummary,
    budgets: Optional[Budgets] = None,
) -> RunComparison:
    """Budgeted comparison of two runs of the *same* configuration.

    Raises :class:`RunStoreError` when workflow, policy or input size
    differ — cross-configuration deltas are policy effects, not
    regressions, and comparing them against budgets would mislead.
    """
    budgets = budgets if budgets is not None else Budgets()
    for attribute in ("workflow", "policy"):
        left = getattr(baseline, attribute)
        right = getattr(candidate, attribute)
        if left != right:
            raise RunStoreError(
                f"cannot compare across {attribute}s: "
                f"baseline={left!r} candidate={right!r}"
            )
    if baseline.n_items and candidate.n_items and baseline.n_items != candidate.n_items:
        raise RunStoreError(
            f"cannot compare across input sizes: baseline={baseline.n_items} "
            f"candidate={candidate.n_items} items"
        )

    regressions: List[Regression] = []
    improvements: List[Regression] = []
    deltas: List[Regression] = []
    checked: List[str] = ["makespan"]
    _check(
        "makespan",
        baseline.makespan,
        candidate.makespan,
        budgets.makespan,
        "relative",
        regressions,
        improvements,
        deltas,
    )
    for phase in sorted(set(baseline.phase_totals) | set(candidate.phase_totals)):
        left = baseline.phase_totals.get(phase, 0.0)
        right = candidate.phase_totals.get(phase, 0.0)
        if max(left, right) < budgets.min_seconds:
            continue
        checked.append(f"phase.{phase}")
        # denominator floored at min_seconds: a phase growing from ~0
        # is judged on absolute growth, not an explosive percentage.
        entry = Regression(
            metric=f"phase.{phase}",
            baseline=max(left, budgets.min_seconds),
            candidate=right,
            budget=budgets.phase,
            mode="relative",
        )
        deltas.append(
            Regression(f"phase.{phase}", left, right, budgets.phase, "relative")
        )
        if entry.change > budgets.phase:
            regressions.append(
                Regression(f"phase.{phase}", left, right, budgets.phase, "relative")
            )
        elif entry.change < -budgets.phase:
            improvements.append(
                Regression(f"phase.{phase}", left, right, budgets.phase, "relative")
            )
    if "relative_error" in baseline.drift and "relative_error" in candidate.drift:
        checked.append("drift.relative_error")
        _check(
            "drift.relative_error",
            baseline.drift["relative_error"],
            candidate.drift["relative_error"],
            budgets.drift,
            "absolute",
            regressions,
            improvements,
            deltas,
        )
    if "hit_rate" in baseline.cache and "hit_rate" in candidate.cache:
        checked.append("cache.hit_rate")
        # a *drop* in hit rate is the regression: negate the delta
        entry = Regression(
            "cache.hit_rate",
            baseline.cache["hit_rate"],
            candidate.cache["hit_rate"],
            budgets.hit_rate,
            "absolute",
        )
        deltas.append(entry)
        if -entry.change > budgets.hit_rate:
            regressions.append(entry)
        elif entry.change > budgets.hit_rate:
            improvements.append(entry)
    jobs_key = "grid.jobs.submitted"
    if jobs_key in baseline.counters or jobs_key in candidate.counters:
        checked.append(f"counter.{jobs_key}")
        _check(
            f"counter.{jobs_key}",
            baseline.counters.get(jobs_key, 0.0),
            candidate.counters.get(jobs_key, 0.0),
            budgets.jobs,
            "relative",
            regressions,
            improvements,
            deltas,
        )
    if budgets.throughput is not None:
        eps_key = "perf.events_per_sec"
        if eps_key in baseline.counters and eps_key in candidate.counters:
            checked.append(f"counter.{eps_key}")
            # a *drop* in events/sec is the regression: negate the delta
            entry = Regression(
                f"counter.{eps_key}",
                baseline.counters[eps_key],
                candidate.counters[eps_key],
                budgets.throughput,
                "relative",
            )
            deltas.append(entry)
            if -entry.change > budgets.throughput:
                regressions.append(entry)
            elif entry.change > budgets.throughput:
                improvements.append(entry)
        upi_key = "perf.us_per_invocation"
        if upi_key in baseline.counters and upi_key in candidate.counters:
            checked.append(f"counter.{upi_key}")
            _check(
                f"counter.{upi_key}",
                baseline.counters[upi_key],
                candidate.counters[upi_key],
                budgets.throughput,
                "relative",
                regressions,
                improvements,
                deltas,
            )
    if budgets.bytes is not None:
        for bytes_key in ("bytes.total", "bytes.enactor_moved"):
            if bytes_key in baseline.counters or bytes_key in candidate.counters:
                checked.append(f"counter.{bytes_key}")
                _check(
                    f"counter.{bytes_key}",
                    baseline.counters.get(bytes_key, 0.0),
                    candidate.counters.get(bytes_key, 0.0),
                    budgets.bytes,
                    "relative",
                    regressions,
                    improvements,
                    deltas,
                )
    alerts_key = "monitor.alerts.total"
    if alerts_key in baseline.counters or alerts_key in candidate.counters:
        checked.append(f"counter.{alerts_key}")
        # absolute: alerts are small counts, and a baseline of zero must
        # still fail the gate when the candidate starts alerting.
        _check(
            f"counter.{alerts_key}",
            baseline.counters.get(alerts_key, 0.0),
            candidate.counters.get(alerts_key, 0.0),
            budgets.alerts,
            "absolute",
            regressions,
            improvements,
            deltas,
        )
    return RunComparison(
        baseline=baseline,
        candidate=candidate,
        budgets=budgets,
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        checked=tuple(checked),
        deltas=tuple(deltas),
    )
