"""Control-plane observability for the multi-tenant enactment service.

Everything under :mod:`repro.observability` up to PR 6 watches a single
*enactment*: spans, health, alerts and critical paths all answer "what
did this run do?".  The :mod:`ops` package is the operator-facing layer
above it — it watches the *service*: which tenant is starving, why run
X was admitted before run Y, whether queue-wait SLOs hold, and how fast
the event core is actually turning.  In the Costan et al. platform
architecture (PAPERS.md) this is the monitoring/auditing layer sitting
beside execution and scheduling.

Pieces (all deterministic in simulated time, all stdlib-only):

* :mod:`~repro.observability.ops.audit` — the structured control-plane
  audit trail: one :class:`AuditEvent` per scheduler decision (submit,
  admission with fair-share scores at decision time, quota block,
  cancellation, recovery, completion), totally ordered by
  ``(sim-time, sequence)`` and persisted through the service's
  :class:`~repro.service.store.StateStore` so ``service audit <run>``
  can explain any run's lifecycle after the fact;
* :mod:`~repro.observability.ops.rollup` — live per-tenant metric
  rollups (:class:`TenantRollup`) aggregated from tenant-tagged spans
  and audit events by the :class:`ControlPlaneTelemetry` bus
  subscriber, with the same ``replay == live`` contract as the run
  monitor;
* :mod:`~repro.observability.ops.slo` — declarative service-level
  objectives (queue-wait p95, run success rate, fair-share deviation)
  evaluated incrementally, raising ``slo-burn``
  :class:`~repro.observability.alerts.Alert` records through the
  existing alert machinery when the burn rate crosses its threshold;
* :mod:`~repro.observability.ops.promexport` — the Prometheus
  text-exposition exporter (plus a strict parser used to validate it
  and an optional stdlib scrape endpoint);
* :mod:`~repro.observability.ops.console` — the ANSI ops console
  behind ``python -m repro.service top``.
"""

from __future__ import annotations

from repro.observability.ops.audit import (
    AUDIT_KINDS,
    AuditError,
    AuditEvent,
    audit_events_from_jsonl,
    audit_events_to_jsonl,
    audit_sort_key,
    explain_run,
)
from repro.observability.ops.console import CLEAR_SCREEN, render_top
from repro.observability.ops.promexport import (
    MetricsHTTPServer,
    PromParseError,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.ops.rollup import (
    ControlPlaneTelemetry,
    TenantRollup,
    rollups_from_records,
)
from repro.observability.ops.slo import (
    SLO,
    SLO_KINDS,
    SLOStatus,
    SLOTracker,
    default_slos,
    parse_slo,
)

__all__ = [
    "AUDIT_KINDS",
    "AuditError",
    "AuditEvent",
    "audit_events_from_jsonl",
    "audit_events_to_jsonl",
    "audit_sort_key",
    "explain_run",
    "ControlPlaneTelemetry",
    "TenantRollup",
    "rollups_from_records",
    "SLO",
    "SLO_KINDS",
    "SLOStatus",
    "SLOTracker",
    "default_slos",
    "parse_slo",
    "MetricsHTTPServer",
    "PromParseError",
    "parse_prometheus",
    "render_prometheus",
    "CLEAR_SCREEN",
    "render_top",
]
