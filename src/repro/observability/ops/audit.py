"""The control-plane audit trail: every scheduler decision, explained.

Run-level observability can say *what* a run did; only the control
plane can say *why* it ran when it did.  An :class:`AuditEvent` is one
recorded scheduler decision:

``submit``
    a run entered the queue (workload, configuration, seed,
    ``not_before``);
``admit``
    an admission pick — carries the full
    :class:`~repro.service.logic.AdmissionDecision` payload: fair-share
    scores, decayed usage and provisional charges *at decision time*,
    the eligible set, and every quota-blocked run with its reason;
``quota-block``
    a queued run could not start because of a tenant quota (emitted on
    reason *transitions*, not every scheduler tick, so the trail stays
    readable);
``cancel``
    a cancellation request was applied (queued or running);
``recover``
    a crashed service's orphan run was re-queued (``resume`` says
    whether its journal will replay);
``finish``
    a run went terminal (final state, makespan, error, grid jobs).

Events are timestamped in **simulated seconds**, carry a monotonically
increasing per-store sequence number, and are totally ordered by
``(time, sequence)`` — the same discipline as
:mod:`repro.observability.alerts` — so two services replaying the same
traffic produce *byte-identical* audit logs.  Persistence goes through
the service's :class:`~repro.service.store.StateStore`, which assigns
the sequence numbers; this module is pure data + serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "AUDIT_KINDS",
    "AuditError",
    "AuditEvent",
    "audit_sort_key",
    "audit_events_to_jsonl",
    "audit_events_from_jsonl",
    "explain_run",
]

#: every decision kind the control plane records, in lifecycle order
AUDIT_KINDS: Tuple[str, ...] = (
    "submit",
    "admit",
    "quota-block",
    "cancel",
    "recover",
    "finish",
)


class AuditError(ValueError):
    """Malformed audit records or streams."""


@dataclass(frozen=True)
class AuditEvent:
    """One recorded control-plane decision.

    ``run_id`` / ``tenant`` name the run the decision is about (an
    ``admit`` event is about the *picked* run; the rest of the decision
    context lives in ``attributes``).  ``sequence`` is assigned by the
    persisting store and makes ordering total even at equal simulated
    times.
    """

    kind: str
    time: float
    run_id: str
    tenant: str
    message: str = ""
    sequence: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in AUDIT_KINDS:
            raise AuditError(
                f"unknown audit kind {self.kind!r}; expected one of {AUDIT_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL line schema (stable, documented in the README)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "run_id": self.run_id,
            "tenant": self.tenant,
            "message": self.message,
            "sequence": self.sequence,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AuditEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        try:
            return cls(
                kind=str(payload["kind"]),
                time=float(payload["time"]),
                run_id=str(payload["run_id"]),
                tenant=str(payload.get("tenant", "")),
                message=str(payload.get("message", "")),
                sequence=int(payload.get("sequence", 0)),
                attributes=dict(payload.get("attributes") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AuditError(f"malformed audit record: {exc}") from None


def audit_sort_key(event: AuditEvent) -> Tuple[float, int]:
    """Total deterministic ordering: by simulated time, then sequence."""
    return (event.time, event.sequence)


def audit_events_to_jsonl(events: Iterable[AuditEvent]) -> str:
    """Serialize *events* as one JSON object per line, sorted."""
    ordered = sorted(events, key=audit_sort_key)
    return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in ordered)


def audit_events_from_jsonl(text: "str | Iterable[str]") -> List[AuditEvent]:
    """Parse an audit JSONL stream (blank lines ignored)."""
    lines = text.splitlines() if isinstance(text, str) else text
    events: List[AuditEvent] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AuditError(f"line {lineno} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "kind" not in payload:
            raise AuditError(f"line {lineno} is not an audit record: {line[:80]!r}")
        events.append(AuditEvent.from_dict(payload))
    return events


def _fmt_scores(scores: Dict[str, Any]) -> str:
    return ", ".join(f"{t}={float(v):.1f}" for t, v in sorted(scores.items()))


def explain_run(
    events: Iterable[AuditEvent], run_id: Optional[str] = None
) -> List[str]:
    """Human-readable decision history, one line per event.

    With *run_id* the trail is filtered to events about that run —
    plus ``admit`` events where the run appears among the eligible or
    blocked sets, so "why was run X admitted before run Y?" is
    answerable from run Y's own trail.
    """
    lines: List[str] = []
    for event in sorted(events, key=audit_sort_key):
        attrs = event.attributes
        if run_id is not None and event.run_id != run_id:
            if event.kind != "admit":
                continue
            mentioned = set(attrs.get("eligible") or ())
            mentioned.update(rid for rid, _ in (attrs.get("blocked") or ()))
            if run_id not in mentioned:
                continue
        stamp = f"[t={event.time:9.1f}s #{event.sequence:04d}]"
        if event.kind == "submit":
            detail = (
                f"submit {event.run_id} tenant={event.tenant} "
                f"({attrs.get('n_items')} pairs, {attrs.get('config_label')}, "
                f"seed {attrs.get('seed')})"
            )
        elif event.kind == "admit":
            scores = attrs.get("scores") or {}
            detail = (
                f"admit  {event.run_id} tenant={event.tenant} "
                f"policy={attrs.get('policy')} wait={float(attrs.get('wait', 0.0)):.1f}s"
            )
            if scores:
                detail += f" scores[{_fmt_scores(scores)}]"
            blocked = attrs.get("blocked") or []
            if blocked:
                detail += f" blocked={len(blocked)}"
        elif event.kind == "quota-block":
            detail = f"block  {event.run_id} tenant={event.tenant}: {event.message}"
        elif event.kind == "cancel":
            detail = f"cancel {event.run_id} tenant={event.tenant}: {event.message}"
        elif event.kind == "recover":
            detail = (
                f"recover {event.run_id} tenant={event.tenant} "
                f"(resume={attrs.get('resume')})"
            )
        else:  # finish
            state = attrs.get("state")
            detail = f"finish {event.run_id} tenant={event.tenant} -> {state}"
            if attrs.get("makespan") is not None:
                detail += f" makespan={float(attrs['makespan']):.1f}s"
            if attrs.get("error"):
                detail += f" error={attrs['error']!r}"
        lines.append(f"{stamp} {detail}")
    return lines
