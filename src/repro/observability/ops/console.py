"""The live ops console behind ``python -m repro.service top``.

Curses-free by design: :func:`render_top` builds one complete frame as
a plain string from whatever rollup/SLO/alert state the CLI hands it,
and the CLI either prints it once (``--once``, CI-friendly) or clears
the screen with ANSI escapes and re-renders on an interval
(``--watch``).  Rendering is pure — no I/O, no wall clock — so a frame
is deterministic for a given service state and the smoke tests can
assert on its contents.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.observability.alerts import Alert, alert_sort_key
from repro.observability.ops.rollup import TenantRollup
from repro.observability.ops.slo import SLOStatus
from repro.util.units import format_size

__all__ = ["render_top", "CLEAR_SCREEN"]

#: ANSI: clear screen + home cursor (what ``--watch`` prints per frame)
CLEAR_SCREEN = "\x1b[2J\x1b[H"

_BAR_WIDTH = 10

_COLUMNS = (
    ("TENANT", 12, "<"),
    ("WT", 4, ">"),
    ("SHARE", 6, ">"),
    ("USAGE", 11, "<"),
    ("QUEUE", 5, ">"),
    ("RUN", 4, ">"),
    ("DONE", 5, ">"),
    ("FAIL", 5, ">"),
    ("JOBS", 6, ">"),
    ("CPU-H", 7, ">"),
    ("B-IN", 9, ">"),
    ("B-OUT", 9, ">"),
    ("WAITP95", 8, ">"),
    ("ETA", 8, ">"),
    ("HEALTH", 6, ">"),
)


def _bar(fraction: float) -> str:
    """A ten-cell usage bar like ``#####-----``."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * _BAR_WIDTH))
    return "#" * filled + "-" * (_BAR_WIDTH - filled)


def _duration(seconds: Optional[float]) -> str:
    """Compact simulated-duration rendering (``-`` when unknown)."""
    if seconds is None:
        return "-"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _row(cells: Iterable[str]) -> str:
    parts = []
    for (title, width, align), cell in zip(_COLUMNS, cells):
        parts.append(f"{cell:{align}{width}}")
    return "  ".join(parts).rstrip()


def _tenant_row(
    rollup: TenantRollup,
    total_weight: float,
    total_usage: float,
) -> str:
    entitled = rollup.weight / total_weight if total_weight > 0 else 0.0
    actual = rollup.usage / total_usage if total_usage > 0 else 0.0
    mean_makespan = _mean(rollup.makespans)
    eta = (
        rollup.queued * mean_makespan
        if rollup.queued and mean_makespan is not None
        else (0.0 if not rollup.queued else None)
    )
    rate = rollup.success_rate
    health = f"{rate * 100:.0f}%" if rate is not None else "-"
    return _row(
        (
            rollup.tenant[:12],
            f"{rollup.weight:g}",
            f"{entitled * 100:.0f}%",
            _bar(actual),
            str(rollup.queued),
            str(rollup.running),
            str(rollup.done),
            str(rollup.failed + rollup.cancelled),
            str(rollup.jobs_completed + rollup.jobs_failed),
            f"{rollup.cpu_seconds / 3600:.1f}",
            format_size(rollup.bytes_in) if rollup.bytes_in else "-",
            format_size(rollup.bytes_out) if rollup.bytes_out else "-",
            _duration(rollup.queue_wait_p95() if rollup.admission_waits else None),
            _duration(eta),
            health,
        )
    )


def render_top(
    rollups: Iterable[TenantRollup],
    totals: Optional[TenantRollup] = None,
    slo_statuses: Optional[Iterable[SLOStatus]] = None,
    alerts: Optional[Iterable[Alert]] = None,
    perf: Optional[Mapping[str, float]] = None,
    now: Optional[float] = None,
    title: str = "enactment service",
    max_alerts: int = 5,
) -> str:
    """Build one console frame: tenant table, SLOs, recent alerts.

    Everything is optional except the rollups; sections without data
    are omitted so ``--once`` against an empty store still renders.
    """
    rows = list(rollups)
    total_weight = sum(r.weight for r in rows)
    total_usage = sum(r.usage for r in rows)
    lines: List[str] = []

    stamp = f"t={now:.0f}s" if now is not None else "offline"
    lines.append(f"== {title} :: {stamp} ==")
    lines.append("")
    lines.append(_row(tuple(title for title, _, _ in _COLUMNS)))
    if rows:
        for rollup in rows:
            lines.append(_tenant_row(rollup, total_weight, total_usage))
    else:
        lines.append("(no tenants)")
    if totals is not None:
        lines.append(_tenant_row(totals, totals.weight or 1.0, totals.usage or 1.0))

    statuses = list(slo_statuses or ())
    if statuses:
        lines.append("")
        lines.append("SLOs:")
        for status in statuses:
            marker = "BURN" if status.breached else " ok "
            lines.append(
                f"  [{marker}] {status.slo:<16} {status.tenant:<12} "
                f"value={status.value:.3f} objective={status.objective:g} "
                f"burn={status.burn_rate:.2f}x (n={status.samples})"
            )

    recent: List[Alert] = sorted(alerts or (), key=alert_sort_key)
    if recent:
        lines.append("")
        lines.append(f"Recent alerts (last {min(max_alerts, len(recent))}):")
        for alert in recent[-max_alerts:]:
            lines.append(
                f"  [t={alert.time:9.1f}s] {alert.kind:<11} "
                f"{alert.subject}: {alert.message}"
            )

    if perf:
        lines.append("")
        pairs = "  ".join(f"{k}={perf[k]:.1f}" for k in sorted(perf))
        lines.append(f"perf: {pairs}")

    return "\n".join(lines) + "\n"
