"""Per-tenant metric rollups, aggregated live from spans + audit events.

The service multiplexes many tenants over one grid; every span it
emits carries ``tenant``/``run`` attributes and every control-plane
decision lands in the audit trail.  :class:`ControlPlaneTelemetry`
folds both streams into one :class:`TenantRollup` per tenant — runs by
state, invocations, grid jobs, CPU-seconds, queue-wait distributions,
fair-share usage — plus an *independently accumulated* global rollup,
so "per-tenant sums equal the global totals" is a checkable invariant
rather than a tautology.

**The online invariant** (mirroring
:class:`~repro.observability.monitor.RunMonitor`): every rollup field
is derived solely from closed spans in completion order and audit
events in ``(time, sequence)`` order — with the single exception of
``jobs_started``, which advances on span *announcement* exactly the
way replay announces each span before closing it.  Feeding a recorded
span stream through :meth:`replay` and a recorded audit trail through
:meth:`replay_audit` therefore reproduces the live rollups bit for
bit; the tests hold the service to that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability.bus import Subscriber
from repro.observability.metrics import HistogramSnapshot
from repro.observability.ops.audit import AuditEvent, audit_sort_key
from repro.observability.spans import Span

__all__ = ["TenantRollup", "ControlPlaneTelemetry", "rollups_from_records"]

#: invocation-span kinds that count as one processed item
_ITEM_KINDS = ("invocation", "grouped", "cached", "replayed")

#: the synthetic tenant name used for the independent global rollup
GLOBAL = "*"


@dataclass
class TenantRollup:
    """One tenant's control-plane accounting (or the global totals)."""

    tenant: str
    weight: float = 1.0
    #: lifetime counters
    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    recovered: int = 0
    quota_blocks: int = 0
    invocations: int = 0
    jobs_started: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    cpu_seconds: float = 0.0
    #: data-plane bytes the tenant's jobs staged in / out
    bytes_in: int = 0
    bytes_out: int = 0
    #: current levels (from the audit state machine)
    queued: int = 0
    running: int = 0
    #: control-plane admission waits (submit -> admit), simulated seconds
    admission_waits: List[float] = field(default_factory=list)
    #: grid batch-queue waits (``job.queue`` phase durations)
    grid_queue_waits: List[float] = field(default_factory=list)
    #: makespans of finished runs (drives the console's ETA column)
    makespans: List[float] = field(default_factory=list)
    #: decayed fair-share usage at the last decision that reported it
    usage: float = 0.0

    @property
    def finished(self) -> int:
        """Runs that reached any terminal state."""
        return self.done + self.failed + self.cancelled

    @property
    def success_rate(self) -> Optional[float]:
        """DONE / finished, or None before any run finished."""
        if not self.finished:
            return None
        return self.done / self.finished

    def wait_stats(self) -> HistogramSnapshot:
        """Admission-wait distribution (percentiles, mean...)."""
        return HistogramSnapshot(values=tuple(self.admission_waits))

    def queue_wait_p95(self) -> float:
        """95th-percentile control-plane admission wait (0.0 if none)."""
        return self.wait_stats().percentile(95.0)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-plain form (used by tests and the console)."""
        return {
            "tenant": self.tenant,
            "weight": self.weight,
            "submitted": self.submitted,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "recovered": self.recovered,
            "quota_blocks": self.quota_blocks,
            "invocations": self.invocations,
            "jobs_started": self.jobs_started,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "cpu_seconds": round(self.cpu_seconds, 6),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "admission_waits": [round(w, 6) for w in self.admission_waits],
            "grid_queue_waits": [round(w, 6) for w in self.grid_queue_waits],
            "makespans": [round(m, 6) for m in self.makespans],
            "usage": round(self.usage, 6),
        }


class ControlPlaneTelemetry(Subscriber):
    """Folds tenant-tagged spans and audit events into live rollups.

    Subscribe it to the service's
    :class:`~repro.observability.bus.InstrumentationBus` (span side)
    and hand every persisted :class:`AuditEvent` to :meth:`on_audit`
    (control-plane side) — the
    :class:`~repro.service.scheduler.EnactmentService` does both when
    telemetry is enabled.  Spans without a ``tenant`` attribute are
    attributed to the ``"(untagged)"`` bucket so the global totals
    still balance.
    """

    UNTAGGED = "(untagged)"

    def __init__(self) -> None:
        #: tenant -> rollup, first-seen order
        self.tenants: Dict[str, TenantRollup] = {}
        self._global = TenantRollup(tenant=GLOBAL)
        self.audit_events_seen = 0

    # -- access ----------------------------------------------------------
    def tenant(self, name: str) -> TenantRollup:
        """The rollup for *name* (created on first use)."""
        rollup = self.tenants.get(name)
        if rollup is None:
            rollup = self.tenants[name] = TenantRollup(tenant=name)
        return rollup

    def totals(self) -> TenantRollup:
        """The independently accumulated global rollup."""
        return self._global

    def rollups(self) -> List[TenantRollup]:
        """Per-tenant rollups, sorted by tenant name."""
        return [self.tenants[name] for name in sorted(self.tenants)]

    def snapshot(self) -> Dict[str, Any]:
        """Everything, JSON-plain (the equivalence-test fingerprint)."""
        return {
            "tenants": {name: r.to_dict() for name, r in self.tenants.items()},
            "global": self._global.to_dict(),
        }

    # -- span side -------------------------------------------------------
    def _buckets(self, span: Span) -> Tuple[TenantRollup, TenantRollup]:
        name = str(span.attributes.get("tenant") or self.UNTAGGED)
        return self.tenant(name), self._global

    def on_start(self, span: Span) -> None:
        """Announcement-side accounting (replay announces spans too)."""
        if span.name == "grid.job":
            for rollup in self._buckets(span):
                rollup.jobs_started += 1

    def on_end(self, span: Span) -> None:
        if span.end is None:  # defensive: replay of a truncated stream
            return
        name = span.name
        if name == "invocation" and span.category == "enactor":
            if span.attributes.get("kind") in _ITEM_KINDS:
                for rollup in self._buckets(span):
                    rollup.invocations += 1
        elif name == "grid.job":
            for rollup in self._buckets(span):
                if span.status == "error":
                    rollup.jobs_failed += 1
                else:
                    rollup.jobs_completed += 1
        elif name == "job.run":
            for rollup in self._buckets(span):
                rollup.cpu_seconds += span.duration
        elif name == "job.queue":
            for rollup in self._buckets(span):
                rollup.grid_queue_waits.append(span.duration)
        elif name == "job.stage_in":
            for rollup in self._buckets(span):
                rollup.bytes_in += int(span.attributes.get("bytes", 0))
        elif name == "job.stage_out":
            for rollup in self._buckets(span):
                rollup.bytes_out += int(span.attributes.get("bytes", 0))

    # -- audit side ------------------------------------------------------
    def on_audit(self, event: AuditEvent) -> None:
        """Advance the run-state machine with one control-plane event."""
        self.audit_events_seen += 1
        attrs = event.attributes
        targets = (self.tenant(event.tenant), self._global)
        if event.kind == "submit":
            for rollup in targets:
                rollup.submitted += 1
                rollup.queued += 1
            if attrs.get("weight") is not None:
                self.tenant(event.tenant).weight = float(attrs["weight"])
        elif event.kind == "admit":
            for rollup in targets:
                rollup.queued = max(0, rollup.queued - 1)
                rollup.running += 1
                rollup.admission_waits.append(float(attrs.get("wait", 0.0)))
            # the decision payload reports decayed usage for every
            # tenant it scored, not just the picked one
            for name, usage in (attrs.get("usage") or {}).items():
                self.tenant(str(name)).usage = float(usage)
        elif event.kind == "quota-block":
            for rollup in targets:
                rollup.quota_blocks += 1
        elif event.kind == "recover":
            for rollup in targets:
                rollup.recovered += 1
                rollup.queued += 1
        elif event.kind == "finish":
            origin = str(attrs.get("from", "running"))
            state = str(attrs.get("state", ""))
            for rollup in targets:
                if origin == "queued":
                    rollup.queued = max(0, rollup.queued - 1)
                else:
                    rollup.running = max(0, rollup.running - 1)
                if state == "done":
                    rollup.done += 1
                elif state == "failed":
                    rollup.failed += 1
                elif state == "cancelled":
                    rollup.cancelled += 1
                if attrs.get("makespan") is not None:
                    rollup.makespans.append(float(attrs["makespan"]))
            if attrs.get("usage") is not None:
                self.tenant(event.tenant).usage = float(attrs["usage"])
        # "cancel" records the *request*; the state change arrives as
        # the matching "finish" event, so there is nothing to fold here.

    # -- replay ----------------------------------------------------------
    def replay(self, spans: Iterable[Span]) -> "ControlPlaneTelemetry":
        """Feed a recorded stream of closed spans (completion order)."""
        for span in spans:
            self.on_start(span)
            self.on_end(span)
        return self

    def replay_audit(self, events: Iterable[AuditEvent]) -> "ControlPlaneTelemetry":
        """Feed a recorded audit trail in ``(time, sequence)`` order."""
        for event in sorted(events, key=audit_sort_key):
            self.on_audit(event)
        return self


def rollups_from_records(
    records: Iterable[Any],
    weights: Optional[Mapping[str, float]] = None,
    usage: Optional[Mapping[str, float]] = None,
) -> List[TenantRollup]:
    """Post-hoc rollups from persisted run records (no live telemetry).

    *records* are :class:`~repro.service.logic.RunRecord`-shaped
    objects (duck-typed: ``tenant``, ``state.value``, ``submitted_at``,
    ``started_at``, ``result``).  This is what ``service top --once``
    and ``service metrics`` use against a state store written by
    another process: control-plane facts only — span-derived fields
    (CPU-seconds, grid queue waits, invocations) come from the run
    results where available and stay zero otherwise.
    """
    rollups: Dict[str, TenantRollup] = {}
    for record in records:
        name = str(record.tenant)
        rollup = rollups.get(name)
        if rollup is None:
            rollup = rollups[name] = TenantRollup(tenant=name)
        state = record.state.value
        rollup.submitted += 1
        if state == "queued" or state == "submitted":
            rollup.queued += 1
        elif state == "running":
            rollup.running += 1
        elif state == "done":
            rollup.done += 1
        elif state == "failed":
            rollup.failed += 1
        elif state == "cancelled":
            rollup.cancelled += 1
        if record.started_at is not None:
            rollup.admission_waits.append(
                max(0.0, record.started_at - record.submitted_at)
            )
        result = getattr(record, "result", None) or {}
        jobs = result.get("grid_jobs")
        if jobs is not None and state in ("done", "failed", "cancelled"):
            rollup.jobs_started += int(jobs)
            rollup.jobs_completed += int(jobs)
        rollup.invocations += int(result.get("invocations") or 0)
        if result.get("makespan") is not None:
            rollup.makespans.append(float(result["makespan"]))
    for name, rollup in rollups.items():
        if weights and name in weights:
            rollup.weight = float(weights[name])
        if usage and name in usage:
            rollup.usage = float(usage[name])
    return [rollups[name] for name in sorted(rollups)]
