"""Prometheus text-exposition exporter for the control-plane rollups.

:func:`render_prometheus` turns per-tenant rollups, SLO statuses and
the bus metrics snapshot into the Prometheus text format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers, label-escaped samples, and
summary quantiles with ``_sum`` / ``_count``.  The companion
:func:`parse_prometheus` is a deliberately *strict* parser — TYPE
before samples, valid metric/label grammar, no duplicate series, final
newline required — used by the tests and the CI smoke job to prove the
exporter emits clean scrape output rather than trusting it by
inspection.  :class:`MetricsHTTPServer` serves the rendered text on a
stdlib HTTP endpoint for real scrapers; nothing here needs a network
to be useful (``service metrics --out metrics.prom`` writes the same
bytes to disk).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability.metrics import MetricsSnapshot
from repro.observability.ops.rollup import TenantRollup
from repro.observability.ops.slo import SLOStatus

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "PromParseError",
    "MetricsHTTPServer",
]

#: scrape content type for the text exposition format
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

#: quantiles exported for every summary family
_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _fmt(value: float) -> str:
    """Render a sample value (integers without trailing .0)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Family:
    """One metric family being rendered: header plus ordered samples."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(self, labels: Mapping[str, str], value: float, suffix: str = "") -> None:
        self.samples.append((self.name + suffix, dict(labels), value))

    def lines(self) -> List[str]:
        out = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for sample_name, labels, value in self.samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape(str(labels[key]))}"' for key in labels
                )
                out.append(f"{sample_name}{{{rendered}}} {_fmt(value)}")
            else:
                out.append(f"{sample_name} {_fmt(value)}")
        return out


def render_prometheus(
    rollups: Iterable[TenantRollup],
    totals: Optional[TenantRollup] = None,
    slo_statuses: Optional[Iterable[SLOStatus]] = None,
    snapshot: Optional[MetricsSnapshot] = None,
    perf: Optional[Mapping[str, float]] = None,
) -> str:
    """Render everything the service knows as Prometheus text.

    *rollups* are the per-tenant rows; *totals* (when given) is emitted
    with ``tenant="*"``; *snapshot* exposes the raw bus metrics as
    ``repro_bus_counter`` / ``repro_bus_gauge`` families keyed by a
    ``name`` label (dotted names stay readable instead of being mangled
    into metric names); *perf* adds the throughput counters the
    scheduler samples (events/sec, µs per invocation, tick latency).
    """
    families: List[_Family] = []

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = _Family(name, kind, help_text)
        families.append(fam)
        return fam

    submitted = family(
        "repro_tenant_runs_submitted_total", "counter",
        "Runs submitted per tenant.",
    )
    terminal = family(
        "repro_tenant_runs_total", "counter",
        "Terminal runs per tenant by final state.",
    )
    level = family(
        "repro_tenant_runs", "gauge",
        "Runs currently queued or running per tenant.",
    )
    jobs = family(
        "repro_tenant_grid_jobs_total", "counter",
        "Grid jobs per tenant by outcome.",
    )
    invocations = family(
        "repro_tenant_invocations_total", "counter",
        "Service invocations processed per tenant.",
    )
    cpu = family(
        "repro_tenant_cpu_seconds_total", "counter",
        "Simulated CPU-seconds consumed per tenant (job run phases).",
    )
    moved = family(
        "repro_tenant_bytes_total", "counter",
        "Data-plane bytes staged per tenant by direction.",
    )
    usage = family(
        "repro_tenant_fair_share_usage", "gauge",
        "Decayed fair-share usage per tenant at the last decision.",
    )
    weight = family(
        "repro_tenant_weight", "gauge",
        "Configured fair-share weight per tenant.",
    )
    blocks = family(
        "repro_tenant_quota_blocks_total", "counter",
        "Quota-blocked admission attempts per tenant.",
    )
    waits = family(
        "repro_tenant_queue_wait_seconds", "summary",
        "Control-plane admission wait (submit to admit), simulated seconds.",
    )

    rows = list(rollups)
    if totals is not None:
        rows = rows + [totals]
    for rollup in rows:
        labels = {"tenant": rollup.tenant}
        submitted.add(labels, rollup.submitted)
        terminal.add({**labels, "state": "done"}, rollup.done)
        terminal.add({**labels, "state": "failed"}, rollup.failed)
        terminal.add({**labels, "state": "cancelled"}, rollup.cancelled)
        level.add({**labels, "state": "queued"}, rollup.queued)
        level.add({**labels, "state": "running"}, rollup.running)
        jobs.add({**labels, "outcome": "completed"}, rollup.jobs_completed)
        jobs.add({**labels, "outcome": "failed"}, rollup.jobs_failed)
        invocations.add(labels, rollup.invocations)
        cpu.add(labels, rollup.cpu_seconds)
        moved.add({**labels, "direction": "in"}, rollup.bytes_in)
        moved.add({**labels, "direction": "out"}, rollup.bytes_out)
        usage.add(labels, rollup.usage)
        weight.add(labels, rollup.weight)
        blocks.add(labels, rollup.quota_blocks)
        stats = rollup.wait_stats()
        for q in _QUANTILES:
            waits.add(
                {**labels, "quantile": f"{q:g}"},
                stats.percentile(q * 100.0),
            )
        waits.add(labels, stats.total, suffix="_sum")
        waits.add(labels, stats.count, suffix="_count")

    statuses = list(slo_statuses or ())
    if statuses:
        burn = family(
            "repro_slo_burn_rate", "gauge",
            "Error-budget burn rate per SLO and tenant.",
        )
        breached = family(
            "repro_slo_breached", "gauge",
            "1 when the SLO is currently breached for the tenant.",
        )
        for status in statuses:
            labels = {"slo": status.slo, "tenant": status.tenant}
            burn.add(labels, status.burn_rate)
            breached.add(labels, 1.0 if status.breached else 0.0)

    if snapshot is not None and (snapshot.counters or snapshot.gauges):
        if snapshot.counters:
            bus_counters = family(
                "repro_bus_counter", "gauge",
                "Raw instrumentation-bus counters, keyed by dotted name.",
            )
            for name in sorted(snapshot.counters):
                bus_counters.add({"name": name}, snapshot.counters[name])
        if snapshot.gauges:
            bus_gauges = family(
                "repro_bus_gauge", "gauge",
                "Raw instrumentation-bus gauges, keyed by dotted name.",
            )
            for name in sorted(snapshot.gauges):
                bus_gauges.add({"name": name}, snapshot.gauges[name])

    if perf:
        perf_family = family(
            "repro_service_perf", "gauge",
            "Service throughput counters (wall-clock profiling).",
        )
        for name in sorted(perf):
            perf_family.add({"name": name}, float(perf[name]))

    lines: List[str] = []
    for fam in families:
        lines.extend(fam.lines())
    return "\n".join(lines) + "\n"


class PromParseError(ValueError):
    """The text is not valid (strict) Prometheus exposition format."""


def _parse_labels(raw: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", raw[pos:])
        if not match:
            raise PromParseError(f"line {lineno}: bad label syntax at {raw[pos:]!r}")
        name = match.group(1)
        pos += match.end()
        value_chars: List[str] = []
        while True:
            if pos >= len(raw):
                raise PromParseError(f"line {lineno}: unterminated label value")
            ch = raw[pos]
            if ch == "\\":
                if pos + 1 >= len(raw):
                    raise PromParseError(f"line {lineno}: dangling escape")
                nxt = raw[pos + 1]
                if nxt == "n":
                    value_chars.append("\n")
                elif nxt in ("\\", '"'):
                    value_chars.append(nxt)
                else:
                    raise PromParseError(f"line {lineno}: bad escape \\{nxt}")
                pos += 2
            elif ch == '"':
                pos += 1
                break
            else:
                value_chars.append(ch)
                pos += 1
        if name in labels:
            raise PromParseError(f"line {lineno}: duplicate label {name!r}")
        labels[name] = "".join(value_chars)
        if pos < len(raw):
            if raw[pos] != ",":
                raise PromParseError(
                    f"line {lineno}: expected ',' between labels, got {raw[pos]!r}"
                )
            pos += 1
    return labels


def _family_of(sample_name: str, families: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name to its declared family (suffix-aware)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base] in ("summary", "histogram"):
                return base
    return None


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Strictly parse exposition text; raise :class:`PromParseError`.

    Returns ``{"families": {name: type}, "samples": [(name, labels,
    value), ...]}``.  Strictness (beyond what real scrapers require):
    every sample's family must have a prior ``# TYPE``; names and
    labels must match the grammar; a series (name + label set) may
    appear only once; the text must end with a newline.
    """
    if not text:
        raise PromParseError("empty exposition text")
    if not text.endswith("\n"):
        raise PromParseError("exposition text must end with a newline")
    families: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    seen_series: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # arbitrary comments are legal; HELP/TYPE must be well-formed
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise PromParseError(f"line {lineno}: malformed {parts[1]} line")
                continue
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise PromParseError(f"line {lineno}: bad metric name {name!r}")
            if keyword == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    raise PromParseError(f"line {lineno}: bad metric type {kind!r}")
                if name in families:
                    raise PromParseError(f"line {lineno}: duplicate TYPE for {name}")
                families[name] = kind
            else:
                if helped.get(name):
                    raise PromParseError(f"line {lineno}: duplicate HELP for {name}")
                helped[name] = True
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$", line)
        if not match:
            raise PromParseError(f"line {lineno}: unparseable sample: {line!r}")
        sample_name, _, raw_labels, raw_value = match.groups()
        family = _family_of(sample_name, families)
        if family is None:
            raise PromParseError(
                f"line {lineno}: sample {sample_name!r} has no preceding TYPE"
            )
        labels = _parse_labels(raw_labels, lineno) if raw_labels else {}
        for label_name in labels:
            if not _LABEL_RE.match(label_name):
                raise PromParseError(
                    f"line {lineno}: bad label name {label_name!r}"
                )
        try:
            value = float(raw_value)
        except ValueError:
            raise PromParseError(
                f"line {lineno}: bad sample value {raw_value!r}"
            ) from None
        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen_series:
            raise PromParseError(f"line {lineno}: duplicate series {series!r}")
        seen_series.add(series)
        samples.append((sample_name, labels, value))
    return {"families": families, "samples": samples}


class MetricsHTTPServer:
    """A stdlib scrape endpoint serving ``GET /metrics``.

    *supplier* is called per request and must return the exposition
    text (so scrapes always see current state).  Binds to an ephemeral
    port by default; read :attr:`port` after construction.  Runs the
    serve loop in a daemon thread: :meth:`start` / :meth:`stop`, or use
    it as a context manager.
    """

    def __init__(
        self,
        supplier: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.supplier = supplier
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = outer.supplier().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrape traffic stays out of stderr

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with the default ephemeral 0)."""
        return self._server.server_address[1]

    def start(self) -> "MetricsHTTPServer":
        """Begin serving in a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the serve loop down and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
