"""Service-level objectives over the control-plane rollups.

An :class:`SLO` declares one promise the service makes to its tenants;
the :class:`SLOTracker` re-evaluates every declared objective each time
the control plane records a decision, computes a **burn rate** (how
fast the error budget is being spent relative to the objective), and
raises an ``slo-burn`` :class:`~repro.observability.alerts.Alert`
through the existing alert machinery when the burn crosses its
threshold.  Because those alerts are counted into the bus's
``monitor.alerts.*`` metrics, the stock
``compare-runs --budget-alerts`` regression gate catches SLO burns
with no extra wiring.

Three objective kinds (:data:`SLO_KINDS`):

``queue-wait``
    p95 control-plane admission wait (submit -> admit, simulated
    seconds) must stay at or below ``objective``;
    ``burn = p95 / objective``.
``success-rate``
    the fraction of finished runs that ended DONE must stay at or
    above ``objective``;
    ``burn = (1 - rate) / (1 - objective)`` — budget spent twice as
    fast as promised means burn 2.0.
``share-deviation``
    a tenant's share of decayed fair-share usage must not drift from
    its weight-entitled share by more than ``objective``;
    ``burn = |actual - entitled| / objective``.

Evaluation is deterministic (simulated time only) and incremental: the
tracker fires on the *transition* into breach and re-arms when the
objective recovers, so a persistently starved tenant produces one
alert, not one per scheduler tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observability.alerts import Alert
from repro.observability.bus import InstrumentationBus
from repro.observability.ops.rollup import ControlPlaneTelemetry, TenantRollup

__all__ = [
    "SLO_KINDS",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "default_slos",
    "parse_slo",
]

#: every objective kind the tracker can evaluate
SLO_KINDS: Tuple[str, ...] = ("queue-wait", "success-rate", "share-deviation")

#: observations needed before each kind may breach (avoids one-sample noise)
_DEFAULT_MIN_SAMPLES: Dict[str, int] = {
    "queue-wait": 5,
    "success-rate": 3,
    "share-deviation": 2,
}


@dataclass(frozen=True)
class SLO:
    """One declared objective.

    ``tenant=None`` means the objective applies to *every* tenant
    individually (one status row each); naming a tenant scopes it.
    """

    name: str
    kind: str
    objective: float
    burn_threshold: float = 2.0
    min_samples: int = 1
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {SLO_KINDS}"
            )
        if self.kind == "success-rate" and not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"success-rate objective must be in (0, 1), got {self.objective}"
            )
        if self.kind != "success-rate" and self.objective <= 0:
            raise ValueError(
                f"{self.kind} objective must be > 0, got {self.objective}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )


@dataclass(frozen=True)
class SLOStatus:
    """One objective evaluated for one tenant at one instant."""

    slo: str
    kind: str
    tenant: str
    value: float
    objective: float
    burn_rate: float
    samples: int
    breached: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "tenant": self.tenant,
            "value": round(self.value, 6),
            "objective": self.objective,
            "burn_rate": round(self.burn_rate, 6),
            "samples": self.samples,
            "breached": self.breached,
        }


def default_slos() -> List[SLO]:
    """The out-of-the-box objectives ``service --telemetry`` tracks."""
    return [
        SLO(name="queue-wait-p95", kind="queue-wait", objective=1800.0,
            min_samples=_DEFAULT_MIN_SAMPLES["queue-wait"]),
        SLO(name="run-success", kind="success-rate", objective=0.9,
            min_samples=_DEFAULT_MIN_SAMPLES["success-rate"]),
        SLO(name="fair-share", kind="share-deviation", objective=0.35,
            min_samples=_DEFAULT_MIN_SAMPLES["share-deviation"]),
    ]


def parse_slo(spec: str) -> SLO:
    """Parse a CLI objective: ``kind=value`` or ``kind=value:burn``.

    Examples: ``queue-wait=900``, ``success-rate=0.95:1.5``.
    """
    kind, sep, rest = spec.partition("=")
    kind = kind.strip()
    if not sep or not rest.strip():
        raise ValueError(
            f"bad SLO spec {spec!r}; expected kind=value[:burn_threshold]"
        )
    value, _, burn = rest.partition(":")
    try:
        objective = float(value)
        burn_threshold = float(burn) if burn.strip() else 2.0
    except ValueError:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected kind=value[:burn_threshold]"
        ) from None
    return SLO(
        name=f"{kind}-slo",
        kind=kind,
        objective=objective,
        burn_threshold=burn_threshold,
        min_samples=_DEFAULT_MIN_SAMPLES.get(kind, 1),
    )


class SLOTracker:
    """Incrementally evaluates objectives against live rollups.

    The service calls :meth:`update` after every audit event; the
    tracker walks each (SLO, tenant) pair, computes the burn rate, and
    emits exactly one ``slo-burn`` alert per *transition into breach*
    (re-armed when the pair recovers).  Alert emission mirrors
    :meth:`RunMonitor._emit <repro.observability.monitor.RunMonitor>`:
    sinks are invoked, and when a bus is attached the alert is counted
    in ``monitor.alerts.total`` / ``monitor.alerts.slo-burn`` and
    recorded as an instant ``alert.slo-burn`` span — which is what
    lets ``compare-runs --budget-alerts`` gate SLO burns.
    """

    def __init__(
        self,
        slos: Optional[List[SLO]] = None,
        telemetry: Optional[ControlPlaneTelemetry] = None,
        bus: Optional[InstrumentationBus] = None,
        alert_sinks: Optional[List[Callable[[Alert], None]]] = None,
    ) -> None:
        self.slos: List[SLO] = list(default_slos() if slos is None else slos)
        self.telemetry = telemetry if telemetry is not None else ControlPlaneTelemetry()
        self.bus = bus
        self.alert_sinks: List[Callable[[Alert], None]] = list(alert_sinks or [])
        #: every slo-burn alert raised, emission order
        self.alerts: List[Alert] = []
        self._alert_sequence = 0
        #: (slo name, tenant) pairs currently in breach (dedup state)
        self._burning: Dict[Tuple[str, str], bool] = {}

    # -- evaluation ------------------------------------------------------
    def _entitled_share(self, rollup: TenantRollup) -> float:
        total_weight = sum(r.weight for r in self.telemetry.tenants.values())
        return rollup.weight / total_weight if total_weight > 0 else 0.0

    def _actual_share(self, rollup: TenantRollup) -> float:
        total_usage = sum(r.usage for r in self.telemetry.tenants.values())
        return rollup.usage / total_usage if total_usage > 0 else 0.0

    def _evaluate(self, slo: SLO, rollup: TenantRollup) -> Optional[SLOStatus]:
        if slo.kind == "queue-wait":
            samples = len(rollup.admission_waits)
            value = rollup.queue_wait_p95()
            burn = value / slo.objective
        elif slo.kind == "success-rate":
            samples = rollup.finished
            rate = rollup.success_rate
            if rate is None:
                return None
            value = rate
            burn = (1.0 - rate) / (1.0 - slo.objective)
        else:  # share-deviation
            # summed per-tenant (not totals()): the offline CLI path
            # reconstructs tenant rollups without the global one
            samples = sum(r.finished for r in self.telemetry.tenants.values())
            value = abs(self._actual_share(rollup) - self._entitled_share(rollup))
            burn = value / slo.objective
        breached = samples >= slo.min_samples and burn >= slo.burn_threshold
        return SLOStatus(
            slo=slo.name,
            kind=slo.kind,
            tenant=rollup.tenant,
            value=value,
            objective=slo.objective,
            burn_rate=burn,
            samples=samples,
            breached=breached,
        )

    def statuses(self) -> List[SLOStatus]:
        """Every (SLO, tenant) pair evaluated now, declaration order."""
        out: List[SLOStatus] = []
        for slo in self.slos:
            if slo.tenant is not None:
                names = [slo.tenant] if slo.tenant in self.telemetry.tenants else []
            else:
                names = sorted(self.telemetry.tenants)
            for name in names:
                if name == ControlPlaneTelemetry.UNTAGGED:
                    continue
                status = self._evaluate(slo, self.telemetry.tenant(name))
                if status is not None:
                    out.append(status)
        return out

    def update(self, time: float) -> List[Alert]:
        """Re-evaluate everything; alert on transitions into breach."""
        fired: List[Alert] = []
        for status in self.statuses():
            key = (status.slo, status.tenant)
            was_burning = self._burning.get(key, False)
            self._burning[key] = status.breached
            if status.breached and not was_burning:
                fired.append(self._emit(status, time))
        return fired

    # -- alert emission (mirrors RunMonitor._emit) -----------------------
    def _emit(self, status: SLOStatus, time: float) -> Alert:
        severity = (
            "critical"
            if status.burn_rate >= 2.0 * self._threshold(status.slo)
            else "warning"
        )
        message = (
            f"SLO {status.slo} burning for tenant {status.tenant}: "
            f"{status.kind}={status.value:.3f} vs objective "
            f"{status.objective:g} (burn {status.burn_rate:.2f}x)"
        )
        alert = Alert(
            kind="slo-burn",
            time=time,
            subject=f"{status.slo}/{status.tenant}",
            scope="service",
            severity=severity,
            message=message,
            sequence=self._alert_sequence,
            attributes=status.to_dict(),
        )
        self._alert_sequence += 1
        self.alerts.append(alert)
        for sink in self.alert_sinks:
            sink(alert)
        bus = self.bus
        if bus is not None:
            bus.metrics.counter("monitor.alerts.total").inc()
            bus.metrics.counter("monitor.alerts.slo-burn").inc()
            bus.record(
                "alert.slo-burn",
                "alert",
                time,
                time,
                parent=bus.run_span,
                status=severity,
                subject=alert.subject,
                scope=alert.scope,
                message=message,
                sequence=alert.sequence,
                **alert.attributes,
            )
        return alert

    def _threshold(self, slo_name: str) -> float:
        for slo in self.slos:
            if slo.name == slo_name:
                return slo.burn_threshold
        return 2.0
