"""Durability reporting: what the data-plane chaos did to a run.

One :class:`DurabilityReport` summarizes a (best-effort) enactment on a
fault-injected testbed: how many items survived, what the repair daemon
moved, how often transfers failed and retried, which replicas died, and
the chaos alerts the monitor raised.  The text rendering round-trips
through :func:`parse_durability_report` — a *strict* parser, so CI can
gate on the report format never silently drifting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "DurabilityReport",
    "DurabilityReportError",
    "build_durability_report",
    "format_durability_report",
    "parse_durability_report",
]

#: the chaos alert kinds a durability report accounts for, display order
CHAOS_ALERT_KINDS = ("se-outage", "replica-corruption", "transfer-storm")


class DurabilityReportError(ValueError):
    """A durability report that does not parse (or is internally wrong)."""


@dataclass(frozen=True)
class DurabilityReport:
    """The durability story of one run, in integers."""

    expected_items: int
    delivered_items: int
    lost_items: int
    repair_transfers: int
    repair_bytes: int
    transfer_failures: int
    transfer_retries: int
    outage_waits: int
    replicas_lost: int
    replicas_quarantined: int
    se_outage_windows: int
    alerts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delivered_items + self.lost_items != self.expected_items:
            raise DurabilityReportError(
                f"delivered ({self.delivered_items}) + lost ({self.lost_items}) "
                f"must equal expected ({self.expected_items})"
            )
        for kind in self.alerts:
            if kind not in CHAOS_ALERT_KINDS:
                raise DurabilityReportError(
                    f"unknown chaos alert kind {kind!r}; "
                    f"expected one of {CHAOS_ALERT_KINDS}"
                )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (what the CLI can emit as JSON)."""
        return {
            "expected_items": self.expected_items,
            "delivered_items": self.delivered_items,
            "lost_items": self.lost_items,
            "repair_transfers": self.repair_transfers,
            "repair_bytes": self.repair_bytes,
            "transfer_failures": self.transfer_failures,
            "transfer_retries": self.transfer_retries,
            "outage_waits": self.outage_waits,
            "replicas_lost": self.replicas_lost,
            "replicas_quarantined": self.replicas_quarantined,
            "se_outage_windows": self.se_outage_windows,
            "alerts": dict(self.alerts),
        }


def build_durability_report(
    result,
    n_items: int,
    counters: Optional[Mapping[str, float]] = None,
) -> DurabilityReport:
    """Assemble a report from an enactment result and metric counters.

    *result* is an :class:`~repro.core.enactor.EnactmentResult`;
    *counters* defaults to the result's own metric counters.  Lost items
    are the union of the poisoned lineage over every input port.
    """
    if counters is None:
        counters = (
            dict(result.metrics.counters) if result.metrics is not None else {}
        )

    lost_items: set = set()
    for items in result.failures.poisoned_lineage().values():
        lost_items |= set(items)
    lost = len(lost_items)

    def count(key: str) -> int:
        return int(counters.get(key, 0))

    return DurabilityReport(
        expected_items=n_items,
        delivered_items=n_items - lost,
        lost_items=lost,
        repair_transfers=count("grid.repair.transfers"),
        repair_bytes=count("bytes.repair"),
        transfer_failures=count("grid.transfer.failures"),
        transfer_retries=count("grid.transfer.retries"),
        outage_waits=count("grid.transfer.outage_waits"),
        replicas_lost=count("grid.replicas.lost"),
        replicas_quarantined=count("grid.replicas.quarantined"),
        se_outage_windows=count("grid.se.outage_windows"),
        alerts={
            kind: count(f"monitor.alerts.{kind}") for kind in CHAOS_ALERT_KINDS
        },
    )


#: (display label, attribute name) rows of the text rendering, in order
_REPORT_ROWS = (
    ("items expected", "expected_items"),
    ("items delivered", "delivered_items"),
    ("items lost", "lost_items"),
    ("repair transfers", "repair_transfers"),
    ("repair bytes", "repair_bytes"),
    ("transfer failures", "transfer_failures"),
    ("transfer retries", "transfer_retries"),
    ("outage waits", "outage_waits"),
    ("replicas lost", "replicas_lost"),
    ("replicas quarantined", "replicas_quarantined"),
    ("SE outage windows", "se_outage_windows"),
)

_HEADER = "Durability report"
_LINE = re.compile(r"^(?P<label>[A-Za-z][A-Za-z -]*?)\s*:\s*(?P<value>\d+)$")


def format_durability_report(report: DurabilityReport) -> str:
    """Render the report as the fixed-format text the strict parser eats."""
    labels = [label for label, _ in _REPORT_ROWS] + [
        f"alerts {kind}" for kind in CHAOS_ALERT_KINDS
    ]
    width = max(len(label) for label in labels)
    lines = [_HEADER, "=" * len(_HEADER)]
    for label, attr in _REPORT_ROWS:
        lines.append(f"{label:<{width}} : {getattr(report, attr)}")
    for kind in CHAOS_ALERT_KINDS:
        lines.append(f"{'alerts ' + kind:<{width}} : {report.alerts.get(kind, 0)}")
    return "\n".join(lines)


def parse_durability_report(text: str) -> DurabilityReport:
    """Strictly parse :func:`format_durability_report` output.

    Raises :class:`DurabilityReportError` on a missing header, a
    malformed or unknown line, or a missing field — CI pipes the CLI
    output through this to catch format drift the moment it happens.
    """
    lines = [line.rstrip() for line in text.strip().splitlines() if line.strip()]
    if len(lines) < 2 or lines[0] != _HEADER or set(lines[1]) != {"="}:
        raise DurabilityReportError("missing 'Durability report' header")
    values: Dict[str, int] = {}
    for lineno, line in enumerate(lines[2:], start=3):
        match = _LINE.match(line.strip())
        if match is None:
            raise DurabilityReportError(f"line {lineno} is malformed: {line!r}")
        values[match.group("label").strip()] = int(match.group("value"))

    by_label = dict(_REPORT_ROWS)
    kwargs: Dict[str, int] = {}
    for label, attr in _REPORT_ROWS:
        if label not in values:
            raise DurabilityReportError(f"missing field {label!r}")
        kwargs[attr] = values.pop(label)
    alerts: Dict[str, int] = {}
    for kind in CHAOS_ALERT_KINDS:
        label = f"alerts {kind}"
        if label not in values:
            raise DurabilityReportError(f"missing field {label!r}")
        alerts[kind] = values.pop(label)
    if values:
        unknown = ", ".join(sorted(values))
        raise DurabilityReportError(f"unknown field(s): {unknown}")
    assert by_label  # silence linters: mapping kept for documentation
    return DurabilityReport(alerts=alerts, **kwargs)
