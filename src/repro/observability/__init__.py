"""Span-based instrumentation across enactor, grid and cache.

The reproduction's measurement substrate: everything the paper's
analysis *reads* — job overhead, queue wait, the y-intercept/slope
decomposition of Section 5.1 — becomes first-class, correlated
telemetry instead of numbers mined post-hoc from scattered records.

Pieces (all dependency-free, all in simulated time):

* :mod:`~repro.observability.spans` — the :class:`Span` model: run →
  service invocation → grid job → job phases (submit / schedule /
  queue / run / stage-in / stage-out), retry attempts and cache
  lookups, correlated by trace/parent ids tied to token lineage;
* :mod:`~repro.observability.bus` — the pluggable
  :class:`InstrumentationBus` with an in-memory collector, a JSONL
  exporter, and a Chrome trace-event exporter (``chrome://tracing`` /
  Perfetto load the output directly);
* :mod:`~repro.observability.metrics` — the
  :class:`MetricsRegistry` of counters / gauges / histograms whose
  per-run snapshot rides on ``EnactmentResult.metrics``;
* :mod:`~repro.observability.drift` — the live model-drift reporter
  comparing each run against the Section 3.5 equations (1)-(4) and
  emitting y-intercept/slope ratio estimates;
* :mod:`~repro.observability.logbridge` — module-level loggers for the
  library, a stdout channel for the CLI, and a subscriber that narrates
  spans onto :mod:`logging`;
* :mod:`~repro.observability.critical_path` — the **observed**
  critical path reconstructed from one run's span tree: the gating
  chain of invocations whose phase-attributed durations sum exactly to
  the run makespan, plus a diff against the static
  :func:`repro.workflow.analysis.critical_path` prediction;
* :mod:`~repro.observability.timeline` — per-CE utilization and
  queue-depth step functions and a dependency-free ASCII Gantt
  renderer;
* :mod:`~repro.observability.runstore` — the append-only run-history
  store (one JSON summary per run) and the budgeted
  :func:`~repro.observability.runstore.compare` regression gate;
* :mod:`~repro.observability.health` — rolling robust statistics
  (median/MAD with a zero-variance guard) scoring every computing
  element online: straggler and blackhole detection;
* :mod:`~repro.observability.alerts` — typed :class:`Alert` records,
  threshold configuration and the streaming JSONL alert writer;
* :mod:`~repro.observability.failures` — failure-report rows rebuilt
  from an exported span stream (``kind="failed"`` / ``"poisoned"``
  invocation spans joined with per-attempt grid spans), the post-mortem
  side of the enactor's live :class:`~repro.core.failures.FailureReport`;
* :mod:`~repro.observability.monitor` — the live :class:`RunMonitor`
  subscriber: per-service progress/ETA blending the Section 3.5 model
  with the observed rate, per-CE health, the alert pipeline, and the
  health-provider hook the broker uses to demote flagged CEs;
* :mod:`~repro.observability.profiling` — the toggleable hot-path
  profiler: nested scope accounting over an injectable clock, churn
  counters, flamegraph export (collapsed / speedscope) and the
  per-component ``compare-runs`` regression attribution;
* :mod:`~repro.observability.dataflow` — the data plane's ledger: the
  :class:`DataFlowCollector` accounting every transfer as a typed,
  attributed record (purpose, owning service/tenant/run), per-link
  bandwidth timelines and sparklines, the deterministic DOT data-flow
  graph with strict parser, and the always-on byte counters
  (``bytes.enactor_moved`` vs ``bytes.peer_moved``,
  ``bytes.intermediate_saved_by_grouping``) behind the
  ``compare-runs --budget-bytes`` gate.

Usage::

    from repro.observability import InstrumentationBus, JsonlExporter

    bus = InstrumentationBus()
    collector = bus.collector()
    bus.subscribe(JsonlExporter("run.jsonl"))
    result = MoteurEnactor(engine, wf, config, grid=grid,
                           instrumentation=bus).run(dataset)
    result.metrics.counter("grid.jobs.submitted")   # per-run snapshot
    # then: python -m repro.experiments report-trace run.jsonl
"""

from __future__ import annotations

from repro.observability.alerts import (
    ALERT_KINDS,
    Alert,
    AlertError,
    AlertRules,
    JsonlAlertWriter,
    alert_sort_key,
    alerts_from_jsonl,
    alerts_to_jsonl,
)
from repro.observability.bus import (
    ChromeTraceExporter,
    InMemoryCollector,
    InstrumentationBus,
    JsonlExporter,
    Subscriber,
    chrome_trace_json,
)
from repro.observability.dataflow import (
    TRANSFER_PURPOSES,
    DataFlowCollector,
    DotParseError,
    TransferRecord,
    bandwidth_profile,
    dataflow_dot,
    format_dataflow_report,
    link_activity,
    parse_dot,
    sample_profile,
    sparkline,
)
from repro.observability.critical_path import (
    CriticalPathDiff,
    CriticalPathError,
    CriticalPathStep,
    ObservedCriticalPath,
    diff_against_static,
    observed_critical_path,
)
from repro.observability.drift import (
    DriftError,
    DriftReport,
    drift_report,
    drift_report_from_trace,
    overhead_by_job_from_records,
    overhead_by_job_from_spans,
    policy_key,
    time_matrix,
)
from repro.observability.durability import (
    DurabilityReport,
    DurabilityReportError,
    build_durability_report,
    format_durability_report,
    parse_durability_report,
)
from repro.observability.failures import failure_rows_from_spans, failure_summary
from repro.observability.health import (
    CEHealth,
    FleetHealth,
    HealthThresholds,
    RobustStats,
    RollingSample,
    robust_stats,
    robust_z,
)
from repro.observability.logbridge import LoggingSubscriber, cli_logger, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.observability.monitor import HealthProvider, RunMonitor, ServiceProgress
from repro.observability.profiling import (
    Profile,
    Profiler,
    ProfilerError,
    TickClock,
    wall_clock,
)
from repro.observability.runstore import (
    Budgets,
    Regression,
    RunComparison,
    RunStore,
    RunStoreError,
    RunSummary,
    compare,
    summarize_run,
)
from repro.observability.spans import Span, SpanError, spans_from_jsonl, spans_to_jsonl
from repro.observability.timeline import (
    ce_queue_depth,
    ce_utilization,
    render_gantt,
    step_function,
    utilization_table,
)

__all__ = [
    "Span",
    "SpanError",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "Subscriber",
    "InstrumentationBus",
    "InMemoryCollector",
    "JsonlExporter",
    "ChromeTraceExporter",
    "chrome_trace_json",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DriftError",
    "DriftReport",
    "drift_report",
    "drift_report_from_trace",
    "overhead_by_job_from_records",
    "overhead_by_job_from_spans",
    "policy_key",
    "time_matrix",
    "LoggingSubscriber",
    "cli_logger",
    "get_logger",
    "CriticalPathError",
    "CriticalPathStep",
    "CriticalPathDiff",
    "ObservedCriticalPath",
    "observed_critical_path",
    "diff_against_static",
    "step_function",
    "ce_utilization",
    "ce_queue_depth",
    "utilization_table",
    "render_gantt",
    "RunStoreError",
    "RunSummary",
    "RunStore",
    "Budgets",
    "Regression",
    "RunComparison",
    "summarize_run",
    "compare",
    "RobustStats",
    "robust_stats",
    "robust_z",
    "RollingSample",
    "HealthThresholds",
    "CEHealth",
    "FleetHealth",
    "ALERT_KINDS",
    "Alert",
    "AlertError",
    "AlertRules",
    "JsonlAlertWriter",
    "alert_sort_key",
    "alerts_to_jsonl",
    "alerts_from_jsonl",
    "HealthProvider",
    "RunMonitor",
    "ServiceProgress",
    "failure_rows_from_spans",
    "failure_summary",
    "DurabilityReport",
    "DurabilityReportError",
    "build_durability_report",
    "format_durability_report",
    "parse_durability_report",
    "Profile",
    "Profiler",
    "ProfilerError",
    "TickClock",
    "wall_clock",
    "TRANSFER_PURPOSES",
    "TransferRecord",
    "DataFlowCollector",
    "dataflow_dot",
    "parse_dot",
    "DotParseError",
    "link_activity",
    "bandwidth_profile",
    "sample_profile",
    "sparkline",
    "format_dataflow_report",
]
