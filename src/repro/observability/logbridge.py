"""Bridge between the instrumentation layer and stdlib :mod:`logging`.

Three pieces:

* :func:`get_logger` — the module-level logger factory library code
  uses instead of ``print``.  The ``repro`` root logger carries a
  :class:`logging.NullHandler`, so importing the library never
  configures handlers or emits anything — the stdlib convention for
  well-behaved libraries.  Applications opt in with
  ``logging.basicConfig`` (or any handler of their choosing).
* :func:`cli_logger` — the CLI's user-facing output channel: a logger
  whose handler writes bare messages to the *current* ``sys.stdout``
  (resolved at emit time, so pytest's capture and shell redirection
  both work).  Routing the CLI's diagnostics through here keeps one
  code path for "text a human reads" while leaving library users'
  logging untouched.
* :class:`LoggingSubscriber` — an instrumentation-bus subscriber that
  narrates finished spans onto a logger, which is how a span stream
  shows up in an application's existing log pipeline.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.observability.bus import Subscriber
from repro.observability.spans import Span

__all__ = ["get_logger", "cli_logger", "LoggingSubscriber"]

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """A library logger under the ``repro`` namespace, print-free by default.

    ``name`` is conventionally ``__name__`` of the calling module; names
    outside the ``repro`` hierarchy are nested under it so one root
    switch controls the whole library.
    """
    root = logging.getLogger(_ROOT)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


class _CurrentStdoutHandler(logging.Handler):
    """Writes bare messages to whatever ``sys.stdout`` is *right now*.

    A plain ``StreamHandler(sys.stdout)`` captures the stream object at
    construction time, which breaks under pytest's ``capsys`` and any
    later redirection; resolving the stream per record keeps the CLI's
    behaviour identical to the ``print`` calls it replaces.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stdout.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging's own policy
            self.handleError(record)


def cli_logger(name: str = "repro.cli") -> logging.Logger:
    """The user-facing CLI channel: INFO to stdout, message only.

    Idempotent — repeated calls reuse the configured logger — and
    isolated: ``propagate`` is off so CLI output never duplicates into
    an application's root handlers.
    """
    logger = logging.getLogger(name)
    if not any(isinstance(h, _CurrentStdoutHandler) for h in logger.handlers):
        handler = _CurrentStdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


class LoggingSubscriber(Subscriber):
    """Narrates finished spans onto a :mod:`logging` logger.

    One line per span: simulated end time, name, duration, status, and
    the few attributes that identify the work.  DEBUG by default —
    span streams are chatty — with errors promoted to WARNING.
    """

    #: attribute keys worth echoing inline, in display order
    _ECHO = ("processor", "label", "job_id", "name", "ce", "attempt", "kind")

    def __init__(
        self, logger: Optional[logging.Logger] = None, level: int = logging.DEBUG
    ) -> None:
        self.logger = logger if logger is not None else get_logger("repro.observability.spans")
        self.level = level

    def on_end(self, span: Span) -> None:
        level = logging.WARNING if span.status == "error" else self.level
        if not self.logger.isEnabledFor(level):
            return
        details = " ".join(
            f"{key}={span.attributes[key]}"
            for key in self._ECHO
            if key in span.attributes
        )
        self.logger.log(
            level,
            "[t=%.3fs] %s %s dur=%.3fs status=%s%s",
            span.end if span.end is not None else span.start,
            span.name,
            span.span_id,
            span.duration,
            span.status,
            f" {details}" if details else "",
        )
