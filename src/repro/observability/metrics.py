"""The metrics registry: counters, gauges and histograms in one place.

Spans answer "what happened when"; metrics answer "how much, in total".
The registry is the numeric side of the instrumentation bus: the
enactor counts invocations and cache outcomes, the middleware feeds job
overhead / queue-wait / makespan histograms and retry counters, the
transfer layer accumulates staged bytes, and the enactor's concurrency
gauge tracks the in-flight high-water mark the paper's H2 hypothesis
(unbounded data parallelism) cares about.

Snapshots are immutable and support ``since(baseline)`` — the enactor
takes a baseline at ``enact()`` and attaches the delta to its
:class:`~repro.core.enactor.EnactmentResult`, so a registry shared
across many runs still yields clean per-run numbers (the same protocol
the cache stats use).

Thread safety: the enactment service runs a background scheduler
thread while API threads submit and cancel, and several concurrent
enactors share one registry — so every mutation (``inc`` / ``set`` /
``add`` / ``observe``), create-on-first-use lookup, and ``snapshot()``
is guarded by a lock.  Metrics created through a registry share the
registry's lock (a snapshot is then a consistent cut); standalone
metrics get their own.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
]


class Counter:
    """A monotonically increasing count (events, bytes, retries...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time level with a high-water mark (e.g. concurrency)."""

    __slots__ = ("name", "value", "high_water", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        """Set the current level."""
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value

    def add(self, delta: float) -> None:
        """Adjust the current level by *delta* (one atomic read-modify-write)."""
        with self._lock:
            self.value += delta
            if self.value > self.high_water:
                self.high_water = self.value


class Histogram:
    """A distribution of observations (job overheads, durations...).

    Observations are kept in full — simulation-scale cardinalities are
    thousands, not billions — which is what lets snapshots compute exact
    per-run deltas and percentiles without pre-binning.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._values.append(value)

    @property
    def count(self) -> int:
        """Number of observations so far."""
        with self._lock:
            return len(self._values)

    def values(self) -> Tuple[float, ...]:
        """All observations, recording order."""
        with self._lock:
            return tuple(self._values)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen view of a histogram (full values, derived stats)."""

    values: Tuple[float, ...] = ()

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (nearest-rank; 0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def since(self, baseline: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations recorded after *baseline* was taken.

        Histograms are append-only, so the delta is a suffix slice.
        """
        return HistogramSnapshot(values=self.values[baseline.count:])


@dataclass(frozen=True)
class MetricsSnapshot:
    """All registry values at one instant (or the delta between two)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: gauge name -> high-water mark over the covered window
    gauge_peaks: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        """Counter value (0.0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        """Gauge level (0.0 if never set)."""
        return self.gauges.get(name, 0.0)

    def gauge_peak(self, name: str) -> float:
        """Gauge high-water mark (0.0 if never set)."""
        return self.gauge_peaks.get(name, 0.0)

    def histogram(self, name: str) -> HistogramSnapshot:
        """Histogram view (empty if never observed)."""
        return self.histograms.get(name, HistogramSnapshot())

    def since(self, baseline: "MetricsSnapshot") -> "MetricsSnapshot":
        """Per-run view: what happened after *baseline* was taken.

        Counters subtract; histograms keep only post-baseline
        observations; gauges keep their current level and peak (levels
        are instantaneous, not cumulative, so subtraction would lie).
        """
        names = set(self.counters) | set(baseline.counters)
        counters = {
            name: self.counters.get(name, 0.0) - baseline.counters.get(name, 0.0)
            for name in names
        }
        histograms = {
            name: snap.since(baseline.histogram(name))
            for name, snap in self.histograms.items()
        }
        return MetricsSnapshot(
            counters={k: v for k, v in counters.items() if v != 0.0},
            gauges=dict(self.gauges),
            gauge_peaks=dict(self.gauge_peaks),
            histograms={k: v for k, v in histograms.items() if v.count},
        )

    def names(self) -> Tuple[str, ...]:
        """Every metric name present, sorted."""
        return tuple(sorted({*self.counters, *self.gauges, *self.histograms}))

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


class MetricsRegistry:
    """Create-on-first-use registry of named metrics.

    All metrics created through a registry share one re-entrant lock,
    so lookups, mutations and :meth:`snapshot` are mutually exclusive —
    a snapshot is a *consistent cut* even while a scheduler thread and
    N enactors keep incrementing.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, lock=self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, lock=self._lock)
            return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created on first use)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, lock=self._lock)
            return metric

    def snapshot(self) -> MetricsSnapshot:
        """Frozen view of everything, right now (a consistent cut)."""
        with self._lock:
            return MetricsSnapshot(
                counters={name: c.value for name, c in self._counters.items()},
                gauges={name: g.value for name, g in self._gauges.items()},
                gauge_peaks={name: g.high_water for name, g in self._gauges.items()},
                histograms={
                    name: HistogramSnapshot(values=h.values())
                    for name, h in self._histograms.items()
                },
            )
