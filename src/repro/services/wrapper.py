"""The generic wrapper service (Section 3.6).

One class turns any legacy code into a grid-aware service: it

1. takes an :class:`~repro.services.descriptor.ExecutableDescriptor`
   ("a generic descriptor of the executable command line") plus the
   invocation-time inputs,
2. dynamically composes the actual command line,
3. submits a single grid job that stages in the input data and the
   sandboxed files, runs the code, and registers the outputs, and
4. returns the outputs as :class:`~repro.services.base.GridData`.

"This generic service highly simplifies application development because
it is able to wrap any legacy code with a minimal effort" — here the
"legacy code" is a Python callable (`program`) standing in for the real
binary, with a compute-time model describing how long the binary runs.
The callable gives the simulation *real* data products; the compute
model gives it *realistic* durations.

The wrapper is also what makes job grouping possible: because the
enactor can read descriptors, it can compose the command lines of
several codes into one job — see :mod:`repro.services.composite`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.grid.job import JobDescription
from repro.grid.middleware import Grid
from repro.grid.storage import LogicalFile
from repro.services.base import GridData, InvocationRecord, Service, ServiceError
from repro.services.descriptor import ExecutableDescriptor
from repro.sim.engine import Engine
from repro.util.distributions import Distribution, as_distribution
from repro.util.units import KIBIBYTE, MEBIBYTE

__all__ = ["GenericWrapperService", "PreparedJob"]

#: A program is the in-simulation stand-in for the wrapped binary:
#: it maps input values to a mapping of output values.
Program = Callable[..., Mapping[str, Any]]


@dataclass
class PreparedJob:
    """A composed job plus the plan to decode its outputs."""

    description: JobDescription
    #: output port -> the LogicalFile minted for it (None if value-only)
    minted: Dict[str, Optional[LogicalFile]]


class GenericWrapperService(Service):
    """Wrap a descriptor + program into a grid-submitting service.

    Parameters
    ----------
    grid:
        The infrastructure jobs go to.
    descriptor:
        Command-line and data-access description of the wrapped code.
    program:
        Optional Python stand-in executed at job completion; receives
        input *values* by port name, returns output values by port
        name.  Omit it for pure timing studies.
    compute_time:
        Seconds (or a Distribution) of payload execution on a
        reference-speed worker.
    output_sizes:
        Port name -> produced file size in bytes (default 1 MiB).
    """

    def __init__(
        self,
        engine: Engine,
        grid: Grid,
        descriptor: ExecutableDescriptor,
        program: Optional[Program] = None,
        compute_time: "float | Distribution" = 0.0,
        output_sizes: Optional[Mapping[str, float]] = None,
        owner: str = "user",
        sandbox_size: float = 64 * KIBIBYTE,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> None:
        super().__init__(
            engine, descriptor.name, descriptor.input_ports, descriptor.output_ports
        )
        self.grid = grid
        self.descriptor = descriptor
        self.program = program
        self.compute_model = as_distribution(compute_time)
        self.output_sizes = dict(output_sizes or {})
        self.owner = owner
        #: extra accounting tags stamped on every job this service
        #: submits (e.g. tenant / run id in multi-tenant enactments)
        self.tags: Dict[str, Any] = dict(tags or {})
        # Publish sandboxed files once: they are fetched by every job
        # (Figure 8 lists three of them for CrestLines.pl).
        self.sandbox_gfns: Tuple[str, ...] = tuple(
            self._publish_sandbox(sb.value, sandbox_size) for sb in descriptor.sandboxes
        )
        self._counter = 0

    def _publish_sandbox(self, value: str, size: float) -> str:
        gfn = f"gfn://sandbox/{self.name}/{value}"
        if not self.grid.catalog.knows(gfn):
            self.grid.add_input_file(LogicalFile(gfn, size=size))
        return gfn

    def output_size(self, port: str) -> float:
        """Declared size of the file produced on *port*."""
        return float(self.output_sizes.get(port, 1 * MEBIBYTE))

    # -- job composition ---------------------------------------------------
    def prepare_job(self, inputs: Mapping[str, GridData], label: Optional[str] = None) -> PreparedJob:
        """Compose the command line and job description for one invocation.

        Exposed separately from :meth:`invoke` because the grouping
        machinery reuses it to build virtual composite jobs.
        """
        self._counter += 1
        label = label or f"{self.name}#{self._counter}"

        bindings: Dict[str, str] = {}
        staged: list[str] = list(self.sandbox_gfns)
        values: Dict[str, Any] = {}
        for spec in self.descriptor.inputs:
            datum = inputs.get(spec.name)
            if datum is None:
                raise ServiceError(f"{self.name}: missing input {spec.name!r}")
            values[spec.name] = datum.value
            if spec.is_file and datum.file is not None:
                bindings[spec.name] = datum.file.gfn
                staged.append(datum.file.gfn)
            else:
                bindings[spec.name] = datum.command_line_token()

        minted: Dict[str, Optional[LogicalFile]] = {}
        produced: list[LogicalFile] = []
        for spec in self.descriptor.outputs:
            file = LogicalFile.fresh(f"{self.name}/{spec.name}", size=self.output_size(spec.name))
            minted[spec.name] = file
            produced.append(file)
            bindings[spec.name] = file.gfn

        command_line = self.descriptor.command_line(bindings)
        program = self.program
        output_ports = self.output_ports

        def payload() -> Dict[str, Any]:
            if program is None:
                return {port: None for port in output_ports}
            result = program(**values)
            if not isinstance(result, Mapping):
                raise ServiceError(
                    f"{self.name}: program must return a mapping, got {type(result).__name__}"
                )
            return {port: result.get(port) for port in output_ports}

        description = JobDescription(
            name=label,
            command_line=command_line,
            compute_time=self.compute_model,
            input_files=tuple(staged),
            output_files=tuple(produced),
            payload=payload,
            owner=self.owner,
            tags={**self.tags, "service": self.name},
        )
        return PreparedJob(description=description, minted=minted)

    def decode_outputs(self, result: Any, minted: Mapping[str, Optional[LogicalFile]]) -> Dict[str, GridData]:
        """Pair payload values with the minted grid files."""
        values = result if isinstance(result, Mapping) else {}
        return {
            port: GridData(value=values.get(port), file=minted.get(port))
            for port in self.output_ports
        }

    def cache_fingerprint(self) -> str:
        """Descriptor-derived identity: the Figure 8 document fully
        determines the composed command line, so its serialized form
        (plus the declared output sizes) is the computation's identity."""
        from repro.services.descriptor import descriptor_to_xml

        digest = hashlib.sha256(
            descriptor_to_xml(self.descriptor).encode("utf-8")
        ).hexdigest()
        sizes = ",".join(f"{port}={self.output_size(port)}" for port in self.output_ports)
        return f"wrapper:{self.name}:{digest}:sizes={sizes}"

    # -- Service contract ----------------------------------------------------
    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        prepared = self.prepare_job(inputs)
        handle = self.grid.submit(prepared.description)
        job_record = yield handle.completion
        record.job_ids = (job_record.job_id,)
        return self.decode_outputs(job_record.result, prepared.minted)
