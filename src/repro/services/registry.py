"""A minimal service registry.

Stand-in for the semantic service-discovery layer the paper cites
(Feta, [17]): enough structure for workflows to resolve services by
name and for users to search by port signature, without pretending to
do ontology reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.services.base import Service

__all__ = ["ServiceRegistry", "ServiceEntry"]


@dataclass
class ServiceEntry:
    """A registered service plus free-form metadata."""

    service: Service
    description: str = ""
    tags: Mapping[str, str] = field(default_factory=dict)


class ServiceRegistry:
    """Name-indexed catalog of available application services."""

    def __init__(self) -> None:
        self._entries: Dict[str, ServiceEntry] = {}

    def register(
        self,
        service: Service,
        description: str = "",
        tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Add *service*; re-registering the same name is an error."""
        if service.name in self._entries:
            raise ValueError(f"service {service.name!r} already registered")
        self._entries[service.name] = ServiceEntry(
            service=service, description=description, tags=dict(tags or {})
        )

    def unregister(self, name: str) -> None:
        """Remove a service by name (KeyError if absent)."""
        del self._entries[name]

    def resolve(self, name: str) -> Service:
        """Return the service registered under *name*."""
        try:
            return self._entries[name].service
        except KeyError:
            raise KeyError(f"no service named {name!r} in registry") from None

    def find_by_ports(
        self,
        input_ports: Optional[Iterable[str]] = None,
        output_ports: Optional[Iterable[str]] = None,
    ) -> List[Service]:
        """Services whose signature contains the requested port names."""
        needed_in = set(input_ports or ())
        needed_out = set(output_ports or ())
        found = []
        for name in sorted(self._entries):
            service = self._entries[name].service
            if needed_in <= set(service.input_ports) and needed_out <= set(service.output_ports):
                found.append(service)
        return found

    def find_by_tag(self, key: str, value: Optional[str] = None) -> List[Service]:
        """Services carrying a metadata tag (optionally with a value)."""
        found = []
        for name in sorted(self._entries):
            entry = self._entries[name]
            if key in entry.tags and (value is None or entry.tags[key] == value):
                found.append(entry.service)
        return found

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
