"""Intra-service job batching: the paper's stated future work.

Section 5.4: "In the future, we plan to address this problem by
grouping jobs of a single service, thus finding a trade-off between
data parallelism and the system's overhead."

:class:`BatchingService` implements that trade-off as a transparent
service combinator: it fronts a
:class:`~repro.services.wrapper.GenericWrapperService` and coalesces up
to ``batch_size`` concurrent invocations into **one** grid job whose
command line chains the member command lines — the intra-service
analogue of the inter-service grouping of Section 3.6.  Each caller
still gets its own outputs; what changes is that the batch pays the
submission/scheduling/queuing overhead once and serializes its members'
compute on one worker.

Flush policy: a batch is submitted when it reaches ``batch_size``
members, or — so that stream tails and slow producers cannot stall it
forever — ``max_wait`` simulated seconds after its first member arrived.

Choosing ``batch_size`` is exactly the optimization problem
`repro.model.probabilistic.GranularityModel` analyzes (benchmark E12):
k = 1 maximizes data parallelism but pays a max over many overhead
draws; large k serializes compute; heavy-tailed overheads put the
optimum in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.grid.job import JobDescription
from repro.services.base import GridData, InvocationRecord, Service, ServiceError
from repro.services.wrapper import GenericWrapperService, PreparedJob
from repro.sim.engine import Engine, Event
from repro.util.distributions import SumOf

__all__ = ["BatchingService"]


@dataclass
class _Batch:
    """One forming batch of invocations."""

    done: Event
    members: List[PreparedJob] = field(default_factory=list)
    closed: bool = False
    job_id: Optional[int] = None


class BatchingService(Service):
    """Coalesce invocations of one wrapped service into shared grid jobs."""

    def __init__(
        self,
        engine: Engine,
        inner: GenericWrapperService,
        batch_size: int,
        max_wait: Optional[float] = None,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(inner, GenericWrapperService):
            raise ServiceError(
                "only generic-wrapper services can batch (their job "
                f"composition is readable); got {type(inner).__name__}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_wait is not None and max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        super().__init__(
            engine,
            name or f"{inner.name}[x{batch_size}]",
            inner.input_ports,
            inner.output_ports,
        )
        self.inner = inner
        self.grid = inner.grid
        self.batch_size = batch_size
        self.max_wait = max_wait
        self._current: Optional[_Batch] = None
        self.batches_submitted = 0

    # -- Service contract -------------------------------------------------
    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        batch = self._current
        if batch is None or batch.closed:
            batch = _Batch(done=self.engine.event(name=f"batch:{self.name}"))
            self._current = batch
            if self.max_wait is not None:
                self.engine.process(self._flush_timer(batch), name=f"batch-timer:{self.name}")
        prepared = self.inner.prepare_job(inputs, label=f"{self.name}#{record.invocation_id}")
        index = len(batch.members)
        batch.members.append(prepared)
        if len(batch.members) >= self.batch_size:
            self._flush(batch)

        results = yield batch.done  # list of per-member payload results
        if batch.job_id is not None:
            record.job_ids = (batch.job_id,)
        return self.inner.decode_outputs(results[index], batch.members[index].minted)

    def flush(self) -> None:
        """Force-submit the forming batch (e.g. at stream end).

        Deferred by one scheduling round so that invocations issued
        before the flush — whose processes have not started yet — join
        the batch first.
        """
        self.engine.process(self._deferred_flush(), name=f"batch-flush:{self.name}")

    def _deferred_flush(self):
        if self._current is not None and not self._current.closed and self._current.members:
            self._flush(self._current)
        return
        yield  # pragma: no cover - marks this function as a generator

    # -- batch lifecycle ----------------------------------------------------
    def _flush_timer(self, batch: _Batch):
        yield self.engine.timeout(self.max_wait)
        if not batch.closed and batch.members:
            self._flush(batch)

    def _flush(self, batch: _Batch) -> None:
        batch.closed = True
        if self._current is batch:
            self._current = None
        self.batches_submitted += 1
        self.engine.process(self._run_batch(batch), name=f"batch-run:{self.name}")

    def _run_batch(self, batch: _Batch):
        members = batch.members
        command_line = " && ".join(m.description.command_line for m in members)
        staged: Tuple[str, ...] = tuple(
            dict.fromkeys(gfn for m in members for gfn in m.description.input_files)
        )
        produced = tuple(f for m in members for f in m.description.output_files)
        payloads = [m.description.payload for m in members]

        def payload() -> List[Any]:
            return [p() if p is not None else None for p in payloads]

        description = JobDescription(
            name=f"{self.name}#batch{self.batches_submitted}",
            command_line=command_line,
            compute_time=SumOf(
                [m.description.compute_distribution() for m in members]
            ),
            input_files=staged,
            output_files=produced,
            payload=payload,
            owner=self.inner.owner,
            tags={"service": self.name, "batched": True, "members": len(members)},
        )
        try:
            handle = self.grid.submit(description)
            job_record = yield handle.completion
        except Exception as exc:
            batch.done.fail(ServiceError(f"{self.name}: batch job failed: {exc}"))
            return
        batch.job_id = job_record.job_id
        batch.done.succeed(job_record.result)
