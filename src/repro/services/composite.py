"""Virtual grouped services (Section 3.6, Figure 7 bottom).

Grouping sequential services "breaks the hypothesis of all services
seen as black boxes whose internal logic is unknown": because every
grouped service is an instance of the generic wrapper, the enactor can
read their executable descriptors and "dynamically create a virtual
service, composing the command lines of the codes to be invoked, and
submitting a single job corresponding to this sequence of command lines
invocation."

Concretely a :class:`CompositeService` over stages ``S0 -> S1 -> ...``:

* pays the grid overhead (submission, brokering, queuing) **once**,
* stages in the union of external inputs and every stage's sandboxes
  **once**,
* keeps intermediate data **local to the worker node** — no transfer,
  no catalog registration (that is the "Output data transfer / Input
  data transfer" pair that disappears in Figure 7),
* executes for the **sum** of the stages' compute times, and
* registers only the outputs that are visible outside the group.

The composite still honours the standard service contract, so "the
workflow can still be executed by other enactors" — it is just another
Service with ports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.grid.job import JobDescription
from repro.grid.storage import LogicalFile
from repro.services.base import GridData, InvocationRecord, Service, ServiceError
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.util.distributions import SumOf

__all__ = ["CompositeService", "InternalLink"]

#: (consumer_stage_index, consumer_port) -> (producer_stage_index, producer_port)
InternalLink = Tuple[Tuple[int, str], Tuple[int, str]]


class CompositeService(Service):
    """A single-job virtual service over a chain of wrapped services.

    Parameters
    ----------
    stages:
        The wrapped services, in execution order.
    internal_links:
        Mapping ``(i, in_port) -> (j, out_port)`` with ``j < i``: stage
        *i*'s input is fed by stage *j*'s output inside the group.
        Every stage input not covered here becomes an external input of
        the composite; every stage output not consumed here (solely)
        becomes an external output.

    Port naming: a stage port keeps its bare name if it is unambiguous
    across the group, otherwise it is qualified as ``stage.port``.
    """

    def __init__(
        self,
        engine: Engine,
        stages: Sequence[GenericWrapperService],
        internal_links: Optional[Mapping[Tuple[int, str], Tuple[int, str]]] = None,
        name: Optional[str] = None,
    ) -> None:
        if not stages:
            raise ServiceError("a composite service needs at least one stage")
        for stage in stages:
            if not isinstance(stage, GenericWrapperService):
                raise ServiceError(
                    "only generic-wrapper services can be grouped (their "
                    f"descriptors are readable); got {type(stage).__name__}"
                )
        grids = {id(stage.grid) for stage in stages}
        if len(grids) != 1:
            raise ServiceError("grouped services must target the same grid")

        self.stages: List[GenericWrapperService] = list(stages)
        self.internal_links: Dict[Tuple[int, str], Tuple[int, str]] = dict(internal_links or {})
        self.grid = self.stages[0].grid

        for (ci, cport), (pj, pport) in self.internal_links.items():
            if not (0 <= pj < ci < len(self.stages)):
                raise ServiceError(
                    f"internal link ({ci},{cport}) <- ({pj},{pport}) must go "
                    "from an earlier stage to a later one"
                )
            if cport not in self.stages[ci].input_ports:
                raise ServiceError(f"stage {ci} has no input port {cport!r}")
            if pport not in self.stages[pj].output_ports:
                raise ServiceError(f"stage {pj} has no output port {pport!r}")

        # -- derive the exposed ports and their stage bindings -------------
        self._input_map: Dict[str, Tuple[int, str]] = {}
        self._output_map: Dict[str, Tuple[int, str]] = {}
        internally_consumed = set(self.internal_links.values())

        def exposed_name(kind: str, idx: int, port: str, taken: Dict[str, Tuple[int, str]]) -> str:
            # Bare name when unique among *exposed* ports of this kind.
            if port not in taken and not any(
                existing.endswith(f".{port}") for existing in taken
            ):
                return port
            return f"{self.stages[idx].name}.{port}"

        for idx, stage in enumerate(self.stages):
            for port in stage.input_ports:
                if (idx, port) in self.internal_links:
                    continue
                public = exposed_name("in", idx, port, self._input_map)
                if public in self._input_map:
                    public = f"{stage.name}.{port}"
                self._input_map[public] = (idx, port)
            for port in stage.output_ports:
                if (idx, port) in internally_consumed:
                    continue
                public = exposed_name("out", idx, port, self._output_map)
                if public in self._output_map:
                    public = f"{stage.name}.{port}"
                self._output_map[public] = (idx, port)

        composite_name = name or "+".join(stage.name for stage in self.stages)
        super().__init__(
            engine,
            composite_name,
            tuple(self._input_map),
            tuple(self._output_map),
        )

    # -- introspection -------------------------------------------------------
    def stage_port_for_input(self, public: str) -> Tuple[int, str]:
        """Which (stage, port) an exposed input feeds."""
        return self._input_map[public]

    def stage_port_for_output(self, public: str) -> Tuple[int, str]:
        """Which (stage, port) an exposed output comes from."""
        return self._output_map[public]

    def public_input_name(self, stage_index: int, port: str) -> str:
        """The exposed name of stage input ``(stage_index, port)``.

        Raises ``KeyError`` for internally-linked (non-exposed) inputs;
        the grouping machinery uses this to re-route workflow links.
        """
        for public, target in self._input_map.items():
            if target == (stage_index, port):
                return public
        raise KeyError(f"stage input ({stage_index}, {port!r}) is not exposed")

    def public_output_name(self, stage_index: int, port: str) -> str:
        """The exposed name of stage output ``(stage_index, port)``."""
        for public, source in self._output_map.items():
            if source == (stage_index, port):
                return public
        raise KeyError(f"stage output ({stage_index}, {port!r}) is not exposed")

    def cache_fingerprint(self) -> str:
        """Grouped services cache as **one** entry covering all stages.

        The identity is the ordered chain of stage fingerprints plus the
        internal wiring: change any stage's descriptor or re-route an
        internal link and every cached result of the group is invalidated
        at once — there is no per-stage entry to go stale, because a
        grouped job never materializes per-stage results outside the
        worker node in the first place (Section 3.6)."""
        stage_fps = ";".join(stage.cache_fingerprint() for stage in self.stages)
        links = ",".join(
            f"{ci}.{cport}<-{pj}.{pport}"
            for (ci, cport), (pj, pport) in sorted(self.internal_links.items())
        )
        return f"composite:[{stage_fps}]:links=[{links}]"

    # -- execution -------------------------------------------------------------
    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        # Distribute external inputs to stages.
        per_stage_inputs: List[Dict[str, GridData]] = [dict() for _ in self.stages]
        for public, datum in inputs.items():
            idx, port = self._input_map[public]
            per_stage_inputs[idx][port] = datum

        bindings_per_stage: List[Dict[str, str]] = []
        staged: List[str] = []
        produced: List[LogicalFile] = []
        minted: Dict[Tuple[int, str], Optional[LogicalFile]] = {}
        internally_consumed = set(self.internal_links.values())

        for idx, stage in enumerate(self.stages):
            bindings: Dict[str, str] = {}
            staged.extend(stage.sandbox_gfns)
            for spec in stage.descriptor.inputs:
                key = (idx, spec.name)
                if key in self.internal_links:
                    pj, pport = self.internal_links[key]
                    # Intermediate datum: referenced by its local scratch
                    # name on the worker — the whole point of grouping.
                    bindings[spec.name] = _local_name(self.stages[pj].name, pport)
                    continue
                datum = per_stage_inputs[idx].get(spec.name)
                if datum is None:
                    raise ServiceError(
                        f"{self.name}: missing input for stage {stage.name!r} "
                        f"port {spec.name!r}"
                    )
                if spec.is_file and datum.file is not None:
                    bindings[spec.name] = datum.file.gfn
                    staged.append(datum.file.gfn)
                else:
                    bindings[spec.name] = datum.command_line_token()
            for spec in stage.descriptor.outputs:
                key = (idx, spec.name)
                if key in internally_consumed and (idx, spec.name) not in self._exposed_outputs():
                    bindings[spec.name] = _local_name(stage.name, spec.name)
                    minted[key] = None
                else:
                    file = LogicalFile.fresh(
                        f"{self.name}/{stage.name}/{spec.name}",
                        size=stage.output_size(spec.name),
                    )
                    bindings[spec.name] = file.gfn
                    minted[key] = file
                    produced.append(file)
                self._note_grouping_savings(stage, spec.name, key, minted[key])
            bindings_per_stage.append(bindings)

        command_line = " && ".join(
            stage.descriptor.command_line(bindings)
            for stage, bindings in zip(self.stages, bindings_per_stage)
        )
        payload = self._make_payload(per_stage_inputs)
        description = JobDescription(
            name=f"{self.name}#{len(self.invocations)}",
            command_line=command_line,
            compute_time=SumOf([stage.compute_model for stage in self.stages]),
            input_files=tuple(staged),
            output_files=tuple(produced),
            payload=payload,
            owner=self.stages[0].owner,
            tags={
                **self.stages[0].tags,
                "service": self.name,
                "grouped": True,
                "stages": len(self.stages),
            },
        )
        handle = self.grid.submit(description)
        job_record = yield handle.completion
        record.job_ids = (job_record.job_id,)

        values: Mapping[Tuple[int, str], Any] = job_record.result or {}
        outputs: Dict[str, GridData] = {}
        for public, (idx, port) in self._output_map.items():
            outputs[public] = GridData(value=values.get((idx, port)), file=minted.get((idx, port)))
        return outputs

    def _exposed_outputs(self) -> set:
        return set(self._output_map.values())

    def _note_grouping_savings(
        self,
        stage: GenericWrapperService,
        port: str,
        key: Tuple[int, str],
        file: Optional[LogicalFile],
    ) -> None:
        """Account the transfers this output will *not* pay (Figure 7).

        Each internal consumer of the output reads worker-local scratch
        instead of staging the file in; when the output is not exposed
        at all, the stage-out transfer disappears too.  The sum lands on
        the ``bytes.intermediate_saved_by_grouping`` counter — the
        quantitative form of the paper's claim that grouping removes
        the intermediate "Output data transfer / Input data transfer"
        pair.
        """
        internal_consumers = sum(
            1 for target in self.internal_links.values() if target == key
        )
        if internal_consumers == 0:
            return
        bus = self.grid.instrumentation
        if bus is None:
            return
        size = int(round(float(stage.output_size(port))))
        saved = size * internal_consumers
        if file is None:
            saved += size
        bus.metrics.counter("bytes.intermediate_saved_by_grouping").inc(saved)

    def _make_payload(self, per_stage_inputs: List[Dict[str, GridData]]):
        """Build the job payload: run every stage's program in order.

        Values flow stage-to-stage through the internal links, exactly
        as the files would flow through the worker's scratch space.
        """
        stages = self.stages
        links = self.internal_links

        def payload() -> Dict[Tuple[int, str], Any]:
            results: Dict[Tuple[int, str], Any] = {}
            for idx, stage in enumerate(stages):
                kwargs: Dict[str, Any] = {}
                for port in stage.input_ports:
                    key = (idx, port)
                    if key in links:
                        kwargs[port] = results.get(links[key])
                    else:
                        datum = per_stage_inputs[idx].get(port)
                        kwargs[port] = datum.value if datum is not None else None
                if stage.program is None:
                    stage_result: Mapping[str, Any] = {}
                else:
                    stage_result = stage.program(**kwargs)
                    if not isinstance(stage_result, Mapping):
                        raise ServiceError(
                            f"{stage.name}: program must return a mapping, "
                            f"got {type(stage_result).__name__}"
                        )
                for port in stage.output_ports:
                    results[(idx, port)] = stage_result.get(port)
            return results

        return payload


def _local_name(stage_name: str, port: str) -> str:
    """Scratch-space path for an intermediate file inside a grouped job."""
    return f"./{stage_name}.{port}.tmp"
