"""Simulated GridRPC programming interface.

The GridRPC standard ([20] in the paper) defines handle-based
asynchronous remote procedure calls: ``grpc_call_async`` returns a
session handle immediately and ``grpc_wait``/``grpc_probe`` observe it.
MOTEUR "is implementing an interface to both Web Services and GridRPC
instrumented application code" — this module is that second interface.

:class:`GridRpcClient` adapts the handle-based API onto our event-based
services so the enactor (or a user) can drive services GridRPC-style.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional

from repro.services.base import Service, ServiceError
from repro.sim.engine import Engine, Event

__all__ = ["GridRpcClient", "SessionHandle", "SessionState"]


class SessionState(Enum):
    """GridRPC session lifecycle."""

    RUNNING = "running"
    DONE = "done"
    ERROR = "error"


_session_ids = itertools.count(1)


@dataclass
class SessionHandle:
    """The opaque handle ``grpc_call_async`` hands back."""

    session_id: int
    service: str
    event: Event = field(repr=False)

    @property
    def state(self) -> SessionState:
        if not self.event.triggered:
            return SessionState.RUNNING
        return SessionState.DONE if self.event.ok else SessionState.ERROR


class GridRpcClient:
    """Handle-based async RPC facade over event-based services."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._sessions: Dict[int, SessionHandle] = {}

    def call_async(self, service: Service, inputs: Mapping[str, Any]) -> SessionHandle:
        """``grpc_call_async``: start the call, return its handle."""
        event = service.invoke(inputs)
        handle = SessionHandle(
            session_id=next(_session_ids), service=service.name, event=event
        )
        self._sessions[handle.session_id] = handle
        return handle

    def probe(self, handle: SessionHandle) -> SessionState:
        """``grpc_probe``: non-blocking state check."""
        return handle.state

    def wait(self, handle: SessionHandle) -> Event:
        """``grpc_wait``: an event for use inside simulated processes.

        GridRPC's blocking wait maps to yielding this event.
        """
        return handle.event

    def wait_any(self, handles: "list[SessionHandle]") -> Event:
        """``grpc_wait_any``: first of several sessions to finish."""
        if not handles:
            raise ServiceError("wait_any needs at least one handle")
        return self.engine.any_of([h.event for h in handles])

    def wait_all(self, handles: "list[SessionHandle]") -> Event:
        """``grpc_wait_all``: all sessions finished."""
        if not handles:
            raise ServiceError("wait_all needs at least one handle")
        return self.engine.all_of([h.event for h in handles])

    def session(self, session_id: int) -> Optional[SessionHandle]:
        """Look a session up by id (None if unknown)."""
        return self._sessions.get(session_id)

    @property
    def open_sessions(self) -> int:
        """Number of sessions still running."""
        return sum(1 for h in self._sessions.values() if h.state is SessionState.RUNNING)
