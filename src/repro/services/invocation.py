"""Invocation semantics: asynchronous calls from the enactor.

Section 3.1: "the calls made from the workflow enactor to these
services need to be non-blocking for exploiting the potential
parallelism.  [...] none of the major [web service] implementations do
provide any asynchronous service calls for now.  As a consequence,
asynchronous calls to web services need to be implemented at the
workflow enactor level, by spawning independent system threads for each
processor being executed."

In the simulator a "system thread" is a simulated process; the two
invokers below make the distinction explicit and measurable:

* :class:`AsyncInvoker` — fire-and-collect; any number of outstanding
  calls (the MOTEUR behaviour).
* :class:`SyncInvoker` — one blocking call at a time per invoker (what a
  naive client of a synchronous SOAP stack gets); kept for contrast in
  tests and ablations, it serializes *everything* and therefore kills
  even workflow parallelism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.services.base import Service
from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource

__all__ = ["AsyncInvoker", "SyncInvoker", "gather"]


class AsyncInvoker:
    """Non-blocking invocation: one simulated thread per call."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.calls_started = 0

    def call(self, service: Service, inputs: Mapping[str, Any]) -> Event:
        """Invoke *service*; returns the result event immediately."""
        self.calls_started += 1
        return service.invoke(inputs)


class SyncInvoker:
    """Blocking invocation: at most one call in flight.

    ``call`` still returns an event (so callers compose), but calls are
    admitted strictly one at a time in request order.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._lock = Resource(engine, 1, name="sync-invoker")
        self.calls_started = 0

    def call(self, service: Service, inputs: Mapping[str, Any]) -> Event:
        """Queue a blocking invocation of *service*."""
        self.calls_started += 1
        done = self.engine.event(name=f"sync:{service.name}")
        self.engine.process(self._serialized(service, dict(inputs), done))
        return done

    def _serialized(self, service: Service, inputs: Dict[str, Any], done: Event):
        request = self._lock.request()
        yield request
        try:
            outputs = yield service.invoke(inputs)
            done.succeed(outputs)
        except Exception as exc:
            done.fail(exc)
        finally:
            self._lock.release(request)


def gather(engine: Engine, events: List[Event]) -> Event:
    """All-of over invocation events, preserving order of results."""
    return engine.all_of(events)
