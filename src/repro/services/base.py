"""The abstract service contract and simple in-memory services.

A :class:`Service` is what the enactor composes: a named black box
with input and output ports, invoked asynchronously.  ``invoke``
returns immediately with an :class:`~repro.sim.engine.Event` that
succeeds with the output-port dictionary — this is the non-blocking
call semantics Section 3.1 requires for any parallelism to exist.

:class:`GridData` is the value that travels between services: an
optional Python object (the *real* data product, e.g. a rigid
transform) plus an optional :class:`~repro.grid.storage.LogicalFile`
identity (the GFN the middleware moves around).  Services exchange
GridData so that both the data-management story (transfers, catalogs)
and the application story (actual computed values) stay truthful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.grid.storage import LogicalFile
from repro.sim.engine import Engine, Event

__all__ = ["GridData", "Service", "ServiceError", "LocalService", "InvocationRecord"]


class ServiceError(RuntimeError):
    """An invocation failed (bad ports, job failure, program error)."""


@dataclass(frozen=True)
class GridData:
    """A datum exchanged between services: value and/or grid file."""

    value: Any = None
    file: Optional[LogicalFile] = None

    @property
    def gfn(self) -> Optional[str]:
        """The grid file name, if this datum lives on the grid."""
        return self.file.gfn if self.file is not None else None

    def command_line_token(self) -> str:
        """How this datum appears on a composed command line."""
        if self.file is not None:
            return self.file.gfn
        return str(self.value)

    @staticmethod
    def of(value: Any) -> "GridData":
        """Coerce an arbitrary object to GridData (identity if already one)."""
        if isinstance(value, GridData):
            return value
        if isinstance(value, LogicalFile):
            return GridData(value=None, file=value)
        return GridData(value=value)


@dataclass
class InvocationRecord:
    """One service invocation, for tracing and assertions."""

    invocation_id: int
    service: str
    inputs: Dict[str, GridData]
    submitted_at: float
    completed_at: Optional[float] = None
    outputs: Optional[Dict[str, GridData]] = None
    job_ids: Tuple[int, ...] = ()
    error: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock seconds of the invocation, once completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


_invocation_ids = itertools.count(1)


class Service:
    """Base class for composable application services."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        input_ports: Tuple[str, ...],
        output_ports: Tuple[str, ...],
    ) -> None:
        if not name:
            raise ValueError("a service needs a non-empty name")
        if len(set(input_ports)) != len(input_ports):
            raise ValueError(f"duplicate input ports on {name!r}: {input_ports}")
        if len(set(output_ports)) != len(output_ports):
            raise ValueError(f"duplicate output ports on {name!r}: {output_ports}")
        self.engine = engine
        self.name = name
        self.input_ports = tuple(input_ports)
        self.output_ports = tuple(output_ports)
        #: every invocation ever made, in submission order
        self.invocations: List[InvocationRecord] = []

    # -- contract -------------------------------------------------------
    def invoke(self, inputs: Mapping[str, Any]) -> Event:
        """Asynchronously invoke the service.

        Returns an event that succeeds with ``dict[port, GridData]`` or
        fails with :class:`ServiceError`.  Subclasses implement
        :meth:`_execute`; this wrapper validates ports and maintains the
        invocation log.
        """
        event, _ = self.invoke_recorded(inputs)
        return event

    def invoke_recorded(self, inputs: Mapping[str, Any]) -> "tuple[Event, InvocationRecord]":
        """Like :meth:`invoke` but also hands back the invocation record.

        The enactor uses the record to attach job ids to trace events;
        with many calls in flight, "last invocation" would be ambiguous.
        """
        data = {key: GridData.of(val) for key, val in inputs.items()}
        missing = set(self.input_ports) - set(data)
        extra = set(data) - set(self.input_ports)
        if missing or extra:
            raise ServiceError(
                f"{self.name}: bad invocation ports "
                f"(missing={sorted(missing)}, unexpected={sorted(extra)})"
            )
        record = InvocationRecord(
            invocation_id=next(_invocation_ids),
            service=self.name,
            inputs=data,
            submitted_at=self.engine.now,
        )
        self.invocations.append(record)
        result = self.engine.event(name=f"invoke:{self.name}")
        self.engine.process(self._guarded(record, data, result), name=f"svc:{self.name}")
        return result, record

    def _guarded(self, record: InvocationRecord, data: Dict[str, GridData], result: Event):
        try:
            outputs = yield from self._execute(record, data)
        except Exception as exc:
            record.completed_at = self.engine.now
            record.error = str(exc)
            wrapper = ServiceError(f"{self.name}: {exc}")
            # Keep the cause chain: the enactor's failure containment
            # digs through it for the JobFailedError and its record.
            wrapper.__cause__ = exc
            result.fail(wrapper)
            return
        bad = set(outputs) ^ set(self.output_ports)
        if bad:
            record.completed_at = self.engine.now
            record.error = f"wrong output ports {sorted(outputs)}"
            result.fail(ServiceError(f"{self.name}: produced ports {sorted(outputs)}, "
                                     f"declared {sorted(self.output_ports)}"))
            return
        wrapped = {key: GridData.of(val) for key, val in outputs.items()}
        record.completed_at = self.engine.now
        record.outputs = wrapped
        result.succeed(wrapped)

    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        """Generator: perform the invocation, returning the outputs dict."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator for subclass parity

    def cache_fingerprint(self) -> str:
        """Identity of the computation, for provenance-keyed result caching.

        Two services whose fingerprints are equal are assumed to compute
        the same deterministic function of their inputs.  Services that
        can describe their executable (the generic wrapper, grouped
        composites) override this with a descriptor-derived identity;
        the base implementation falls back to class + name + ports.
        """
        return (
            f"{type(self).__qualname__}:{self.name}"
            f":in={','.join(self.input_ports)}:out={','.join(self.output_ports)}"
        )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={list(self.input_ports)} out={list(self.output_ports)}>"
        )


class LocalService(Service):
    """A service computed in-process after a (possibly random) delay.

    No grid behind it — used in unit tests and in the analytical-model
    validation where job durations must be exact.  ``function`` maps
    input values (unwrapped from GridData) to a dict of output values.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        input_ports: Tuple[str, ...],
        output_ports: Tuple[str, ...],
        function: Optional[Callable[..., Mapping[str, Any]]] = None,
        duration: "float | Callable[[Dict[str, GridData]], float]" = 0.0,
    ) -> None:
        super().__init__(engine, name, input_ports, output_ports)
        self._function = function
        self._duration = duration

    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        delay = self._duration(inputs) if callable(self._duration) else self._duration
        if delay < 0:
            raise ServiceError(f"{self.name}: negative duration {delay}")
        if delay > 0:
            yield self.engine.timeout(delay)
        if self._function is None:
            # Pass-through: echo inputs onto same-named outputs where
            # possible, None elsewhere.
            return {
                port: inputs[port].value if port in inputs else None
                for port in self.output_ports
            }
        values = {key: data.value for key, data in inputs.items()}
        produced = self._function(**values)
        if not isinstance(produced, Mapping):
            raise ServiceError(
                f"{self.name}: function must return a mapping, got {type(produced).__name__}"
            )
        return dict(produced)
