"""Executable descriptors: the generic wrapper's XML input (Figure 8).

The descriptor "has to be complete enough to allow dynamic composition
of the command line from the list of parameters at the service
invocation time and to access the executable and input data files"
(Section 3.6).  It contains exactly the five ingredients the paper
enumerates:

1. name and access method of the executable,
2. name and access method of sandboxed files (libraries, scripts),
3. access method and command-line option of the input data,
4. command-line option of input parameters (no access method),
5. access method and command-line option of the output data.

The XML dialect below round-trips the paper's published example
(``CrestLines.pl``); see ``tests/services/test_descriptor.py`` which
parses the verbatim Figure 8 document.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "AccessMethod",
    "InputSpec",
    "OutputSpec",
    "SandboxSpec",
    "ExecutableDescriptor",
    "DescriptorError",
    "descriptor_from_xml",
    "descriptor_to_xml",
]

#: access methods the paper's implementation supports (Section 3.6 item 1)
ACCESS_TYPES = ("URL", "GFN", "local")


class DescriptorError(ValueError):
    """Malformed descriptor document or inconsistent descriptor model."""


@dataclass(frozen=True)
class AccessMethod:
    """How a file is reached: a URL server path, a GFN, or a local path."""

    type: str
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.type not in ACCESS_TYPES:
            raise DescriptorError(
                f"unknown access type {self.type!r}; expected one of {ACCESS_TYPES}"
            )


@dataclass(frozen=True)
class InputSpec:
    """An input on the command line.

    With an ``access`` method it is an input *data file* whose actual
    name is bound at invocation time (the service-based dynamic-data
    principle); without one it is a plain *parameter* (Section 3.6
    item 4).
    """

    name: str
    option: Optional[str] = None
    access: Optional[AccessMethod] = None

    @property
    def is_file(self) -> bool:
        """True for data files, False for bare parameters."""
        return self.access is not None


@dataclass(frozen=True)
class OutputSpec:
    """An output file: where to register it and its command-line option."""

    name: str
    option: Optional[str] = None
    access: AccessMethod = field(default_factory=lambda: AccessMethod("GFN"))


@dataclass(frozen=True)
class SandboxSpec:
    """An auxiliary file needed at run time but absent from the command line."""

    name: str
    access: AccessMethod
    value: str


@dataclass(frozen=True)
class ExecutableDescriptor:
    """The full description of one wrappable legacy code."""

    name: str
    access: AccessMethod
    value: str
    inputs: Tuple[InputSpec, ...] = ()
    outputs: Tuple[OutputSpec, ...] = ()
    sandboxes: Tuple[SandboxSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.inputs] + [spec.name for spec in self.outputs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise DescriptorError(f"duplicate port names in descriptor: {sorted(duplicates)}")

    # -- convenient views --------------------------------------------------
    @property
    def input_ports(self) -> Tuple[str, ...]:
        """All input names (files and parameters), declaration order."""
        return tuple(spec.name for spec in self.inputs)

    @property
    def output_ports(self) -> Tuple[str, ...]:
        """All output names, declaration order."""
        return tuple(spec.name for spec in self.outputs)

    @property
    def file_inputs(self) -> Tuple[InputSpec, ...]:
        """Input data files only."""
        return tuple(spec for spec in self.inputs if spec.is_file)

    @property
    def parameters(self) -> Tuple[InputSpec, ...]:
        """Bare parameters only."""
        return tuple(spec for spec in self.inputs if not spec.is_file)

    def command_line(self, bindings: Dict[str, str]) -> str:
        """Compose the invocation command line (Section 3.6).

        *bindings* maps every input and output name to the token that
        should appear on the command line (a GFN, a local path, or a
        parameter value).  This is the dynamic composition that
        distinguishes the descriptor from static task-based job
        description languages.
        """
        missing = {s.name for s in self.inputs} | {s.name for s in self.outputs}
        missing -= set(bindings)
        if missing:
            raise DescriptorError(
                f"{self.name}: unbound command-line names {sorted(missing)}"
            )
        parts = [self.value]
        for spec in self.inputs:
            token = str(bindings[spec.name])
            if spec.option:
                parts.append(f"{spec.option} {token}")
            else:
                parts.append(token)
        for spec in self.outputs:
            token = str(bindings[spec.name])
            if spec.option:
                parts.append(f"{spec.option} {token}")
            else:
                parts.append(token)
        return " ".join(parts)


# -- XML I/O ---------------------------------------------------------------


def _parse_access(parent: ET.Element, *, required: bool) -> Optional[AccessMethod]:
    node = parent.find("access")
    if node is None:
        if required:
            raise DescriptorError(f"<{parent.tag}> is missing its <access> element")
        return None
    type_ = node.get("type")
    if type_ is None:
        raise DescriptorError("<access> is missing its 'type' attribute")
    path_node = node.find("path")
    path = path_node.get("value") if path_node is not None else None
    return AccessMethod(type=type_, path=path)


def _parse_value(parent: ET.Element) -> Optional[str]:
    node = parent.find("value")
    return node.get("value") if node is not None else None


def descriptor_from_xml(text: str) -> ExecutableDescriptor:
    """Parse a Figure 8-style descriptor document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DescriptorError(f"not well-formed XML: {exc}") from exc
    if root.tag != "description":
        raise DescriptorError(f"expected <description> root, got <{root.tag}>")
    executable = root.find("executable")
    if executable is None:
        raise DescriptorError("missing <executable> element")
    name = executable.get("name")
    if not name:
        raise DescriptorError("<executable> is missing its 'name' attribute")
    access = _parse_access(executable, required=True)
    value = _parse_value(executable) or name

    inputs = []
    for node in executable.findall("input"):
        input_name = node.get("name")
        if not input_name:
            raise DescriptorError("<input> is missing its 'name' attribute")
        inputs.append(
            InputSpec(
                name=input_name,
                option=node.get("option"),
                access=_parse_access(node, required=False),
            )
        )
    outputs = []
    for node in executable.findall("output"):
        output_name = node.get("name")
        if not output_name:
            raise DescriptorError("<output> is missing its 'name' attribute")
        out_access = _parse_access(node, required=False) or AccessMethod("GFN")
        outputs.append(
            OutputSpec(name=output_name, option=node.get("option"), access=out_access)
        )
    sandboxes = []
    for node in executable.findall("sandbox"):
        sandbox_name = node.get("name")
        if not sandbox_name:
            raise DescriptorError("<sandbox> is missing its 'name' attribute")
        sandbox_access = _parse_access(node, required=True)
        sandbox_value = _parse_value(node)
        if sandbox_value is None:
            raise DescriptorError(f"sandbox {sandbox_name!r} is missing its <value>")
        sandboxes.append(
            SandboxSpec(name=sandbox_name, access=sandbox_access, value=sandbox_value)
        )
    return ExecutableDescriptor(
        name=name,
        access=access,
        value=value,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        sandboxes=tuple(sandboxes),
    )


def _access_to_xml(parent: ET.Element, access: AccessMethod) -> None:
    node = ET.SubElement(parent, "access", {"type": access.type})
    if access.path is not None:
        ET.SubElement(node, "path", {"value": access.path})


def descriptor_to_xml(descriptor: ExecutableDescriptor) -> str:
    """Serialize back to the Figure 8 dialect (round-trips with the parser)."""
    root = ET.Element("description")
    executable = ET.SubElement(root, "executable", {"name": descriptor.name})
    _access_to_xml(executable, descriptor.access)
    ET.SubElement(executable, "value", {"value": descriptor.value})
    for spec in descriptor.inputs:
        attrs = {"name": spec.name}
        if spec.option:
            attrs["option"] = spec.option
        node = ET.SubElement(executable, "input", attrs)
        if spec.access is not None:
            _access_to_xml(node, spec.access)
    for spec in descriptor.outputs:
        attrs = {"name": spec.name}
        if spec.option:
            attrs["option"] = spec.option
        node = ET.SubElement(executable, "output", attrs)
        _access_to_xml(node, spec.access)
    for sandbox in descriptor.sandboxes:
        node = ET.SubElement(executable, "sandbox", {"name": sandbox.name})
        _access_to_xml(node, sandbox.access)
        ET.SubElement(node, "value", {"value": sandbox.value})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
