"""Simulated SOAP/Web-Services transport.

The MOTEUR prototype invokes services through "standard service calls
(e.g. SOAP ones)" (Section 3.6).  We model the costs that a SOAP stack
adds on top of the application work:

* building and parsing the XML envelope (CPU cost proportional to the
  message payload), and
* the network round trip between the enactor host and the service host.

:class:`SoapBinding` decorates any :class:`~repro.services.base.Service`
with those costs while preserving the service contract — services
remain black boxes, whatever transport fronts them.  The envelope
builder produces actual SOAP-looking XML, which keeps message sizes
honest and gives the tests something concrete to check.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, Mapping

from repro.services.base import GridData, InvocationRecord, Service
from repro.sim.engine import Engine

__all__ = ["SoapBinding", "build_envelope", "parse_envelope"]

_SOAP_NS = "http://schemas.xmlsoap.org/soap/envelope/"


def build_envelope(operation: str, arguments: Mapping[str, Any]) -> str:
    """Serialize a call into a SOAP 1.1-style envelope."""
    envelope = ET.Element(f"{{{_SOAP_NS}}}Envelope")
    body = ET.SubElement(envelope, f"{{{_SOAP_NS}}}Body")
    call = ET.SubElement(body, operation)
    for key in sorted(arguments):
        arg = ET.SubElement(call, key)
        value = arguments[key]
        if isinstance(value, GridData):
            value = value.gfn if value.file is not None else value.value
        arg.text = "" if value is None else str(value)
    return ET.tostring(envelope, encoding="unicode")


def parse_envelope(text: str) -> Dict[str, str]:
    """Extract the operation arguments from an envelope (inverse of build)."""
    root = ET.fromstring(text)
    body = root.find(f"{{{_SOAP_NS}}}Body")
    if body is None or len(body) == 0:
        raise ValueError("envelope has no Body/operation")
    call = body[0]
    return {child.tag: (child.text or "") for child in call}


class SoapBinding(Service):
    """A service fronted by a simulated SOAP endpoint.

    Parameters
    ----------
    round_trip_latency:
        Fixed request+response network latency (seconds).
    marshalling_rate:
        Envelope bytes processed per second for build+parse; the cost
        scales with the actual envelope size.
    """

    def __init__(
        self,
        engine: Engine,
        inner: Service,
        round_trip_latency: float = 0.05,
        marshalling_rate: float = 50e6,
    ) -> None:
        if round_trip_latency < 0:
            raise ValueError(f"latency must be >= 0, got {round_trip_latency}")
        if marshalling_rate <= 0:
            raise ValueError(f"marshalling_rate must be > 0, got {marshalling_rate}")
        super().__init__(engine, inner.name, inner.input_ports, inner.output_ports)
        self.inner = inner
        self.round_trip_latency = round_trip_latency
        self.marshalling_rate = marshalling_rate
        self.envelopes_sent = 0

    def _execute(self, record: InvocationRecord, inputs: Dict[str, GridData]):
        envelope = build_envelope(self.name, inputs)
        self.envelopes_sent += 1
        cost = self.round_trip_latency + len(envelope.encode()) / self.marshalling_rate
        if cost > 0:
            yield self.engine.timeout(cost)
        outputs = yield self.inner.invoke(inputs)
        response = build_envelope(f"{self.name}Response", outputs)
        cost = len(response.encode()) / self.marshalling_rate
        if cost > 0:
            yield self.engine.timeout(cost)
        return dict(outputs)
