"""The application-service layer.

The paper's central design choice is the **service-based approach**:
application codes are wrapped behind standard invocation interfaces and
the workflow enactor treats them as black boxes (Section 1).  This
subpackage provides:

* :mod:`~repro.services.base` — the abstract :class:`Service` contract
  plus in-memory services for tests,
* :mod:`~repro.services.descriptor` — the XML *executable descriptor*
  of Figure 8 (name/access of the executable, sandboxed files, inputs
  with command-line options, parameters, outputs),
* :mod:`~repro.services.wrapper` — the **generic wrapper service** that
  turns any descriptor + legacy program into a grid-submitting service
  (the paper's answer to "(i) an extra level of complexity on the
  application developer side"),
* :mod:`~repro.services.composite` — the **virtual grouped service**
  that composes several wrapped codes into a single grid job
  (Section 3.6, Figure 7 bottom),
* :mod:`~repro.services.invocation` — asynchronous call semantics
  (Section 3.1: enactor-side threads because mainstream SOAP stacks
  lacked async calls),
* :mod:`~repro.services.soap` / :mod:`~repro.services.gridrpc` —
  simulated transports reproducing the two standard interfaces the
  prototype spoke (Web Services and GridRPC),
* :mod:`~repro.services.registry` — a minimal service-discovery
  registry (stand-in for myGrid's Feta).
"""

from repro.services.base import GridData, LocalService, Service, ServiceError
from repro.services.batching import BatchingService
from repro.services.composite import CompositeService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
    SandboxSpec,
    descriptor_from_xml,
    descriptor_to_xml,
)
from repro.services.wrapper import GenericWrapperService

__all__ = [
    "Service",
    "ServiceError",
    "LocalService",
    "GridData",
    "GenericWrapperService",
    "CompositeService",
    "BatchingService",
    "ExecutableDescriptor",
    "AccessMethod",
    "InputSpec",
    "OutputSpec",
    "SandboxSpec",
    "descriptor_from_xml",
    "descriptor_to_xml",
]
