"""Eviction policy: LRU ordering, TTL expiry, entry/byte caps.

The policy is pure decision logic shared by every
:class:`~repro.cache.store.ResultStore` implementation: given the
store's bookkeeping (recency order, per-entry ages and sizes), it says
*which* entries must go.  Keeping it store-agnostic means the bounded
in-memory store and the on-disk store cannot drift apart on semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["CachePolicy"]


@dataclass(frozen=True)
class CachePolicy:
    """Limits a result store enforces.

    ``None`` disables the corresponding limit; the default policy is
    unbounded (cache everything forever), which is the right call for
    one-shot simulation runs whose working set is the workflow itself.
    """

    #: maximum number of live entries (LRU evicts beyond this)
    max_entries: Optional[int] = None
    #: maximum total payload bytes (LRU evicts beyond this)
    max_bytes: Optional[float] = None
    #: seconds an entry stays valid after creation (None = forever)
    ttl: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {self.max_bytes}")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {self.ttl}")

    @classmethod
    def unbounded(cls) -> "CachePolicy":
        """No limits at all."""
        return cls()

    @classmethod
    def lru(cls, max_entries: int) -> "CachePolicy":
        """Classic bounded LRU."""
        return cls(max_entries=max_entries)

    # -- decisions -------------------------------------------------------
    def expired(self, created_at: float, now: float) -> bool:
        """Has an entry created at *created_at* outlived its TTL?"""
        return self.ttl is not None and (now - created_at) > self.ttl

    def evictions_for(
        self, entries: Sequence[Tuple[str, float]], incoming_bytes: float = 0.0
    ) -> List[str]:
        """Keys to evict so the store fits its caps.

        *entries* is the store's live set ordered least-recently-used
        first, as ``(key, size_bytes)`` pairs.  ``incoming_bytes``
        reserves room for an entry about to be inserted (it is not yet
        in *entries*).
        """
        victims: List[str] = []
        count = len(entries) + 1  # the incoming entry
        total = sum(size for _, size in entries) + incoming_bytes
        for key, size in entries:
            over_count = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not over_count and not over_bytes:
                break
            victims.append(key)
            count -= 1
            total -= size
        return victims
