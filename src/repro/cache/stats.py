"""Cache observability: per-service hit/miss/eviction/byte counters.

The counters answer the experiment-level questions the warm-run study
needs: which services actually hit, how much submission work a warm
re-execution skipped, and whether the eviction policy is throwing away
entries it will need again.  :class:`CacheStats` is the live mutable
accumulator owned by a :class:`~repro.cache.ResultCache`;
:meth:`CacheStats.snapshot` produces the frozen per-run view the
enactor attaches to its :class:`~repro.core.enactor.EnactmentResult`
(a shared cache accumulates across runs, so per-run numbers are a
snapshot delta).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Tuple

__all__ = ["ServiceCacheStats", "CacheStats", "CacheStatsSnapshot"]


@dataclass(frozen=True)
class ServiceCacheStats:
    """Counters for one service (or the totals row)."""

    hits: int = 0
    #: misses that led to an execution (and then a store)
    misses: int = 0
    #: invocations de-duplicated against an identical in-flight one
    coalesced: int = 0
    evictions: int = 0
    stores: int = 0
    #: payload bytes currently attributed to stored entries
    bytes_stored: int = 0

    @property
    def lookups(self) -> int:
        """Total cache consultations."""
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided an execution (hits + coalesced)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.coalesced) / lookups

    def __add__(self, other: "ServiceCacheStats") -> "ServiceCacheStats":
        return ServiceCacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            coalesced=self.coalesced + other.coalesced,
            evictions=self.evictions + other.evictions,
            stores=self.stores + other.stores,
            bytes_stored=self.bytes_stored + other.bytes_stored,
        )

    def __sub__(self, other: "ServiceCacheStats") -> "ServiceCacheStats":
        return ServiceCacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            coalesced=self.coalesced - other.coalesced,
            evictions=self.evictions - other.evictions,
            stores=self.stores - other.stores,
            bytes_stored=self.bytes_stored - other.bytes_stored,
        )


@dataclass(frozen=True)
class CacheStatsSnapshot:
    """Immutable per-service counters at (or between) points in time."""

    per_service: Dict[str, ServiceCacheStats] = field(default_factory=dict)

    @property
    def total(self) -> ServiceCacheStats:
        """All services summed."""
        total = ServiceCacheStats()
        for stats in self.per_service.values():
            total = total + stats
        return total

    @property
    def hit_rate(self) -> float:
        """Overall fraction of lookups served without execution."""
        return self.total.hit_rate

    def services(self) -> Tuple[str, ...]:
        """Service names, sorted."""
        return tuple(sorted(self.per_service))

    def __iter__(self) -> Iterator[Tuple[str, ServiceCacheStats]]:
        for name in self.services():
            yield name, self.per_service[name]

    def __sub__(self, other: "CacheStatsSnapshot") -> "CacheStatsSnapshot":
        names = set(self.per_service) | set(other.per_service)
        empty = ServiceCacheStats()
        delta = {
            name: self.per_service.get(name, empty) - other.per_service.get(name, empty)
            for name in names
        }
        # Drop all-zero rows so per-run snapshots list only active services.
        delta = {name: stats for name, stats in delta.items() if stats != empty}
        return CacheStatsSnapshot(per_service=delta)


class CacheStats:
    """Mutable accumulator the cache records into."""

    def __init__(self) -> None:
        self._per_service: Dict[str, ServiceCacheStats] = {}

    def _bump(self, service: str, **deltas: int) -> None:
        current = self._per_service.get(service, ServiceCacheStats())
        self._per_service[service] = replace(
            current, **{k: getattr(current, k) + v for k, v in deltas.items()}
        )

    def record_hit(self, service: str) -> None:
        """A store lookup returned a usable entry."""
        self._bump(service, hits=1)

    def record_miss(self, service: str) -> None:
        """No entry; the invocation will execute (and then store)."""
        self._bump(service, misses=1)

    def record_coalesced(self, service: str) -> None:
        """De-duplicated against an identical in-flight invocation."""
        self._bump(service, coalesced=1)

    def record_store(self, service: str, size_bytes: int) -> None:
        """A freshly computed result entered the store."""
        self._bump(service, stores=1, bytes_stored=size_bytes)

    def record_eviction(self, service: str, size_bytes: int) -> None:
        """An entry was evicted (policy or TTL expiry)."""
        self._bump(service, evictions=1, bytes_stored=-size_bytes)

    def snapshot(self) -> CacheStatsSnapshot:
        """Frozen copy of the counters right now."""
        return CacheStatsSnapshot(per_service=dict(self._per_service))
