"""Provenance-keyed cache keys (deterministic, content-addressed).

A cache key must answer one question: *would re-running this invocation
produce the same outputs?*  For a black-box-but-deterministic service
the answer is yes exactly when

1. the **service identity** is the same — for wrapped services that is
   the executable descriptor (the Figure 8 document fully determines
   the composed command line); for virtual grouped services it is the
   descriptor chain of *all* stages plus the internal wiring; for plain
   in-process services it is the class and port signature,
2. the **inputs** are the same — both their payload values/grid files
   and their :class:`~repro.core.provenance.HistoryTree` lineage.  The
   history tree is what gives dot- and cross-product iterations the
   right granularity: the pair ``(D0, D1)`` and the pair ``(D0, D2)``
   hash differently even when the raw values collide, and a grouped
   service over ``D0`` caches as **one** entry covering all its stages.

Keys are hex SHA-256 digests of a canonical text encoding, so they are
stable across processes and Python versions — the property the
:class:`~repro.cache.store.FileStore` needs for warm re-execution.

Synchronization processors consume their *whole* input streams in one
invocation, and under DP+SP the arrival order of those streams is a
race artifact, not a semantic property.  Their keys therefore encode
each port's tokens as a sorted multiset (``unordered=True``), so a warm
run whose tokens arrive in a different order still hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # runtime import would close a cycle through repro.core
    from repro.core.provenance import HistoryTree
    from repro.services.base import GridData, Service

__all__ = [
    "fingerprint_value",
    "fingerprint_datum",
    "history_fingerprint",
    "service_fingerprint",
    "invocation_key",
    "TokenFact",
]

#: what the key derivation needs from one input token: lineage + payload
TokenFact = Tuple["HistoryTree", "GridData"]


def fingerprint_value(value: Any) -> str:
    """Canonical, process-stable text encoding of a payload value.

    Handles the value vocabulary that actually flows through the
    workflows (scalars, strings, containers, numpy arrays, frozen
    dataclasses like ``RigidTransform``/``ImagePair``) structurally;
    anything else falls back to ``repr``, which is deterministic for
    every remaining type used in the repository.
    """
    if value is None:
        return "none"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bytes):
        return f"y:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return f"nd:{value.dtype}:{value.shape}:{digest}"
    if isinstance(value, np.generic):
        return f"ns:{value.dtype}:{value.item()!r}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(fingerprint_value(item) for item in value)
        tag = "l" if isinstance(value, list) else "t"
        return f"{tag}:[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(fingerprint_value(item) for item in value))
        return f"set:[{inner}]"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{fingerprint_value(k)}={fingerprint_value(v)}"
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return f"m:{{{inner}}}"
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        inner = ",".join(
            f"{f.name}={fingerprint_value(getattr(value, f.name))}" for f in fields(value)
        )
        return f"dc:{cls.__module__}.{cls.__qualname__}({inner})"
    return f"r:{type(value).__module__}.{type(value).__qualname__}:{value!r}"


def fingerprint_datum(datum: GridData) -> str:
    """Fingerprint of one :class:`GridData`: payload value + grid identity."""
    gfn = datum.file.gfn if datum.file is not None else ""
    return f"v={fingerprint_value(datum.value)};g={gfn}"


def history_fingerprint(tree: HistoryTree) -> str:
    """Canonical text encoding of a history tree (structure-exact)."""
    if tree.index is not None:
        return f"{tree.producer!r}[{tree.index}]"
    inner = ",".join(history_fingerprint(parent) for parent in tree.parents)
    iteration = f"@{tree.iteration}" if tree.iteration else ""
    return f"{tree.producer!r}{iteration}({inner})"


def service_fingerprint(service: Service) -> str:
    """Identity of the computation a service performs.

    Services that can describe their executable (the generic wrapper,
    grouped composites) override
    :meth:`~repro.services.base.Service.cache_fingerprint` with a
    descriptor-derived identity; everything else is identified by class
    and port signature.  Caching assumes services are deterministic
    functions of their inputs — the same black-box-referential-
    transparency hypothesis the paper's re-execution language rests on.
    """
    return service.cache_fingerprint()


def invocation_key(
    service: Service,
    bindings: Mapping[str, Sequence[TokenFact]],
    unordered: bool = False,
) -> str:
    """Derive the cache key of one invocation.

    Parameters
    ----------
    service:
        The service about to be invoked (or the virtual grouped
        service; its fingerprint covers every stage).
    bindings:
        Input port -> the token facts consumed on that port.  Ordinary
        invocations bind exactly one token per port; synchronization
        invocations bind the whole stream.
    unordered:
        Encode each port's tokens as a sorted multiset.  Used for
        synchronization barriers, whose stream arrival order is
        nondeterministic under DP+SP and not semantically meaningful.
    """
    parts = [f"service:{service_fingerprint(service)}"]
    for port in sorted(bindings):
        token_fps = [
            f"h={history_fingerprint(history)};{fingerprint_datum(datum)}"
            for history, datum in bindings[port]
        ]
        if unordered:
            token_fps = sorted(token_fps)
        parts.append(f"port:{port}=[" + "|".join(token_fps) + "]")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return digest
