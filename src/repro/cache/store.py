"""Result stores: where cached invocation outputs live.

Two implementations behind one small contract:

* :class:`InMemoryStore` — a bounded, thread-safe LRU map.  The right
  store for long-lived enactor processes that re-run workflows within
  one session (and for tests).
* :class:`FileStore` — one JSON document per entry under a directory,
  written atomically (``tmp`` + ``os.replace``) so a crashed run never
  leaves a torn entry behind.  This is the store that makes **warm
  re-execution across processes** work: a cold run persists every
  result, a later run with the same provenance keys replays them
  without submitting a single grid job — the operational payoff of the
  paper's "save and store the input data set in order to be able to
  re-execute workflows on the same data set".

Payload values are JSON when they are plain scalars and pickled
(base64, fixed protocol) otherwise, so arbitrary data products — rigid
transforms, numpy arrays — round-trip bit-exactly.
"""

from __future__ import annotations

import base64
import json
import math
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.cache.policy import CachePolicy
from repro.grid.storage import LogicalFile
from repro.services.base import GridData

__all__ = [
    "CacheEntry",
    "ResultStore",
    "InMemoryStore",
    "FileStore",
    "CacheStoreError",
    "estimate_entry_bytes",
    "encode_datum",
    "decode_datum",
]

#: pinned pickle protocol so FileStore entries are portable across the
#: Python versions CI runs (protocol 4 loads on every supported version)
_PICKLE_PROTOCOL = 4


class CacheStoreError(RuntimeError):
    """A store operation failed (unwritable directory, corrupt entry...)."""


@dataclass(frozen=True)
class CacheEntry:
    """One cached invocation result."""

    key: str
    service: str
    outputs: Dict[str, GridData] = field(default_factory=dict)
    created_at: float = 0.0
    size_bytes: int = 0


def estimate_entry_bytes(outputs: Dict[str, GridData]) -> int:
    """Approximate payload size of an outputs dict (for byte caps/stats)."""
    try:
        return len(pickle.dumps(outputs, protocol=_PICKLE_PROTOCOL))
    except Exception:
        return len(repr(outputs).encode("utf-8", errors="replace"))


@runtime_checkable
class ResultStore(Protocol):
    """What the cache needs from a store implementation."""

    #: called with each evicted/expired entry (wired by ResultCache)
    on_evict: Optional[Callable[[CacheEntry], None]]
    #: clock used for TTL expiry (injectable for tests/simulation)
    clock: Callable[[], float]

    def get(self, key: str) -> Optional[CacheEntry]:
        """The live entry under *key*, refreshing its recency; else None."""
        ...

    def put(self, entry: CacheEntry) -> None:
        """Insert (or overwrite) an entry, evicting to fit the policy."""
        ...

    def clear(self) -> None:
        """Drop every entry (not counted as evictions)."""
        ...

    def __len__(self) -> int: ...


class InMemoryStore:
    """Bounded, thread-safe, LRU-ordered in-process store."""

    def __init__(
        self,
        policy: Optional[CachePolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.policy = policy or CachePolicy.unbounded()
        self.clock = clock
        self.on_evict: Optional[Callable[[CacheEntry], None]] = None
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self.policy.expired(entry.created_at, self.clock()):
                del self._entries[key]
                self._notify(entry)
                return None
            self._entries.move_to_end(key)
            return entry

    def put(self, entry: CacheEntry) -> None:
        with self._lock:
            self._entries.pop(entry.key, None)  # overwrite keeps one copy
            lru_first = [(e.key, float(e.size_bytes)) for e in self._entries.values()]
            for victim in self.policy.evictions_for(lru_first, entry.size_bytes):
                self._notify(self._entries.pop(victim))
            self._entries[entry.key] = entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def _notify(self, entry: CacheEntry) -> None:
        if self.on_evict is not None:
            self.on_evict(entry)

    def __repr__(self) -> str:
        return f"<InMemoryStore entries={len(self)} policy={self.policy}>"


# -- JSON (de)serialization --------------------------------------------------

def _json_scalar(value: object) -> bool:
    if value is None or isinstance(value, (bool, int, str)):
        return True
    return isinstance(value, float) and math.isfinite(value)


def _encode_datum(datum: GridData) -> dict:
    doc: dict = {}
    if datum.file is not None:
        doc["file"] = {"gfn": datum.file.gfn, "size": datum.file.size}
    value = datum.value
    if _json_scalar(value):
        doc["value"] = {"kind": "json", "data": value}
    else:
        blob = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        doc["value"] = {"kind": "pickle", "data": base64.b64encode(blob).decode("ascii")}
    return doc


def _decode_datum(doc: dict) -> GridData:
    file_doc = doc.get("file")
    file = LogicalFile(file_doc["gfn"], size=file_doc["size"]) if file_doc else None
    value_doc = doc["value"]
    if value_doc["kind"] == "json":
        value = value_doc["data"]
    else:
        value = pickle.loads(base64.b64decode(value_doc["data"]))
    return GridData(value=value, file=file)


#: public datum codec: the enactment journal (repro.core.journal) shares
#: this wire format so journaled outputs round-trip exactly like cached ones
encode_datum = _encode_datum
decode_datum = _decode_datum


def entry_to_document(entry: CacheEntry) -> dict:
    """The JSON-serializable form of one entry."""
    return {
        "key": entry.key,
        "service": entry.service,
        "created_at": entry.created_at,
        "size_bytes": entry.size_bytes,
        "outputs": {port: _encode_datum(d) for port, d in entry.outputs.items()},
    }


def entry_from_document(doc: dict) -> CacheEntry:
    """Rebuild an entry from its JSON form."""
    return CacheEntry(
        key=doc["key"],
        service=doc["service"],
        created_at=doc["created_at"],
        size_bytes=doc["size_bytes"],
        outputs={port: _decode_datum(d) for port, d in doc["outputs"].items()},
    )


class FileStore:
    """One JSON file per entry under *directory*, written atomically.

    LRU recency is tracked through file mtimes (a ``get`` touches the
    file), so the policy survives process restarts along with the data.
    """

    def __init__(
        self,
        directory: "str | Path",
        policy: Optional[CachePolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.policy = policy or CachePolicy.unbounded()
        self.clock = clock
        self.on_evict: Optional[Callable[[CacheEntry], None]] = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheStoreError(f"cannot create cache directory {directory}: {exc}") from exc

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[CacheEntry]:
        path = self._path(key)
        entry = self._read(path)
        if entry is None:
            return None
        if self.policy.expired(entry.created_at, self.clock()):
            self._remove(path)
            self._notify(entry)
            return None
        os.utime(path)  # refresh LRU recency
        return entry

    def put(self, entry: CacheEntry) -> None:
        self._evict_to_fit(entry)
        document = json.dumps(entry_to_document(entry))
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(document)
            os.replace(tmp_name, self._path(entry.key))
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise CacheStoreError(f"cannot write cache entry {entry.key}: {exc}") from exc

    def clear(self) -> None:
        for path in self.directory.glob("*.json"):
            self._remove(path)

    def keys(self) -> List[str]:
        """Keys currently on disk."""
        return [path.stem for path in self.directory.glob("*.json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    # -- internals -----------------------------------------------------
    def _read(self, path: Path) -> Optional[CacheEntry]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return entry_from_document(json.loads(text))
        except Exception:
            # A torn/corrupt entry is a miss, never a crash.
            self._remove(path)
            return None

    def _remove(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _notify(self, entry: CacheEntry) -> None:
        if self.on_evict is not None:
            self.on_evict(entry)

    def _evict_to_fit(self, incoming: CacheEntry) -> None:
        if self.policy.max_entries is None and self.policy.max_bytes is None:
            return
        candidates: List[Tuple[float, str, Path]] = []
        for path in self.directory.glob("*.json"):
            if path.stem == incoming.key:
                continue  # overwrite, not a second entry
            try:
                candidates.append((path.stat().st_mtime, path.stem, path))
            except OSError:
                continue
        candidates.sort()  # least recently used first
        sizes: Dict[str, Tuple[Path, Optional[CacheEntry]]] = {}
        lru_first: List[Tuple[str, float]] = []
        for _, key, path in candidates:
            entry = self._read(path)
            if entry is None:
                continue
            sizes[key] = (path, entry)
            lru_first.append((key, float(entry.size_bytes)))
        for victim in self.policy.evictions_for(lru_first, incoming.size_bytes):
            path, entry = sizes[victim]
            self._remove(path)
            if entry is not None:
                self._notify(entry)

    def __repr__(self) -> str:
        return f"<FileStore dir={str(self.directory)!r} entries={len(self)}>"
