"""Provenance-keyed result cache: warm re-execution (nearly) for free.

The paper's input-data-set language exists "to save and store the input
data set in order to be able to re-execute workflows on the same data
set" (Section 4.1) — but re-executing without *memoization* pays the
full submission/queuing overhead Section 3.5 models all over again.
This subsystem closes that gap:

* :mod:`~repro.cache.keys` derives deterministic, content-addressed
  keys from service identity (descriptor fingerprints, covering every
  stage of virtual grouped services) plus the input tokens' history-tree
  lineage and payload values,
* :mod:`~repro.cache.store` provides the bounded in-memory store and
  the atomic JSON-on-disk store behind one protocol,
* :mod:`~repro.cache.policy` bounds the store (LRU, TTL, byte caps),
* :mod:`~repro.cache.stats` counts hits/misses/evictions/bytes per
  service for the experiment reports.

:class:`ResultCache` is the facade the enactor talks to.  It also owns
**single-flight de-duplication**: when two in-flight invocations carry
identical keys (possible with several concurrent enactments sharing one
engine), the second waits on the first instead of executing — a cache
with a thundering-herd hole would re-submit exactly the jobs it exists
to avoid.

Usage::

    from repro.cache import ResultCache, FileStore

    cache = ResultCache(store=FileStore("/tmp/bronze-cache"))
    result = MoteurEnactor(engine, wf, config, grid=grid, cache=cache).run(ds)
    print(result.cache_stats.hit_rate)

or declaratively through the configuration::

    config = OptimizationConfig(data_parallelism=True, cache=True,
                                cache_store="file", cache_dir="/tmp/bronze-cache")
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cache.keys import (
    TokenFact,
    fingerprint_datum,
    fingerprint_value,
    history_fingerprint,
    invocation_key,
    service_fingerprint,
)
from repro.cache.policy import CachePolicy
from repro.cache.stats import CacheStats, CacheStatsSnapshot, ServiceCacheStats
from repro.cache.store import (
    CacheEntry,
    CacheStoreError,
    FileStore,
    InMemoryStore,
    ResultStore,
    decode_datum,
    encode_datum,
    estimate_entry_bytes,
)
from repro.services.base import GridData, Service
from repro.sim.engine import Engine, Event

__all__ = [
    "ResultCache",
    "CachePolicy",
    "CacheStats",
    "CacheStatsSnapshot",
    "ServiceCacheStats",
    "CacheEntry",
    "CacheStoreError",
    "FileStore",
    "InMemoryStore",
    "ResultStore",
    "invocation_key",
    "service_fingerprint",
    "history_fingerprint",
    "fingerprint_value",
    "fingerprint_datum",
    "estimate_entry_bytes",
    "encode_datum",
    "decode_datum",
]


class ResultCache:
    """Store + policy + stats + single-flight, behind one object.

    One instance may be shared across enactors and across runs — that
    is the whole point for warm re-execution.  With a
    :class:`FileStore` the sharing extends across processes.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        stats: Optional[CacheStats] = None,
    ) -> None:
        self.store: ResultStore = store if store is not None else InMemoryStore()
        self.stats = stats or CacheStats()
        self.store.on_evict = self._record_eviction
        #: (engine id, key) -> completion event of the executing leader
        self._inflight: Dict[Tuple[int, str], Event] = {}

    def _record_eviction(self, entry: CacheEntry) -> None:
        self.stats.record_eviction(entry.service, entry.size_bytes)

    @classmethod
    def from_config(cls, config) -> Optional["ResultCache"]:
        """Build the cache an :class:`OptimizationConfig` asks for (or None)."""
        if not getattr(config, "cache", False):
            return None
        policy = CachePolicy(
            max_entries=config.cache_max_entries,
            ttl=config.cache_ttl,
        )
        if config.cache_store == "file":
            store: ResultStore = FileStore(config.cache_dir, policy=policy)
        else:
            store = InMemoryStore(policy=policy)
        return cls(store=store)

    # -- keying --------------------------------------------------------
    def key_for(
        self,
        service: Service,
        bindings: Mapping[str, Sequence[TokenFact]],
        unordered: bool = False,
    ) -> str:
        """Delegate to :func:`~repro.cache.keys.invocation_key`."""
        return invocation_key(service, bindings, unordered=unordered)

    # -- lookup/store --------------------------------------------------
    def lookup(self, key: str, service: str) -> Optional[Dict[str, GridData]]:
        """Cached outputs for *key*, recording a hit; None on absence.

        A miss is **not** recorded here — the enactor may still coalesce
        onto an identical in-flight invocation; it reports the final
        classification through :meth:`record_miss` /
        :meth:`record_coalesced`.
        """
        entry = self.store.get(key)
        if entry is None:
            return None
        self.stats.record_hit(service)
        return entry.outputs

    def record_miss(self, service: str) -> None:
        """The lookup missed and the invocation will really execute."""
        self.stats.record_miss(service)

    def put(self, key: str, service: str, outputs: Mapping[str, GridData]) -> None:
        """Store freshly computed outputs under *key*."""
        frozen = dict(outputs)
        size = estimate_entry_bytes(frozen)
        entry = CacheEntry(
            key=key,
            service=service,
            outputs=frozen,
            created_at=self.store.clock(),
            size_bytes=size,
        )
        self.store.put(entry)
        self.stats.record_store(service, size)

    def clear(self) -> None:
        """Drop every stored entry (stats are kept)."""
        self.store.clear()

    def __len__(self) -> int:
        return len(self.store)

    # -- single-flight de-duplication ----------------------------------
    def flight_leader(self, engine: Engine, key: str) -> Optional[Event]:
        """The in-flight completion event for *key* on *engine*, if any."""
        return self._inflight.get((id(engine), key))

    def open_flight(self, engine: Engine, key: str) -> Event:
        """Register this invocation as the executing leader for *key*.

        Returns the event later invocations with the same key wait on.
        """
        slot = (id(engine), key)
        if slot in self._inflight:
            raise CacheStoreError(f"flight already open for key {key[:16]}...")
        event = engine.event(name=f"cache-flight:{key[:12]}")
        # Pre-defuse: if the leader fails and no follower is waiting,
        # the failed event must not crash the engine when popped.
        event.defused = True
        self._inflight[slot] = event
        return event

    def close_flight(
        self,
        engine: Engine,
        key: str,
        outputs: Optional[Mapping[str, GridData]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Resolve the leader's flight, waking coalesced followers."""
        event = self._inflight.pop((id(engine), key), None)
        if event is None or event.triggered:
            return
        if error is not None:
            event.fail(error)
        else:
            event.succeed(dict(outputs or {}))

    def record_coalesced(self, service: str) -> None:
        """An invocation waited on an identical in-flight one."""
        self.stats.record_coalesced(service)

    # -- observability -------------------------------------------------
    def snapshot(self) -> CacheStatsSnapshot:
        """Frozen stats counters right now."""
        return self.stats.snapshot()

    def __repr__(self) -> str:
        return f"<ResultCache store={self.store!r} inflight={len(self._inflight)}>"
