"""Fluent workflow construction.

:class:`WorkflowBuilder` removes the boilerplate of assembling
processors and links by hand, for the common case where processors wrap
live services::

    wf = (
        WorkflowBuilder("demo")
        .source("images")
        .service("P1", p1_service)
        .service("P2", p2_service)
        .service("P3", p3_service)
        .connect("images:output", "P1:x")
        .connect("P1:y", "P2:x")
        .connect("P1:y", "P3:x")
        .sink("out2").sink("out3")
        .connect("P2:y", "out2:input")
        .connect("P3:y", "out3:input")
        .build()
    )
"""

from __future__ import annotations

from typing import Optional

from repro.workflow.graph import Processor, ProcessorKind, Workflow

__all__ = ["WorkflowBuilder"]


class WorkflowBuilder:
    """Chainable construction API over :class:`~repro.workflow.graph.Workflow`."""

    def __init__(self, name: str = "workflow") -> None:
        self._workflow = Workflow(name=name)
        self._built = False

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("builder already produced its workflow; create a new builder")

    def source(self, name: str, port: str = "output") -> "WorkflowBuilder":
        """Add a data source."""
        self._check_open()
        self._workflow.add_source(name, port=port)
        return self

    def sink(self, name: str, port: str = "input") -> "WorkflowBuilder":
        """Add a data sink."""
        self._check_open()
        self._workflow.add_sink(name, port=port)
        return self

    def service(
        self,
        name: str,
        service: object,
        iteration_strategy: str = "dot",
        synchronization: bool = False,
        groupable: bool = True,
    ) -> "WorkflowBuilder":
        """Add a service processor bound to a live service object."""
        self._check_open()
        self._workflow.add_processor(
            Processor(
                name=name,
                kind=ProcessorKind.SERVICE,
                service=service,
                input_ports=tuple(service.input_ports),
                output_ports=tuple(service.output_ports),
                iteration_strategy=iteration_strategy,
                synchronization=synchronization,
                groupable=groupable,
            )
        )
        return self

    def abstract_service(
        self,
        name: str,
        input_ports: tuple,
        output_ports: tuple,
        service_ref: Optional[str] = None,
        iteration_strategy: str = "dot",
        synchronization: bool = False,
    ) -> "WorkflowBuilder":
        """Add an unbound service processor (symbolic, Scufl-style)."""
        self._check_open()
        self._workflow.add_processor(
            Processor(
                name=name,
                kind=ProcessorKind.SERVICE,
                input_ports=tuple(input_ports),
                output_ports=tuple(output_ports),
                service_ref=service_ref or name,
                iteration_strategy=iteration_strategy,
                synchronization=synchronization,
            )
        )
        return self

    def connect(self, source: str, target: str) -> "WorkflowBuilder":
        """Add a data link using ``processor:port`` notation."""
        self._check_open()
        self._workflow.add_link(source, target)
        return self

    def coordinate(self, before: str, after: str) -> "WorkflowBuilder":
        """Add a coordination (control) constraint between two processors."""
        self._check_open()
        self._workflow.add_coordination_constraint(before, after)
        return self

    def build(self) -> Workflow:
        """Finalize and return the workflow (builder becomes unusable)."""
        self._check_open()
        self._built = True
        return self._workflow
