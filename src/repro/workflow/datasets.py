"""The input-data-set description language (Section 4.1).

"We developed an XML-based language to be able to describe input data
sets.  This language aims at providing a file format to save and store
the input data set in order to be able to re-execute workflows on the
same data set.  It simply describes each item of the different inputs
of the workflow."

:class:`InputDataSet` maps each workflow *source* name to an ordered
list of :class:`DataItem`.  Items are either plain values or grid files
(GFN + size); file items are registered on the grid by the enactor
before execution starts.

.. code-block:: xml

    <dataset name="bronze-12">
      <input name="floatingImage">
        <item gfn="gfn://images/patient01/t0.mhd" size="8178892"/>
        <item gfn="gfn://images/patient01/t1.mhd" size="8178892"/>
      </input>
      <input name="scale">
        <item value="8"/>
      </input>
    </dataset>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.grid.storage import LogicalFile
from repro.services.base import GridData

__all__ = ["DataItem", "InputDataSet", "dataset_from_xml", "dataset_to_xml", "DataSetError"]


class DataSetError(ValueError):
    """Malformed data-set document or inconsistent data set."""


@dataclass(frozen=True)
class DataItem:
    """One item of one workflow input: a value, a grid file, or both."""

    value: object = None
    gfn: Optional[str] = None
    size: float = 0.0

    def __post_init__(self) -> None:
        if self.value is None and self.gfn is None:
            raise DataSetError("a data item needs a value or a gfn (or both)")
        if self.size < 0:
            raise DataSetError(f"size must be >= 0, got {self.size}")

    @property
    def is_file(self) -> bool:
        """True when the item lives on the grid."""
        return self.gfn is not None

    def logical_file(self) -> Optional[LogicalFile]:
        """The grid file identity, if any."""
        if self.gfn is None:
            return None
        return LogicalFile(self.gfn, size=self.size)

    def grid_data(self) -> GridData:
        """Convert to the inter-service datum representation."""
        return GridData(value=self.value, file=self.logical_file())


class InputDataSet:
    """Ordered items per workflow source."""

    def __init__(self, name: str = "dataset") -> None:
        self.name = name
        self._inputs: Dict[str, List[DataItem]] = {}

    @classmethod
    def from_values(cls, name: str = "dataset", **inputs: Sequence[object]) -> "InputDataSet":
        """Build from keyword lists of plain values (tests & examples)."""
        dataset = cls(name=name)
        for input_name, values in inputs.items():
            for value in values:
                dataset.add(input_name, DataItem(value=value))
        return dataset

    def add(self, input_name: str, item: DataItem) -> None:
        """Append *item* to the stream of *input_name*."""
        self._inputs.setdefault(input_name, []).append(item)

    def add_file(self, input_name: str, gfn: str, size: float, value: object = None) -> None:
        """Append a grid-file item."""
        self.add(input_name, DataItem(value=value, gfn=gfn, size=size))

    def items(self, input_name: str) -> List[DataItem]:
        """The ordered items of one input (empty list if unknown)."""
        return list(self._inputs.get(input_name, []))

    def input_names(self) -> List[str]:
        """All input names, insertion order."""
        return list(self._inputs)

    def size(self, input_name: str) -> int:
        """Number of items on one input."""
        return len(self._inputs.get(input_name, ()))

    def files(self) -> Iterator[LogicalFile]:
        """Every distinct grid file referenced by the data set."""
        seen = set()
        for items in self._inputs.values():
            for item in items:
                file = item.logical_file()
                if file is not None and file.gfn not in seen:
                    seen.add(file.gfn)
                    yield file

    def restricted_to(self, count: int, input_names: Optional[Sequence[str]] = None) -> "InputDataSet":
        """A copy keeping only the first *count* items of selected inputs.

        Used by the experiment harness to sweep data-set sizes (12, 66,
        126 image pairs) from one master data set.  Inputs not selected
        keep all their items (e.g. scalar parameters).
        """
        if count < 0:
            raise DataSetError(f"count must be >= 0, got {count}")
        subset = InputDataSet(name=f"{self.name}[:{count}]")
        targets = set(input_names) if input_names is not None else None
        for input_name, items in self._inputs.items():
            keep = items[:count] if (targets is None or input_name in targets) else items
            for item in keep:
                subset.add(input_name, item)
        return subset

    def __len__(self) -> int:
        return sum(len(items) for items in self._inputs.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}[{len(v)}]" for k, v in self._inputs.items())
        return f"<InputDataSet {self.name!r} {inner}>"


def dataset_from_xml(text: str) -> InputDataSet:
    """Parse the XML data-set dialect."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DataSetError(f"not well-formed XML: {exc}") from exc
    if root.tag != "dataset":
        raise DataSetError(f"expected <dataset> root, got <{root.tag}>")
    dataset = InputDataSet(name=root.get("name", "dataset"))
    for input_node in root.findall("input"):
        input_name = input_node.get("name")
        if not input_name:
            raise DataSetError("<input> is missing its 'name' attribute")
        for item_node in input_node.findall("item"):
            gfn = item_node.get("gfn")
            raw_value = item_node.get("value")
            size = float(item_node.get("size", "0"))
            dataset.add(input_name, DataItem(value=raw_value, gfn=gfn, size=size))
    return dataset


def dataset_to_xml(dataset: InputDataSet) -> str:
    """Serialize to the XML dialect (round-trips with the parser)."""
    root = ET.Element("dataset", {"name": dataset.name})
    for input_name in dataset.input_names():
        input_node = ET.SubElement(root, "input", {"name": input_name})
        for item in dataset.items(input_name):
            attrs: Dict[str, str] = {}
            if item.value is not None:
                attrs["value"] = str(item.value)
            if item.gfn is not None:
                attrs["gfn"] = item.gfn
                attrs["size"] = str(item.size)
            ET.SubElement(input_node, "item", attrs)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")
