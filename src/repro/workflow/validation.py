"""Structural workflow validation.

``validate_workflow`` returns a list of :class:`ValidationIssue` —
errors make the workflow unenactable, warnings flag suspicious-but-
legal structure (e.g. an unconnected input port, which would simply
never fire).  The enactor refuses workflows with errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workflow.analysis import find_cycles
from repro.workflow.graph import ProcessorKind, Workflow

__all__ = ["ValidationIssue", "validate_workflow", "require_valid"]


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: severity ('error'|'warning'), subject, message."""

    severity: str
    processor: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.processor}: {self.message}"


def validate_workflow(workflow: Workflow) -> List[ValidationIssue]:
    """Run all structural checks; see module docstring."""
    issues: List[ValidationIssue] = []

    def error(processor: str, message: str) -> None:
        issues.append(ValidationIssue("error", processor, message))

    def warning(processor: str, message: str) -> None:
        issues.append(ValidationIssue("warning", processor, message))

    if not workflow.processors:
        error("<workflow>", "workflow has no processors")
        return issues

    for name, processor in workflow.processors.items():
        if processor.kind is ProcessorKind.SERVICE:
            if processor.service is None and processor.service_ref is None:
                error(name, "service processor bound to neither a service nor a service_ref")
            if not processor.effective_input_ports() and not processor.synchronization:
                warning(name, "service with no input ports will fire exactly once")
            # Unconnected ports.
            for port in processor.effective_input_ports():
                if not workflow.links_into(name, port):
                    warning(name, f"input port {port!r} is not fed by any link")
            for port in processor.effective_output_ports():
                if not workflow.links_out_of(name, port):
                    warning(name, f"output port {port!r} feeds nothing")
        elif processor.kind is ProcessorKind.SOURCE:
            if not workflow.links_out_of(name):
                warning(name, "source feeds nothing")
        elif processor.kind is ProcessorKind.SINK:
            if not workflow.links_into(name):
                warning(name, "sink receives nothing")

    # Synchronization processors must not sit on a cycle: a barrier that
    # waits for its own output stream can never fire.
    cycles = find_cycles(workflow)
    if cycles:
        on_cycle = {name for cycle in cycles for name in cycle}
        for name in sorted(on_cycle):
            if workflow.processor(name).synchronization:
                error(
                    name,
                    "synchronization processor lies on a cycle "
                    f"({' -> '.join(next(c for c in cycles if name in c))})",
                )

    # Coordination constraints referencing sources/sinks are suspicious.
    for before, after in workflow.coordination_constraints:
        if workflow.processor(after).kind is not ProcessorKind.SERVICE:
            warning(after, "coordination constraint targets a non-service processor")

    return issues


def require_valid(workflow: Workflow) -> None:
    """Raise ``ValueError`` listing every error-severity issue, if any."""
    errors = [i for i in validate_workflow(workflow) if i.severity == "error"]
    if errors:
        details = "; ".join(str(i) for i in errors)
        raise ValueError(f"workflow {workflow.name!r} is invalid: {details}")
