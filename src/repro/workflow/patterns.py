"""Canned workflow shapes used across tests, examples and benchmarks.

* :func:`chain_workflow` — a linear pipeline of ``n`` services (the
  shape behind the model equations on the critical path),
* :func:`figure1_workflow` — the paper's Figure 1: P1 feeding P2 and
  P3 in parallel branches (used by the Figure 4/5 execution diagrams),
* :func:`figure2_workflow` — the paper's Figure 2: the optimization
  loop where P2's input merges the source with P3's loop-back output,
* :func:`diamond_workflow` — fan-out/fan-in, for grouping-boundary and
  synchronization tests.

All builders take a service *factory* so callers decide what stands
behind each processor (local stub, grid-wrapped code, ...):
``factory(name, inputs, outputs) -> Service``.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.graph import Workflow

__all__ = [
    "ServiceFactory",
    "chain_workflow",
    "figure1_workflow",
    "figure2_workflow",
    "diamond_workflow",
]

ServiceFactory = Callable[[str, Tuple[str, ...], Tuple[str, ...]], object]


def chain_workflow(factory: ServiceFactory, length: int, name: str = "chain") -> Workflow:
    """``source -> P1 -> P2 -> ... -> Pn -> sink`` (each P has ports x -> y)."""
    if length < 1:
        raise ValueError(f"chain length must be >= 1, got {length}")
    builder = WorkflowBuilder(name).source("input")
    previous = "input:output"
    for i in range(1, length + 1):
        pname = f"P{i}"
        builder.service(pname, factory(pname, ("x",), ("y",)))
        builder.connect(previous, f"{pname}:x")
        previous = f"{pname}:y"
    builder.sink("result")
    builder.connect(previous, "result:input")
    return builder.build()


def figure1_workflow(factory: ServiceFactory, name: str = "figure1") -> Workflow:
    """The paper's Figure 1: P1 -> {P2, P3}, two parallel branches.

    P2 and P3 "may be executed in parallel" — the canonical workflow-
    parallelism example, and the workflow behind the execution diagrams
    of Figures 4 and 5.
    """
    return (
        WorkflowBuilder(name)
        .source("source")
        .service("P1", factory("P1", ("x",), ("y",)))
        .service("P2", factory("P2", ("x",), ("y",)))
        .service("P3", factory("P3", ("x",), ("y",)))
        .sink("sink2")
        .sink("sink3")
        .connect("source:output", "P1:x")
        .connect("P1:y", "P2:x")
        .connect("P1:y", "P3:x")
        .connect("P2:y", "sink2:input")
        .connect("P3:y", "sink3:input")
        .build()
    )


def figure2_workflow(factory: ServiceFactory, name: str = "figure2") -> Workflow:
    """The paper's Figure 2: a service-based workflow with a loop.

    ``P1`` computes the initial value of the convergence criterion;
    ``P2``'s input port **merges** P1's output with ``P3``'s loop-back
    port ("an input port can collect data from different sources");
    ``P3`` emits on its ``loop`` port to iterate one more time or on
    its ``done`` port to exit — "an optimization loop converging after
    a number of iterations determined at the execution time".
    Task-based DAG managers cannot express this shape (no loops in a
    DAG).
    """
    return (
        WorkflowBuilder(name)
        .source("source")
        .service("P1", factory("P1", ("x",), ("y",)))
        .service("P2", factory("P2", ("x",), ("y",)))
        .service("P3", factory("P3", ("x",), ("loop", "done")))
        .sink("sink")
        .connect("source:output", "P1:x")
        .connect("P1:y", "P2:x")  # initial criterion value
        .connect("P2:y", "P3:x")
        .connect("P3:loop", "P2:x")  # the loop-back arrow merges into P2:x
        .connect("P3:done", "sink:input")
        .build()
    )


def diamond_workflow(factory: ServiceFactory, name: str = "diamond") -> Workflow:
    """``source -> A -> {B, C} -> D -> sink`` with D dot-joining B and C."""
    return (
        WorkflowBuilder(name)
        .source("source")
        .service("A", factory("A", ("x",), ("y",)))
        .service("B", factory("B", ("x",), ("y",)))
        .service("C", factory("C", ("x",), ("y",)))
        .service("D", factory("D", ("left", "right"), ("y",)))
        .sink("sink")
        .connect("source:output", "A:x")
        .connect("A:y", "B:x")
        .connect("A:y", "C:x")
        .connect("B:y", "D:left")
        .connect("C:y", "D:right")
        .connect("D:y", "sink:input")
        .build()
    )
