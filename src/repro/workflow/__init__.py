"""Service-based workflow model (Section 2).

A workflow is a directed graph of *processors* (graph nodes) carrying
*ports*, connected by data *links* (graph arrows), plus optional
*coordination constraints* (control links used, as in the paper, to
mark data-synchronization barriers).  Two special processor kinds
exist: **data sources** (no input ports) and **data sinks** (no output
ports).

Unlike task-based DAGs, service-based workflows may contain **loops**
(Figure 2) — an input port can collect data from several sources and a
processor can feed an upstream processor, which is how iterative
optimization algorithms are composed.  The model therefore validates
structure without forbidding cycles; only executions that require
stream barriers (service parallelism disabled, synchronization
processors) demand acyclicity of the relevant region.
"""

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import DataItem, InputDataSet, dataset_from_xml, dataset_to_xml
from repro.workflow.graph import Link, PortRef, Processor, ProcessorKind, Workflow, WorkflowError
from repro.workflow.render import summarize, to_dot
from repro.workflow.scufl import workflow_from_scufl, workflow_to_scufl
from repro.workflow.validation import ValidationIssue, validate_workflow

__all__ = [
    "Workflow",
    "WorkflowError",
    "Processor",
    "ProcessorKind",
    "PortRef",
    "Link",
    "WorkflowBuilder",
    "InputDataSet",
    "DataItem",
    "dataset_from_xml",
    "dataset_to_xml",
    "workflow_from_scufl",
    "workflow_to_scufl",
    "validate_workflow",
    "ValidationIssue",
    "to_dot",
    "summarize",
]
