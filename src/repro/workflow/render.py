"""Workflow rendering: Graphviz DOT export and text summaries.

The paper presents its workflows as figures (Figures 1, 2 and 9);
users of the library need the same view of theirs.  ``to_dot``
produces a Graphviz document with the paper's visual conventions —
sources and sinks as plain ellipses, services as boxes,
synchronization processors double-boxed (the Figure 9 double square),
coordination constraints dashed — and ``summarize`` prints the compact
text inventory used by examples and reports.
"""

from __future__ import annotations

from typing import List

from repro.workflow.analysis import find_cycles, services_on_critical_path
from repro.workflow.graph import ProcessorKind, Workflow

__all__ = ["to_dot", "summarize"]


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(workflow: Workflow, include_ports: bool = False) -> str:
    """Render *workflow* as a Graphviz DOT document.

    With ``include_ports=True`` edges are labelled
    ``source_port -> target_port``; otherwise edges are bare (closer to
    the paper's figures).
    """
    lines: List[str] = [f'digraph "{_dot_escape(workflow.name)}" {{']
    lines.append("  rankdir=TB;")
    for name, processor in workflow.processors.items():
        label = _dot_escape(name)
        if processor.kind is ProcessorKind.SERVICE:
            peripheries = 2 if processor.synchronization else 1
            extra = ""
            if processor.iteration_strategy != "dot":
                extra = f"\\n[{processor.iteration_strategy}]"
            lines.append(
                f'  "{label}" [shape=box, peripheries={peripheries}, '
                f'label="{label}{extra}"];'
            )
        else:
            lines.append(f'  "{label}" [shape=ellipse];')
    for link in workflow.links:
        attrs = ""
        if include_ports:
            attrs = f' [label="{_dot_escape(link.source.port)} -> {_dot_escape(link.target.port)}"]'
        lines.append(
            f'  "{_dot_escape(link.source.processor)}" -> '
            f'"{_dot_escape(link.target.processor)}"{attrs};'
        )
    for before, after in workflow.coordination_constraints:
        lines.append(
            f'  "{_dot_escape(before)}" -> "{_dot_escape(after)}" [style=dashed];'
        )
    lines.append("}")
    return "\n".join(lines)


def summarize(workflow: Workflow) -> str:
    """A compact text inventory of the workflow."""
    sources = [p.name for p in workflow.sources()]
    sinks = [p.name for p in workflow.sinks()]
    services = [p.name for p in workflow.services()]
    sync = [p.name for p in workflow.services() if p.synchronization]
    cycles = find_cycles(workflow)
    lines = [
        f"workflow {workflow.name!r}:",
        f"  sources:  {', '.join(sources) or '-'}",
        f"  services: {', '.join(services) or '-'}",
        f"  sinks:    {', '.join(sinks) or '-'}",
        f"  links:    {len(workflow.links)}",
    ]
    if sync:
        lines.append(f"  synchronization barriers: {', '.join(sync)}")
    if workflow.coordination_constraints:
        constraints = ", ".join(f"{b}->{a}" for b, a in workflow.coordination_constraints)
        lines.append(f"  coordination constraints: {constraints}")
    if cycles:
        rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
        lines.append(f"  loops: {rendered}")
    else:
        lines.append(f"  critical path: {services_on_critical_path(workflow)} services (n_W)")
    return "\n".join(lines)
