"""Workflow graph analysis: paths, critical path, cycles, ordering.

Implements the quantities the performance model of Section 3.5 is
phrased in:

* a **path** is "a set of processors linking an input to an output",
* the **critical path** is "the longest path in terms of execution
  time", and ``n_W`` is the number of services on it,
* cycle detection separates DAG workflows (barrier-capable) from
  loop workflows (Figure 2), and
* topological ordering drives the task-based baseline expansion.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.workflow.graph import ProcessorKind, Workflow, WorkflowError

__all__ = [
    "processor_graph",
    "all_paths",
    "critical_path",
    "critical_path_length",
    "services_on_critical_path",
    "find_cycles",
    "topological_order",
    "sequential_chains",
]


def processor_graph(workflow: Workflow, constraints: bool = False) -> nx.DiGraph:
    """Collapse port-level links into a processor-level digraph.

    With ``constraints=True`` the coordination control links are
    included as edges too (they constrain order like data links do).
    """
    graph = nx.DiGraph()
    for name in workflow.processors:
        graph.add_node(name)
    for link in workflow.links:
        graph.add_edge(link.source.processor, link.target.processor)
    if constraints:
        for before, after in workflow.coordination_constraints:
            graph.add_edge(before, after)
    return graph


def all_paths(workflow: Workflow) -> List[List[str]]:
    """Every source-to-sink processor path (DAG workflows only)."""
    graph = processor_graph(workflow)
    if not nx.is_directed_acyclic_graph(graph):
        raise WorkflowError("all_paths requires an acyclic workflow")
    sources = [p.name for p in workflow.sources()]
    sinks = [p.name for p in workflow.sinks()]
    if not sources:  # degenerate graphs: start anywhere with no predecessor
        sources = [n for n in graph.nodes if graph.in_degree(n) == 0]
    if not sinks:
        sinks = [n for n in graph.nodes if graph.out_degree(n) == 0]
    paths: List[List[str]] = []
    for src in sources:
        for dst in sinks:
            paths.extend(nx.all_simple_paths(graph, src, dst))
            if src == dst:
                paths.append([src])
    return paths


def critical_path(
    workflow: Workflow, durations: Optional[Mapping[str, float]] = None
) -> List[str]:
    """The source-to-sink path maximizing total duration.

    *durations* maps processor name to its per-invocation execution
    time; missing services default to 1.0 and sources/sinks to 0.0, so
    the unweighted call returns the path with the most services — the
    ``n_W`` of the paper's model under its constant-time hypothesis.
    """
    graph = processor_graph(workflow)
    if not nx.is_directed_acyclic_graph(graph):
        raise WorkflowError("critical_path requires an acyclic workflow")

    def weight(name: str) -> float:
        if durations is not None and name in durations:
            return float(durations[name])
        kind = workflow.processor(name).kind
        return 1.0 if kind is ProcessorKind.SERVICE else 0.0

    best: Dict[str, Tuple[float, List[str]]] = {}
    for name in nx.topological_sort(graph):
        incoming = [best[p] for p in graph.predecessors(name)]
        if incoming:
            base_cost, base_path = max(incoming, key=lambda item: item[0])
        else:
            base_cost, base_path = 0.0, []
        best[name] = (base_cost + weight(name), base_path + [name])
    if not best:
        return []
    # A path links an input to an output: only terminal nodes (no
    # successors) can end the critical path.
    terminals = [n for n in graph.nodes if graph.out_degree(n) == 0]
    return max((best[n] for n in terminals), key=lambda item: item[0])[1]


def critical_path_length(
    workflow: Workflow, durations: Optional[Mapping[str, float]] = None
) -> float:
    """Total duration along the critical path."""
    path = critical_path(workflow, durations)

    def weight(name: str) -> float:
        if durations is not None and name in durations:
            return float(durations[name])
        return 1.0 if workflow.processor(name).kind is ProcessorKind.SERVICE else 0.0

    return sum(weight(name) for name in path)


def services_on_critical_path(workflow: Workflow) -> int:
    """``n_W``: the number of services on the critical path (Section 3.5.1)."""
    path = critical_path(workflow)
    return sum(
        1 for name in path if workflow.processor(name).kind is ProcessorKind.SERVICE
    )


def find_cycles(workflow: Workflow) -> List[List[str]]:
    """Simple cycles of the data-link graph ([] for DAG workflows)."""
    graph = processor_graph(workflow)
    return [list(cycle) for cycle in nx.simple_cycles(graph)]


def topological_order(workflow: Workflow, constraints: bool = True) -> List[str]:
    """A deterministic topological order (lexicographic tie-breaks)."""
    graph = processor_graph(workflow, constraints=constraints)
    if not nx.is_directed_acyclic_graph(graph):
        raise WorkflowError("topological_order requires an acyclic workflow")
    return list(nx.lexicographical_topological_sort(graph))


def sequential_chains(workflow: Workflow) -> List[List[str]]:
    """Maximal chains of service processors eligible for job grouping.

    A link ``u -> v`` is *chainable* when (Section 3.6's conditions made
    precise):

    * ``u`` and ``v`` are both service processors,
    * neither is a synchronization barrier,
    * both are marked groupable,
    * both use the **dot** iteration strategy (a cross product inside a
      group would change the number of invocations, i.e. the semantics),
    * **every** data link out of ``u`` targets ``v`` (so no other
      processor — and no sink — observes u's outputs), and
    * grouping cannot skip data ``v`` needs: this follows from the
      previous bullet since any other u-to-v path would need an extra
      out-edge of ``u``.

    Chains are maximal runs of chainable links; every processor belongs
    to at most one chain.  Returned in workflow insertion order of the
    chain heads; singleton "chains" are omitted.
    """
    next_in_chain: Dict[str, str] = {}
    has_upstream: Dict[str, bool] = {}

    def chainable(u: str, v: str) -> bool:
        pu = workflow.processor(u)
        pv = workflow.processor(v)
        if pu.kind is not ProcessorKind.SERVICE or pv.kind is not ProcessorKind.SERVICE:
            return False
        if pu.synchronization or pv.synchronization:
            return False
        if not (pu.groupable and pv.groupable):
            return False
        if pu.iteration_strategy != "dot" or pv.iteration_strategy != "dot":
            return False
        out_links = workflow.links_out_of(u)
        if not out_links:
            return False
        return all(link.target.processor == v for link in out_links)

    for name in workflow.processors:
        successors = workflow.successors(name)
        if len(successors) == 1 and chainable(name, successors[0]):
            succ = successors[0]
            if succ in next_in_chain.values():
                # succ already claimed by another chain; only one
                # predecessor may claim it (first in insertion order wins)
                continue
            next_in_chain[name] = succ
            has_upstream[succ] = True

    chains: List[List[str]] = []
    for name in workflow.processors:
        if name in next_in_chain and not has_upstream.get(name, False):
            chain = [name]
            while chain[-1] in next_in_chain:
                chain.append(next_in_chain[chain[-1]])
            chains.append(chain)
    return chains
