"""Scufl-dialect workflow documents.

MOTEUR adopted "the Simple Concept Unified Flow Language (Scufl) used
by the Taverna workbench" (Section 4.1) including its *coordination
constraints* — control links that "enforce an order of execution
between two services even if there is no data dependency between
them", which the paper reuses to mark synchronization barriers.

We implement a compact XML dialect carrying exactly the model of
:mod:`repro.workflow.graph`:

.. code-block:: xml

    <scufl name="bronze-standard">
      <processor name="crestLines" kind="service" service="crestLines"
                 iteration="dot" synchronization="false">
        <inport name="floating_image"/> <inport name="reference_image"/>
        <inport name="scale"/>
        <outport name="crest_reference"/> <outport name="crest_floating"/>
      </processor>
      <processor name="floatingImage" kind="source">
        <outport name="output"/>
      </processor>
      <link source="floatingImage:output" sink="crestLines:floating_image"/>
      <coordination from="crestMatch" to="MultiTransfoTest"/>
    </scufl>

Documents are symbolic: processors carry a ``service`` *reference*
resolved against a :class:`~repro.services.registry.ServiceRegistry` at
enactment time (`bind_services`).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.services.registry import ServiceRegistry
from repro.workflow.graph import (
    Processor,
    ProcessorKind,
    Workflow,
    WorkflowError,
)

__all__ = ["workflow_from_scufl", "workflow_to_scufl", "bind_services", "ScuflError"]


class ScuflError(WorkflowError):
    """Malformed Scufl document."""


_BOOL = {"true": True, "false": False, "1": True, "0": False}


def _parse_bool(text: Optional[str], default: bool = False) -> bool:
    if text is None:
        return default
    try:
        return _BOOL[text.strip().lower()]
    except KeyError:
        raise ScuflError(f"expected boolean, got {text!r}") from None


def workflow_from_scufl(text: str) -> Workflow:
    """Parse a Scufl-dialect document into a symbolic workflow."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ScuflError(f"not well-formed XML: {exc}") from exc
    if root.tag != "scufl":
        raise ScuflError(f"expected <scufl> root, got <{root.tag}>")
    workflow = Workflow(name=root.get("name", "scufl-workflow"))

    for node in root.findall("processor"):
        name = node.get("name")
        if not name:
            raise ScuflError("<processor> is missing its 'name' attribute")
        kind_text = node.get("kind", "service")
        try:
            kind = ProcessorKind(kind_text)
        except ValueError:
            raise ScuflError(
                f"processor {name!r}: unknown kind {kind_text!r}"
            ) from None
        inports = tuple(p.get("name") for p in node.findall("inport"))
        outports = tuple(p.get("name") for p in node.findall("outport"))
        if any(p is None for p in inports) or any(p is None for p in outports):
            raise ScuflError(f"processor {name!r}: port without a name")
        workflow.add_processor(
            Processor(
                name=name,
                kind=kind,
                input_ports=inports,
                output_ports=outports,
                service_ref=node.get("service") if kind is ProcessorKind.SERVICE else None,
                iteration_strategy=node.get("iteration", "dot"),
                synchronization=_parse_bool(node.get("synchronization")),
                groupable=_parse_bool(node.get("groupable"), default=True),
            )
        )

    for node in root.findall("link"):
        source = node.get("source")
        sink = node.get("sink")
        if not source or not sink:
            raise ScuflError("<link> needs 'source' and 'sink' attributes")
        workflow.add_link(source, sink)

    for node in root.findall("coordination"):
        before = node.get("from")
        after = node.get("to")
        if not before or not after:
            raise ScuflError("<coordination> needs 'from' and 'to' attributes")
        workflow.add_coordination_constraint(before, after)

    return workflow


def workflow_to_scufl(workflow: Workflow) -> str:
    """Serialize a workflow (symbolic or bound) to the Scufl dialect."""
    root = ET.Element("scufl", {"name": workflow.name})
    for name, processor in workflow.processors.items():
        attrs = {"name": name, "kind": processor.kind.value}
        if processor.kind is ProcessorKind.SERVICE:
            service_ref = processor.service_ref
            if service_ref is None and processor.service is not None:
                service_ref = processor.service.name
            if service_ref is not None:
                attrs["service"] = service_ref
            attrs["iteration"] = processor.iteration_strategy
            if processor.synchronization:
                attrs["synchronization"] = "true"
            if not processor.groupable:
                attrs["groupable"] = "false"
        node = ET.SubElement(root, "processor", attrs)
        for port in processor.effective_input_ports():
            ET.SubElement(node, "inport", {"name": port})
        for port in processor.effective_output_ports():
            ET.SubElement(node, "outport", {"name": port})
    for link in workflow.links:
        ET.SubElement(root, "link", {"source": str(link.source), "sink": str(link.target)})
    for before, after in workflow.coordination_constraints:
        ET.SubElement(root, "coordination", {"from": before, "to": after})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def bind_services(workflow: Workflow, registry: ServiceRegistry) -> Workflow:
    """Resolve every ``service_ref`` against *registry*; returns a bound copy.

    The bound services' ports must match the symbolic declaration —
    mismatches are configuration errors and raise.
    """
    bound = Workflow(name=workflow.name)
    for name, processor in workflow.processors.items():
        if processor.kind is ProcessorKind.SERVICE and processor.service is None:
            if processor.service_ref is None:
                raise WorkflowError(f"processor {name!r} has no service_ref to bind")
            service = registry.resolve(processor.service_ref)
            if tuple(service.input_ports) != tuple(processor.input_ports) or tuple(
                service.output_ports
            ) != tuple(processor.output_ports):
                raise WorkflowError(
                    f"processor {name!r}: service {service.name!r} ports "
                    f"({service.input_ports} -> {service.output_ports}) do not match "
                    f"declaration ({processor.input_ports} -> {processor.output_ports})"
                )
            bound.add_processor(processor.with_service(service))
        else:
            bound.add_processor(processor)
    for link in workflow.links:
        bound.add_link(link.source, link.target)
    bound.coordination_constraints = list(workflow.coordination_constraints)
    return bound
