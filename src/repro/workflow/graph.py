"""The workflow graph: processors, ports, links, constraints.

Terminology follows Section 2.1 of the paper:

* a **processor** represents an application component (or a data
  source/sink),
* processors carry named **input and output ports**,
* **oriented arrows connect output ports to input ports**,
* **data sources** have no input ports, **data sinks** no output ports,
* **iteration strategies** (dot/cross, Section 2.2) say how a
  multi-port processor combines its input streams,
* **synchronization processors** (Section 2.3) wait for their whole
  input streams (statistical operations like the Bronze Standard's
  MultiTransfoTest),
* **coordination constraints** (Section 4.1) are control links imposing
  execution order without a data dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

__all__ = [
    "ProcessorKind",
    "PortRef",
    "Processor",
    "Link",
    "Workflow",
    "WorkflowError",
    "ITERATION_STRATEGIES",
]

#: the two strategies the paper implements ("sufficient for most applications")
ITERATION_STRATEGIES = ("dot", "cross")


class WorkflowError(ValueError):
    """Structural misuse of the workflow model."""


class ProcessorKind(Enum):
    """The three processor roles."""

    SOURCE = "source"
    SINK = "sink"
    SERVICE = "service"


@dataclass(frozen=True)
class PortRef:
    """A (processor, port) endpoint of a link."""

    processor: str
    port: str

    def __str__(self) -> str:
        return f"{self.processor}:{self.port}"

    @staticmethod
    def parse(text: str) -> "PortRef":
        """Parse ``processor:port`` notation."""
        if ":" not in text:
            raise WorkflowError(f"port reference {text!r} must look like 'processor:port'")
        processor, port = text.split(":", 1)
        if not processor or not port:
            raise WorkflowError(f"empty component in port reference {text!r}")
        return PortRef(processor, port)


@dataclass(frozen=True)
class Processor:
    """One node of the workflow graph.

    ``service`` binds the processor to a live
    :class:`~repro.services.base.Service`; ``service_ref`` keeps a
    symbolic name instead (Scufl documents are symbolic and get bound
    to services through a registry at enactment time).
    """

    name: str
    kind: ProcessorKind = ProcessorKind.SERVICE
    input_ports: Tuple[str, ...] = ()
    output_ports: Tuple[str, ...] = ()
    service: Optional[object] = None  # Service; typed loosely to avoid cycles
    service_ref: Optional[str] = None
    iteration_strategy: str = "dot"
    synchronization: bool = False
    groupable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("processor needs a non-empty name")
        if self.iteration_strategy not in ITERATION_STRATEGIES:
            raise WorkflowError(
                f"{self.name}: unknown iteration strategy "
                f"{self.iteration_strategy!r}; options: {ITERATION_STRATEGIES}"
            )
        if self.kind is ProcessorKind.SOURCE and self.input_ports:
            raise WorkflowError(f"source {self.name!r} cannot have input ports")
        if self.kind is ProcessorKind.SINK and self.output_ports:
            raise WorkflowError(f"sink {self.name!r} cannot have output ports")
        if len(set(self.input_ports)) != len(self.input_ports):
            raise WorkflowError(f"{self.name}: duplicate input ports")
        if len(set(self.output_ports)) != len(self.output_ports):
            raise WorkflowError(f"{self.name}: duplicate output ports")
        if self.service is not None:
            svc_in = tuple(self.service.input_ports)
            svc_out = tuple(self.service.output_ports)
            if self.input_ports and tuple(self.input_ports) != svc_in:
                raise WorkflowError(
                    f"{self.name}: declared input ports {self.input_ports} do not "
                    f"match service ports {svc_in}"
                )
            if self.output_ports and tuple(self.output_ports) != svc_out:
                raise WorkflowError(
                    f"{self.name}: declared output ports {self.output_ports} do not "
                    f"match service ports {svc_out}"
                )

    def with_service(self, service: object) -> "Processor":
        """Bind (or rebind) the live service, keeping everything else."""
        return replace(
            self,
            service=service,
            input_ports=tuple(service.input_ports),
            output_ports=tuple(service.output_ports),
        )

    def effective_input_ports(self) -> Tuple[str, ...]:
        """Ports from the service when bound, else the declared ones."""
        if self.service is not None:
            return tuple(self.service.input_ports)
        return self.input_ports

    def effective_output_ports(self) -> Tuple[str, ...]:
        """Ports from the service when bound, else the declared ones."""
        if self.service is not None:
            return tuple(self.service.output_ports)
        return self.output_ports


@dataclass(frozen=True)
class Link:
    """A data dependency: an output port feeding an input port."""

    source: PortRef
    target: PortRef

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"


class Workflow:
    """A mutable workflow graph under construction, then enacted."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._processors: Dict[str, Processor] = {}
        self._links: List[Link] = []
        #: control links: (before, after) processor-name pairs
        self.coordination_constraints: List[Tuple[str, str]] = []

    # -- construction ---------------------------------------------------
    def add_processor(self, processor: Processor) -> Processor:
        """Add a node; duplicate names are an error."""
        if processor.name in self._processors:
            raise WorkflowError(f"duplicate processor name {processor.name!r}")
        self._processors[processor.name] = processor
        return processor

    def add_source(self, name: str, port: str = "output") -> Processor:
        """Convenience: add a data source with one output port."""
        return self.add_processor(
            Processor(name=name, kind=ProcessorKind.SOURCE, output_ports=(port,))
        )

    def add_sink(self, name: str, port: str = "input") -> Processor:
        """Convenience: add a data sink with one input port."""
        return self.add_processor(
            Processor(name=name, kind=ProcessorKind.SINK, input_ports=(port,))
        )

    def add_link(self, source: "PortRef | str", target: "PortRef | str") -> Link:
        """Connect an output port to an input port (``'P1:out'`` notation ok)."""
        src = PortRef.parse(source) if isinstance(source, str) else source
        dst = PortRef.parse(target) if isinstance(target, str) else target
        self._check_endpoint(src, output=True)
        self._check_endpoint(dst, output=False)
        link = Link(source=src, target=dst)
        if link in self._links:
            raise WorkflowError(f"duplicate link {link}")
        self._links.append(link)
        return link

    def add_coordination_constraint(self, before: str, after: str) -> None:
        """Enforce that *after* runs only once *before* is inactive.

        The paper uses Scufl coordination constraints "to identify
        services that require data synchronization" — adding one marks
        the *after* processor as a synchronization barrier with respect
        to *before*.
        """
        for name in (before, after):
            if name not in self._processors:
                raise WorkflowError(f"coordination constraint names unknown processor {name!r}")
        if before == after:
            raise WorkflowError("a coordination constraint cannot be reflexive")
        self.coordination_constraints.append((before, after))

    def replace_processor(self, name: str, processor: Processor) -> None:
        """Swap the node registered under *name* (used by service binding)."""
        if name not in self._processors:
            raise WorkflowError(f"no processor named {name!r}")
        if processor.name != name:
            raise WorkflowError(
                f"replacement must keep the name ({name!r} != {processor.name!r})"
            )
        self._processors[name] = processor

    def _check_endpoint(self, ref: PortRef, output: bool) -> None:
        processor = self._processors.get(ref.processor)
        if processor is None:
            raise WorkflowError(f"link references unknown processor {ref.processor!r}")
        ports = (
            processor.effective_output_ports() if output else processor.effective_input_ports()
        )
        if ref.port not in ports:
            direction = "output" if output else "input"
            raise WorkflowError(
                f"{ref.processor!r} has no {direction} port {ref.port!r} "
                f"(has {list(ports)})"
            )

    # -- inspection --------------------------------------------------------
    @property
    def processors(self) -> Dict[str, Processor]:
        """Name -> processor, insertion-ordered (read via this property)."""
        return dict(self._processors)

    @property
    def links(self) -> List[Link]:
        """All data links, insertion-ordered."""
        return list(self._links)

    def processor(self, name: str) -> Processor:
        """Look up one processor by name."""
        try:
            return self._processors[name]
        except KeyError:
            raise WorkflowError(f"no processor named {name!r}") from None

    def sources(self) -> List[Processor]:
        """All data sources, insertion order."""
        return [p for p in self._processors.values() if p.kind is ProcessorKind.SOURCE]

    def sinks(self) -> List[Processor]:
        """All data sinks, insertion order."""
        return [p for p in self._processors.values() if p.kind is ProcessorKind.SINK]

    def services(self) -> List[Processor]:
        """All service processors, insertion order."""
        return [p for p in self._processors.values() if p.kind is ProcessorKind.SERVICE]

    def links_into(self, processor: str, port: Optional[str] = None) -> List[Link]:
        """Data links targeting *processor* (optionally one port)."""
        return [
            l
            for l in self._links
            if l.target.processor == processor and (port is None or l.target.port == port)
        ]

    def links_out_of(self, processor: str, port: Optional[str] = None) -> List[Link]:
        """Data links leaving *processor* (optionally one port)."""
        return [
            l
            for l in self._links
            if l.source.processor == processor and (port is None or l.source.port == port)
        ]

    def predecessors(self, processor: str) -> List[str]:
        """Distinct upstream processor names (data links only), stable order."""
        seen: Set[str] = set()
        out: List[str] = []
        for link in self.links_into(processor):
            if link.source.processor not in seen:
                seen.add(link.source.processor)
                out.append(link.source.processor)
        return out

    def successors(self, processor: str) -> List[str]:
        """Distinct downstream processor names (data links only), stable order."""
        seen: Set[str] = set()
        out: List[str] = []
        for link in self.links_out_of(processor):
            if link.target.processor not in seen:
                seen.add(link.target.processor)
                out.append(link.target.processor)
        return out

    def to_networkx(self) -> "nx.MultiDiGraph":
        """Export to a networkx multigraph (analysis layer input)."""
        graph = nx.MultiDiGraph(name=self.name)
        for name, processor in self._processors.items():
            graph.add_node(name, kind=processor.kind.value, processor=processor)
        for link in self._links:
            graph.add_edge(
                link.source.processor,
                link.target.processor,
                source_port=link.source.port,
                target_port=link.target.port,
            )
        for before, after in self.coordination_constraints:
            graph.add_edge(before, after, constraint=True)
        return graph

    def is_dag(self) -> bool:
        """True when the data-link graph has no directed cycle."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._processors)
        graph.add_edges_from(
            (l.source.processor, l.target.processor) for l in self._links
        )
        return nx.is_directed_acyclic_graph(graph)

    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Shallow structural copy (processors are immutable, so shared)."""
        duplicate = Workflow(name=name or self.name)
        for processor in self._processors.values():
            duplicate.add_processor(processor)
        for link in self._links:
            duplicate.add_link(link.source, link.target)
        duplicate.coordination_constraints = list(self.coordination_constraints)
        return duplicate

    def __repr__(self) -> str:
        return (
            f"<Workflow {self.name!r} processors={len(self._processors)} "
            f"links={len(self._links)}>"
        )
