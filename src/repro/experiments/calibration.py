"""Calibration constants and the paper's published numbers.

**Published measurements** (for paper-vs-measured comparison only —
nothing in the simulator is fitted to individual cells):

* Table 1 — execution time in seconds per configuration and input size,
* Table 2 — y-intercept (s) and slope (s/data set) of the regression
  lines over Table 1's rows.

**Calibration** of the simulated testbed: the only quantities the paper
publishes about the infrastructure are the overhead regime ("around 10
minutes ± 5 minutes"), the job counts (6 per image pair), and the image
sizes; per-algorithm run times are chosen at realistic magnitudes (see
`repro.apps.registration.DEFAULT_PROFILES`).  Reproduction therefore
targets the *shape* of the results — configuration ordering, which
metric each optimization moves, near-linearity in the input size — not
the absolute seconds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.grid.middleware import Grid
from repro.grid.testbeds import egee_like_testbed
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams
from repro.util.units import MINUTE

__all__ = [
    "PAPER_SIZES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_NW",
    "make_experiment_grid",
]

#: input data-set sizes (image pairs) of Section 4.4
PAPER_SIZES: Tuple[int, int, int] = (12, 66, 126)

#: services on the critical path (Section 5.1)
PAPER_NW = 5

#: Table 1 — execution time (s) per configuration and size
PAPER_TABLE1: Dict[str, Dict[int, float]] = {
    "NOP": {12: 32855, 66: 76354, 126: 133493},
    "JG": {12: 22990, 66: 68427, 126: 125503},
    "SP": {12: 18302, 66: 63360, 126: 120407},
    "DP": {12: 17690, 66: 26437, 126: 34027},
    "SP+DP": {12: 7825, 66: 12143, 126: 17823},
    "SP+DP+JG": {12: 5524, 66: 9053, 126: 14547},
}

#: Table 2 — (y-intercept seconds, slope seconds per data set)
PAPER_TABLE2: Dict[str, Tuple[float, float]] = {
    "NOP": (20784, 884),
    "JG": (11093, 900),
    "SP": (6382, 897),
    "DP": (16328, 143),
    "SP+DP": (6625, 88),
    "SP+DP+JG": (4310, 79),
}


def make_experiment_grid(
    engine: Engine,
    streams: Optional[RandomStreams] = None,
    overhead_mean: float = 10 * MINUTE,
    overhead_sigma: float = 5 * MINUTE,
    n_sites: int = 10,
    workers_per_ce: int = 80,
    failure_probability: float = 0.02,
) -> Grid:
    """The testbed behind the Table 1 / Figure 10 reproduction.

    An EGEE-like grid with enough worker slots to satisfy hypothesis H2
    at the largest size (126 pairs × 6 jobs ≈ 760 concurrent jobs needs
    ≥ 800 slots) and the paper's overhead regime.  Background load is
    off by default — the heavy-tailed ``queue_extra`` overhead term
    already carries the multi-user variability, and keeping the load
    exogenous makes sweeps reproducible job-for-job.
    """
    streams = streams or RandomStreams(seed=0)
    return egee_like_testbed(
        engine,
        streams,
        n_sites=n_sites,
        workers_per_ce=workers_per_ce,
        slots_per_worker=1,
        overhead_mean=overhead_mean,
        overhead_sigma=overhead_sigma,
        failure_probability=failure_probability,
        with_background_load=False,
    )
