"""Post-hoc analysis of grid job records.

The paper reads its measurements through aggregate grid behaviour: the
total running time ("9 days and 8 hours" for the full experiment), the
overhead regime, and where each optimization's gain physically comes
from.  This module computes those views from the
:class:`~repro.grid.job.JobRecord` s a run leaves behind:

* :func:`job_statistics` — per-run totals: wall time consumed on the
  grid, compute vs transfer vs overhead split, attempt counts,
* :func:`overhead_breakdown` — the overhead decomposed into the
  lifecycle phases (submission -> matched -> queued -> running),
* :func:`per_service_statistics` — the same, grouped by the service
  that submitted each job (uses the job tags the wrapper sets).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.grid.job import JobRecord, JobState

__all__ = [
    "JobStatistics",
    "PhaseBreakdown",
    "job_statistics",
    "overhead_breakdown",
    "per_service_statistics",
]


@dataclass(frozen=True)
class JobStatistics:
    """Aggregate statistics over a set of completed jobs."""

    jobs: int
    total_attempts: int
    #: sum of per-job submission-to-done spans (grid-seconds consumed)
    total_grid_time: float
    total_execution_time: float
    total_transfer_time: float
    total_overhead: float
    mean_overhead: float
    std_overhead: float
    max_overhead: float

    @property
    def overhead_fraction(self) -> float:
        """Share of grid time that was pure middleware overhead."""
        if self.total_grid_time == 0:
            return 0.0
        return self.total_overhead / self.total_grid_time

    @property
    def retry_fraction(self) -> float:
        """Extra attempts per job beyond the first."""
        if self.jobs == 0:
            return 0.0
        return (self.total_attempts - self.jobs) / self.jobs


@dataclass(frozen=True)
class PhaseBreakdown:
    """Mean seconds spent in each middleware phase (final attempts)."""

    submission_to_matched: float
    matched_to_queued: float
    queued_to_running: float
    running_to_done: float

    @property
    def total(self) -> float:
        """Sum of the phase means."""
        return (
            self.submission_to_matched
            + self.matched_to_queued
            + self.queued_to_running
            + self.running_to_done
        )


def _completed(records: Iterable[JobRecord]) -> List[JobRecord]:
    return [r for r in records if r.state is JobState.DONE]


def job_statistics(records: Iterable[JobRecord]) -> JobStatistics:
    """Aggregate completed-job statistics (see class docstring)."""
    done = _completed(records)
    if not done:
        return JobStatistics(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    overheads = np.array([r.overhead for r in done], dtype=float)
    return JobStatistics(
        jobs=len(done),
        total_attempts=sum(r.attempts for r in done),
        total_grid_time=float(sum(r.makespan for r in done)),
        total_execution_time=float(sum(r.execution_time for r in done)),
        total_transfer_time=float(
            sum(r.stage_in_time + r.stage_out_time for r in done)
        ),
        total_overhead=float(overheads.sum()),
        mean_overhead=float(overheads.mean()),
        std_overhead=float(overheads.std(ddof=1)) if len(done) > 1 else 0.0,
        max_overhead=float(overheads.max()),
    )


def overhead_breakdown(records: Iterable[JobRecord]) -> Optional[PhaseBreakdown]:
    """Mean per-phase latencies over completed jobs (None if no jobs).

    Phases use the *last* entry of each state so resubmitted jobs
    report their successful attempt.
    """
    done = _completed(records)
    phases: Dict[str, List[float]] = defaultdict(list)
    for record in done:
        submitted = record.last(JobState.SUBMITTED)
        matched = record.last(JobState.MATCHED)
        queued = record.last(JobState.QUEUED)
        running = record.last(JobState.RUNNING)
        finished = record.last(JobState.DONE)
        if None in (submitted, matched, queued, running, finished):
            continue
        phases["s2m"].append(matched - submitted)
        phases["m2q"].append(queued - matched)
        phases["q2r"].append(running - queued)
        phases["r2d"].append(finished - running)
    if not phases:
        return None
    return PhaseBreakdown(
        submission_to_matched=float(np.mean(phases["s2m"])),
        matched_to_queued=float(np.mean(phases["m2q"])),
        queued_to_running=float(np.mean(phases["q2r"])),
        running_to_done=float(np.mean(phases["r2d"])),
    )


def per_service_statistics(records: Iterable[JobRecord]) -> Dict[str, JobStatistics]:
    """Group :func:`job_statistics` by the submitting service tag.

    Jobs without a ``service`` tag (e.g. background load) are grouped
    under ``"<untagged>"``.
    """
    by_service: Dict[str, List[JobRecord]] = defaultdict(list)
    for record in records:
        service = record.description.tags.get("service", "<untagged>")
        by_service[service].append(record)
    return {
        service: job_statistics(group) for service, group in sorted(by_service.items())
    }
