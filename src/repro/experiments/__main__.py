"""Command-line entry point: reproduce the paper from a shell.

Usage::

    python -m repro.experiments table1  [--sizes 12 66 126] [--seed 42]
    python -m repro.experiments diagrams
    python -m repro.experiments bronze  [--pairs 12] [--config SP+DP+JG]
                                        [--trace run.jsonl]
                                        [--chrome-trace run.trace.json]
                                        [--monitor] [--alerts alerts.jsonl]
                                        [--feedback] [--testbed faulty]
                                        [--best-effort] [--strict]
                                        [--journal run.wal] [--resume]
                                        [--crash-after N]
    python -m repro.experiments report-failures [--trace run.jsonl]
                                        [--testbed faulty] [--strict]
    python -m repro.experiments report-health [--trace run.jsonl]
                                        [--testbed faulty]
    python -m repro.experiments report-durability [--testbed chaotic]
                                        [--no-repair] [--strict]
    python -m repro.experiments report-trace run.jsonl [--policy SP+DP]
    python -m repro.experiments report-critical-path [--config SP+DP]
                                        [--trace run.jsonl]
    python -m repro.experiments gantt   [--config SP+DP] [--width 100]
    python -m repro.experiments report-dataflow [--config SP+DP+JG]
                                        [--top 10] [--dot dataflow.dot]
    python -m repro.experiments record-run --store runstore [--config SP+DP]
                                        [--out baseline.json]
    python -m repro.experiments compare-runs --store runstore \
                                        run-0001 latest [--budget-makespan 0.05]
                                        [--budget-bytes 0.0]
    python -m repro.experiments profile record --out profile.json
                                        [--clock deterministic|wall] [--memory]
    python -m repro.experiments profile report profile.json
    python -m repro.experiments profile diff baseline.json candidate.json
    python -m repro.experiments profile flame profile.json --out profile.folded
                                        [--format collapsed|speedscope]

``table1`` runs the full sweep and prints Tables 1 and 2, the Section
5.2/5.3 ratios and the paper comparison; ``diagrams`` regenerates the
Figure 4/5/6 execution diagrams; ``bronze`` runs one Bronze Standard
enactment and reports its outputs (``--trace`` exports the span stream
as JSONL, ``--chrome-trace`` as Chrome trace-event JSON for Perfetto;
``--monitor`` attaches the live run monitor for streaming progress/ETA
lines, ``--alerts`` writes its alert log as JSONL, ``--feedback``
closes the loop into the broker, and ``--testbed faulty`` runs on the
fault-injected grid; ``--best-effort`` contains per-item failures into
a dead-letter report instead of aborting — add ``--strict`` to exit 3
on any loss; ``--journal`` keeps a crash-safe WAL, ``--resume`` replays
it, and ``--crash-after N`` simulates an interrupt, exiting 4);
``report-failures`` prints the dead-letter table either from a fresh
best-effort run or from an exported trace; ``report-health`` prints per-CE health scores and
the alert log, either from a fresh run or by replaying an exported
trace; ``report-trace`` renders the phase breakdown and model-drift
tables of a previously exported JSONL trace.

The analytics commands work either on a live enactment (default: the
Bronze Standard on the EGEE-like testbed) or on an exported JSONL trace
(``--trace``): ``report-critical-path`` prints the observed gating
chain with per-phase attribution and the diff against the static
prediction; ``gantt`` renders per-processor and per-CE lanes as ASCII.
``report-dataflow`` runs one instrumented enactment with the
:class:`~repro.observability.dataflow.DataFlowCollector` attached and
prints the data plane's ledger — top-talker links with ASCII bandwidth
sparklines, per-service and per-purpose byte shares, per-site storage —
and exports the site-to-site data-flow graph as DOT (``--dot``).
``record-run`` appends one summary to a run store and ``compare-runs``
checks a candidate run against a baseline within budgets — it exits
non-zero on regression, which is the CI gate; when a throughput budget
trips and both rows carry a ``perf.profile.*`` breakdown, it also
names the top regressed components; ``--budget-bytes`` additionally
gates growth of ``bytes.total`` / ``bytes.enactor_moved``.

The ``profile`` family drives the hot-path profiler
(:mod:`repro.observability.profiling`): ``record`` runs one Bronze
Standard enactment with the profiler installed across the whole stack
(deterministic tick clock by default, so the file is byte-identical
across same-seed runs), ``report`` renders a saved profile,
``diff`` ranks per-component movement between two profiles, and
``flame`` exports collapsed-stack or speedscope flamegraphs.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import execution_diagram
from repro.observability.logbridge import cli_logger
from repro.services.base import LocalService

#: the Bronze Standard's critical path (Baladin/Yasmina run on parallel
#: branches; MultiTransfoTest is a synchronization barrier) — the rows
#: of the Section 3.5 T matrix for drift reporting.
BRONZE_CRITICAL_PATH = ("crestLines", "crestMatch", "PFMatchICP", "PFRegister")


def _config_by_label(label: str) -> OptimizationConfig:
    table = {c.label: c for c in OptimizationConfig.paper_configurations()}
    try:
        return table[label]
    except KeyError:
        raise SystemExit(
            f"unknown configuration {label!r}; options: {', '.join(table)}"
        ) from None


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_sweep
    from repro.experiments.reporting import (
        check_ordering,
        format_ratios,
        format_table1,
        format_table2,
        paper_comparison,
    )

    out = cli_logger()
    sweep = run_sweep(sizes=tuple(args.sizes), seed=args.seed)
    out.info("=== Table 1 (measured) ===")
    out.info(format_table1(sweep, with_hours=True))
    out.info("\n=== Table 2 (measured) ===")
    out.info(format_table2(sweep.table2()))
    out.info("\n=== Sections 5.2/5.3 ratios ===")
    out.info(format_ratios(sweep.table2()))
    out.info("\n=== paper vs measured ===")
    out.info(paper_comparison(sweep))
    out.info(f"\nordering preserved: {check_ordering(sweep)}")
    return 0


def cmd_diagrams(args: argparse.Namespace) -> int:
    from repro.sim.engine import Engine
    from repro.workflow.patterns import chain_workflow, figure1_workflow

    out = cli_logger()
    for title, config in (
        ("Figure 4 — data parallelism", OptimizationConfig.dp()),
        ("Figure 5 — service parallelism", OptimizationConfig.sp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=1.0)

        workflow = figure1_workflow(factory)
        result = MoteurEnactor(engine, workflow, config).run({"source": [0, 1, 2]})
        out.info(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        out.info(execution_diagram(result.trace, cell=1.0))
        out.info("")

    times = [[2.0, 1.0, 1.0], [1.0, 3.0, 1.0]]
    for title, config in (
        ("Figure 6 left — DP only", OptimizationConfig.dp()),
        ("Figure 6 right — SP+DP", OptimizationConfig.sp_dp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            index = int(name[1:]) - 1
            return LocalService(
                engine, name, inputs, outputs,
                function=lambda x: {"y": x},
                duration=lambda d, i=index: times[i][d["x"].value],
            )

        workflow = chain_workflow(factory, 2)
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})
        out.info(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        out.info(execution_diagram(result.trace, cell=1.0))
        out.info("")
    return 0


def _make_testbed(args: argparse.Namespace, engine, streams):
    """The grid the run-style subcommands execute on (``--testbed``)."""
    from repro.grid.testbeds import chaotic_testbed, egee_like_testbed, faulty_testbed

    name = getattr(args, "testbed", "egee")
    if name == "faulty":
        max_attempts = getattr(args, "max_attempts", None)
        if max_attempts is not None:
            return faulty_testbed(engine, streams, max_attempts=max_attempts)
        return faulty_testbed(engine, streams)
    if name == "chaotic":
        kwargs = {"repair": not getattr(args, "no_repair", False)}
        max_attempts = getattr(args, "max_attempts", None)
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        return chaotic_testbed(engine, streams, **kwargs)
    return egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )


def cmd_bronze(args: argparse.Namespace) -> int:
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.experiments.analysis import job_statistics, overhead_breakdown
    from repro.observability import (
        ChromeTraceExporter,
        InstrumentationBus,
        JsonlAlertWriter,
        JsonlExporter,
        RunMonitor,
    )
    from repro.observability.drift import policy_key
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams
    from repro.util.units import format_duration

    out = cli_logger()
    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = _make_testbed(args, engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)
    if args.best_effort:
        config = config.with_best_effort()
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")

    monitoring = args.monitor or args.alerts or args.feedback
    bus = None
    jsonl = chrome = monitor = alert_writer = None
    if args.trace or args.chrome_trace or monitoring:
        bus = InstrumentationBus()
        if args.trace:
            jsonl = bus.subscribe(JsonlExporter(args.trace))
        if args.chrome_trace:
            chrome = bus.subscribe(ChromeTraceExporter())
        if monitoring:
            monitor = RunMonitor.attach(
                bus,
                expected_items=args.pairs,
                policy=policy_key(config),
                on_progress=out.info if args.monitor else None,
            )
            if args.alerts:
                alert_writer = monitor.add_sink(JsonlAlertWriter(args.alerts))
            if args.feedback:
                grid.set_health_provider(monitor)
                monitor.add_sink(grid.alert_reactor())
    profiler = None
    if args.profile:
        from repro.observability.profiling import Profiler, TickClock

        profiler = Profiler(
            clock=TickClock(),
            label=f"bronze {config.label} pairs={args.pairs} "
            f"seed={args.seed} testbed={args.testbed}",
        )
    from repro.core.journal import SimulatedCrash

    try:
        result = app.enact(
            config,
            n_pairs=args.pairs,
            instrumentation=bus,
            journal=args.journal,
            resume=args.resume,
            crash_after=args.crash_after,
            profiler=profiler,
        )
    except SimulatedCrash as crash:
        out.info(f"simulated crash after {crash.completed} invocations")
        if args.journal:
            out.info(f"journal: {args.journal} (resume with --resume)")
        if jsonl is not None:
            jsonl.close()
        return 4

    out.info(f"configuration: {config.label}, {args.pairs} image pairs")
    out.info(f"makespan: {format_duration(result.makespan)}")
    if result.replayed_count:
        out.info(f"replayed from journal: {result.replayed_count} invocations")
    if result.groups:
        out.info(f"groups: {', '.join(g.name for g in result.groups)}")
    stats = job_statistics(grid.records)
    out.info(
        f"jobs: {stats.jobs} ({stats.total_attempts} attempts), "
        f"overhead fraction {stats.overhead_fraction:.0%}"
    )
    phases = overhead_breakdown(grid.records)
    if phases is not None:
        out.info(
            "mean phase latencies: "
            f"submit->match {phases.submission_to_matched:.0f}s, "
            f"match->queue {phases.matched_to_queued:.0f}s, "
            f"queue->run {phases.queued_to_running:.0f}s, "
            f"run->done {phases.running_to_done:.0f}s"
        )
    rotations = result.output_values("accuracy_rotation")
    translations = result.output_values("accuracy_translation")
    if rotations and translations:
        out.info(
            f"accuracy: {rotations[0]:.3f} deg rotation, "
            f"{translations[0]:.3f} mm translation"
        )
    else:
        out.info("accuracy: unavailable (the assessment lineage died; see failures)")
    lost_something = False
    if result.failures is not None:
        from repro.experiments.reporting import format_failures

        report = result.failures
        lost_something = not report.empty
        if lost_something:
            out.info(
                f"\n=== contained failures ===\n"
                f"failed: {len(report.failures)}, skipped downstream: "
                f"{report.skipped}, dropped at barriers: {report.barrier_drops}, "
                f"dead letters: {len(report.dead_letters)}"
            )
            out.info(format_failures(report.to_rows()))
            by_ce = report.by_computing_element()
            if by_ce:
                worst = ", ".join(
                    f"{ce} x{n}"
                    for ce, n in sorted(by_ce.items(), key=lambda kv: -kv[1])
                )
                out.info(f"failures by CE: {worst}")
        else:
            out.info("contained failures: none")
    if monitor is not None:
        counts = monitor.alert_counts()
        summary = ", ".join(f"{k} x{v}" for k, v in sorted(counts.items()))
        out.info(f"alerts: {summary or 'none'}")
        flagged = monitor.flagged_ces()
        if flagged:
            out.info(f"flagged CEs: {', '.join(flagged)}")
        if args.feedback:
            out.info(
                f"broker demotions: {grid.broker.demotions}, proactive "
                f"resubmissions: "
                f"{bus.metrics.counter('grid.jobs.proactive_resubmissions').value:.0f}"
            )
    if alert_writer is not None:
        alert_writer.close()
        out.info(f"alerts written: {args.alerts} ({alert_writer.lines_written} lines)")
    if jsonl is not None:
        jsonl.close()
        out.info(f"trace written: {args.trace} ({jsonl.lines_written} spans)")
    if chrome is not None:
        chrome.write(args.chrome_trace)
        out.info(f"chrome trace written: {args.chrome_trace} (load in Perfetto)")
    if profiler is not None:
        profile = profiler.snapshot()
        path = profile.save(args.profile)
        out.info(
            f"profile written: {path} ({profile.total_time * 1e3:.3f}ms "
            f"accounted, {profile.clock} clock; inspect with: "
            f"python -m repro.experiments profile report {path})"
        )
    if args.strict and lost_something:
        out.info("exit 3: --strict and the best-effort run lost items")
        return 3
    return 0


def cmd_report_failures(args: argparse.Namespace) -> int:
    """Dead-letter report: from an exported trace, or from a live run."""
    from repro.experiments.reporting import format_failures
    from repro.observability.failures import failure_rows_from_spans, failure_summary

    out = cli_logger()
    if args.trace:
        spans = _load_spans(args.trace)
        rows = failure_rows_from_spans(spans)
        source = args.trace
    else:
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.sim.engine import Engine
        from repro.util.rng import RandomStreams

        engine = Engine()
        streams = RandomStreams(seed=args.seed)
        grid = _make_testbed(args, engine, streams)
        app = BronzeStandardApplication(engine, grid, streams)
        config = _config_by_label(args.config).with_best_effort()
        result = app.enact(config, n_pairs=args.pairs)
        assert result.failures is not None
        rows = result.failures.to_rows()
        source = f"live run ({config.label}, {args.pairs} pairs, {args.testbed})"
    out.info(f"=== failure report: {source} ===")
    out.info(format_failures(rows))
    summary = failure_summary(rows)
    for title, counts in (
        ("failures by service", summary["by_service"]),
        ("failures by computing element", summary["by_computing_element"]),
    ):
        if counts:
            listed = ", ".join(
                f"{k} x{v}" for k, v in sorted(counts.items(), key=lambda kv: -kv[1])
            )
            out.info(f"{title}: {listed}")
    if args.strict and rows:
        return 3
    return 0


def cmd_report_durability(args: argparse.Namespace) -> int:
    """Durability report for one best-effort run on the chaos testbed."""
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.observability import InstrumentationBus, RunMonitor
    from repro.observability.dataflow import DataFlowCollector
    from repro.observability.drift import policy_key
    from repro.observability.durability import (
        build_durability_report,
        format_durability_report,
    )
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams

    out = cli_logger()
    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = _make_testbed(args, engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config).with_best_effort()
    bus = InstrumentationBus()
    collector = DataFlowCollector().attach(grid)
    monitor = RunMonitor.attach(
        bus, expected_items=args.pairs, policy=policy_key(config)
    )
    result = app.enact(config, n_pairs=args.pairs, instrumentation=bus)
    report = build_durability_report(result, n_items=args.pairs)
    out.info(
        f"=== durability: {config.label}, {args.pairs} pairs, "
        f"testbed {args.testbed}, seed {args.seed}, "
        f"repair {'off' if getattr(args, 'no_repair', False) else 'on'} ==="
    )
    out.info(format_durability_report(report))
    repair_records = [r for r in collector.records if r.purpose == "repair"]
    if repair_records:
        repaired = sum(r.bytes for r in repair_records)
        out.info(
            f"repair traffic: {len(repair_records)} transfers, {repaired} bytes"
        )
    flagged = monitor.alert_counts()
    if flagged:
        listed = ", ".join(f"{k} x{v}" for k, v in sorted(flagged.items()))
        out.info(f"alerts: {listed}")
    if args.strict and report.lost_items:
        out.info("exit 3: --strict and the run lost items")
        return 3
    return 0


def _load_spans(path: str):
    from repro.observability import spans_from_jsonl

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return spans_from_jsonl(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}")


def _instrumented_bronze(args: argparse.Namespace, profiler=None):
    """One instrumented Bronze Standard enactment (``--testbed`` grid).

    The shared front half of the analytics subcommands: returns
    ``(app, grid, result, spans, monitor)`` for the requested
    configuration.  The attached :class:`RunMonitor` gives every
    consumer live health state and puts the ``monitor.alerts.*``
    counters into the run's metrics (and hence run-store summaries).
    """
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.observability import InstrumentationBus, RunMonitor
    from repro.observability.drift import policy_key
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams

    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = _make_testbed(args, engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)
    bus = InstrumentationBus()
    collector = bus.collector()
    monitor = RunMonitor.attach(
        bus, expected_items=args.pairs, policy=policy_key(config)
    )
    result = app.enact(
        config, n_pairs=args.pairs, instrumentation=bus, profiler=profiler
    )
    return app, grid, result, collector.spans, monitor


def cmd_report_critical_path(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import (
        format_critical_path,
        format_critical_path_diff,
    )
    from repro.observability import (
        CriticalPathError,
        diff_against_static,
        observed_critical_path,
    )

    out = cli_logger()
    workflow = None
    if args.trace:
        spans = _load_spans(args.trace)
    else:
        app, _grid, _result, spans, _monitor = _instrumented_bronze(args)
        workflow = app.workflow
    try:
        observed = observed_critical_path(spans)
    except CriticalPathError as exc:
        raise SystemExit(str(exc))
    out.info(format_critical_path(observed))
    if workflow is not None:
        out.info("\n=== vs static prediction ===")
        out.info(format_critical_path_diff(diff_against_static(observed, workflow)))
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_ce_utilization
    from repro.observability import render_gantt, utilization_table

    out = cli_logger()
    if args.trace:
        spans = _load_spans(args.trace)
    else:
        _app, _grid, _result, spans, _monitor = _instrumented_bronze(args)
    out.info(render_gantt(spans, width=args.width, include_queue=not args.no_queue))
    out.info("\n=== CE utilization ===")
    out.info(format_ce_utilization(utilization_table(spans)))
    return 0


def cmd_report_health(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_alerts, format_health
    from repro.observability import RunMonitor
    from repro.observability.drift import policy_key

    out = cli_logger()
    if args.trace:
        # Replay the recorded stream through a fresh monitor: by the
        # online invariant this reproduces the live run's exact health
        # scores and alerts.
        spans = _load_spans(args.trace)
        monitor = RunMonitor(
            expected_items=args.pairs, policy=policy_key(_config_by_label(args.config))
        ).replay(spans)
    else:
        _app, _grid, _result, _spans, monitor = _instrumented_bronze(args)
    out.info("=== CE health ===")
    out.info(format_health(monitor.health_table()))
    flagged = monitor.flagged_ces()
    out.info(f"\nflagged CEs: {', '.join(flagged) or 'none'}")
    out.info("\n=== alerts ===")
    out.info(format_alerts(monitor.sorted_alerts()))
    return 0


def cmd_report_dataflow(args: argparse.Namespace) -> int:
    """Per-link/per-service byte accounting of one instrumented run."""
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.observability import (
        DataFlowCollector,
        InstrumentationBus,
        dataflow_dot,
        format_dataflow_report,
    )
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams

    out = cli_logger()
    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = _make_testbed(args, engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)
    bus = InstrumentationBus()
    # Attach before enacting so the collector sees every transfer; the
    # grid has no bus yet at this point, so subscribe it explicitly for
    # the stage-in/out span cross-check.
    collector = DataFlowCollector().attach(grid)
    bus.subscribe(collector)
    result = app.enact(config, n_pairs=args.pairs, instrumentation=bus)
    counters = (
        {k: float(v) for k, v in result.metrics.counters.items()}
        if result.metrics is not None
        else {}
    )
    out.info(
        f"=== data flow: {config.label}, {args.pairs} pairs, "
        f"{args.testbed} testbed (makespan {result.makespan:.1f}s) ==="
    )
    out.info(format_dataflow_report(collector, counters, top=args.top))
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(dataflow_dot(collector))
        out.info(f"data-flow graph written: {args.dot} (Graphviz DOT)")
    return 0


def cmd_record_run(args: argparse.Namespace) -> int:
    import json

    from repro.observability import RunStore, summarize_run
    from repro.observability.profiling import Profiler, TickClock, profile_counters

    out = cli_logger()
    # Always profile with the deterministic clock: the perf.profile.*
    # breakdown costs little, adds no nondeterminism to the row, and is
    # what compare-runs attribution reads when a throughput budget trips.
    profiler = Profiler(
        clock=TickClock(),
        label=f"record-run {args.config} pairs={args.pairs} seed={args.seed}",
    )
    _app, grid, result, spans, _monitor = _instrumented_bronze(args, profiler=profiler)
    summary = summarize_run(
        result,
        spans=spans,
        records=grid.completed_records(),
        processors=list(BRONZE_CRITICAL_PATH),
        n_items=args.pairs,
        seed=args.seed,
        note=args.note,
    )
    summary.counters.update(profile_counters(profiler.snapshot()))
    store = RunStore(args.store)
    store.append(summary)
    out.info(
        f"recorded {summary.run_id} to {args.store}: {summary.policy}, "
        f"{args.pairs} pairs, makespan {summary.makespan:.1f}s"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.info(f"summary copied to {args.out}")
    return 0


def cmd_compare_runs(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_run_comparison
    from repro.observability import Budgets, RunStore, RunStoreError, compare

    out = cli_logger()
    budgets = Budgets(
        makespan=args.budget_makespan,
        phase=args.budget_phase,
        drift=args.budget_drift,
        hit_rate=args.budget_hit_rate,
        jobs=args.budget_jobs,
        alerts=args.budget_alerts,
        throughput=args.budget_throughput,
        bytes=args.budget_bytes,
        min_seconds=args.min_seconds,
    )
    store = RunStore(args.store)
    try:
        baseline = store.resolve(args.baseline)
        candidate = store.resolve(args.candidate)
        comparison = compare(baseline, candidate, budgets)
    except RunStoreError as exc:
        raise SystemExit(str(exc))
    out.info(format_run_comparison(comparison))
    if not comparison.ok:
        from repro.observability.profiling import attribute, format_attribution

        throughput_blown = any(
            entry.metric.startswith("counter.perf.")
            for entry in comparison.regressions
        )
        if throughput_blown:
            lines = format_attribution(
                attribute(baseline.counters, candidate.counters)
            )
            if lines:
                out.info("")
                for line in lines:
                    out.info(line)
            else:
                out.info(
                    "\n(no perf.profile.* breakdown in both rows: record runs "
                    "with the profiler installed to attribute the slowdown)"
                )
    return 0 if comparison.ok else 1


def _load_profile(path: str):
    from repro.observability.profiling import Profile, ProfilerError

    try:
        return Profile.load(path)
    except ProfilerError as exc:
        raise SystemExit(str(exc))


def cmd_profile_record(args: argparse.Namespace) -> int:
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.observability.profiling import Profiler, resolve_clock
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams

    out = cli_logger()
    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = _make_testbed(args, engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)
    profiler = Profiler(
        clock=resolve_clock(args.clock),
        track_memory=args.memory,
        label=f"bronze {config.label} pairs={args.pairs} "
        f"seed={args.seed} testbed={args.testbed}",
    )
    result = app.enact(config, n_pairs=args.pairs, profiler=profiler)
    profile = profiler.snapshot()
    path = profile.save(args.out)
    out.info(
        f"profiled {config.label} x {args.pairs} pairs "
        f"(makespan {result.makespan:.1f}s simulated)"
    )
    out.info(
        f"profile written: {path} ({profile.total_time * 1e3:.3f}ms accounted, "
        f"{profile.clock} clock)"
    )
    return 0


def cmd_profile_report(args: argparse.Namespace) -> int:
    from repro.observability.profiling import format_profile_report

    cli_logger().info(format_profile_report(_load_profile(args.profile), args.limit))
    return 0


def cmd_profile_diff(args: argparse.Namespace) -> int:
    from repro.observability.profiling import diff_profiles, format_profile_diff

    out = cli_logger()
    diff = diff_profiles(
        _load_profile(args.baseline), _load_profile(args.candidate)
    )
    out.info(format_profile_diff(diff, args.limit))
    top = diff.top_component
    if top is not None:
        out.info(f"\ntop regressed component: {top.component} ({top.delta_us:+.0f}us)")
    return 0


def cmd_profile_flame(args: argparse.Namespace) -> int:
    from repro.observability.profiling import speedscope_json, to_collapsed

    out = cli_logger()
    profile = _load_profile(args.profile)
    if args.format == "speedscope":
        rendered = speedscope_json(profile) + "\n"
    else:
        rendered = to_collapsed(profile)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        out.info(
            f"{args.format} flamegraph written: {args.out} "
            f"({len(rendered.splitlines())} lines)"
        )
    else:
        sys.stdout.write(rendered)
    return 0


def cmd_report_trace(args: argparse.Namespace) -> int:
    from repro.core.trace import ExecutionTrace, TraceEvent
    from repro.experiments.reporting import format_drift, format_phase_breakdown
    from repro.observability import (
        DriftError,
        drift_report_from_trace,
        overhead_by_job_from_spans,
        spans_from_jsonl,
    )

    out = cli_logger()
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            spans = spans_from_jsonl(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.trace!r}: {exc}")
    out.info(f"{len(spans)} spans from {args.trace}")
    out.info("\n=== phase breakdown ===")
    out.info(format_phase_breakdown(spans))

    # Rebuild the enactor's execution trace out of the invocation spans
    # so the drift reporter can derive the model's T matrix from it.
    trace = ExecutionTrace()
    for span in spans:
        if span.name == "invocation" and span.end is not None:
            trace.add(
                TraceEvent(
                    processor=str(span.attributes.get("processor", "?")),
                    label=str(span.attributes.get("label", "?")),
                    start=span.start,
                    end=span.end,
                    kind=str(span.attributes.get("kind", "invocation")),
                    job_ids=tuple(span.attributes.get("job_ids") or ()),
                )
            )

    policy = args.policy
    if policy is None:
        runs = [s for s in spans if s.name == "run"]
        if runs:
            attrs = runs[-1].attributes
            dp = bool(attrs.get("data_parallelism"))
            sp = bool(attrs.get("service_parallelism"))
            policy = "SP+DP" if dp and sp else "DP" if dp else "SP" if sp else "NOP"
    if policy is None:
        out.info("\n(no run span in the trace and no --policy: drift report skipped)")
        return 0

    try:
        report = drift_report_from_trace(
            trace,
            policy,
            overhead_by_job=overhead_by_job_from_spans(spans),
            processors=args.processors,
        )
    except DriftError as exc:
        out.info(f"\n(drift report unavailable: {exc})")
        return 0
    out.info("\n=== model drift ===")
    out.info(format_drift(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="run the Table 1/2 sweep")
    table1.add_argument("--sizes", type=int, nargs="+", default=[12, 66, 126])
    table1.add_argument("--seed", type=int, default=42)
    table1.set_defaults(func=cmd_table1)

    diagrams = sub.add_parser("diagrams", help="regenerate Figures 4/5/6")
    diagrams.set_defaults(func=cmd_diagrams)

    bronze = sub.add_parser("bronze", help="run one Bronze Standard enactment")
    bronze.add_argument("--pairs", type=int, default=12)
    bronze.add_argument("--config", default="SP+DP+JG")
    bronze.add_argument("--seed", type=int, default=42)
    bronze.add_argument(
        "--testbed", choices=["egee", "faulty", "chaotic"], default="egee",
        help="grid to run on: the EGEE-like production grid, the "
        "fault-injected monitoring testbed, or the chaos testbed with "
        "outage schedules, transfer faults and replica repair "
        "(default: egee)",
    )
    bronze.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="override the faulty/chaotic testbed's resubmission cap "
        "(only meaningful with --testbed faulty/chaotic)",
    )
    bronze.add_argument(
        "--no-repair", action="store_true",
        help="with --testbed chaotic: disable the background replica-repair "
        "daemon (the durability ablation)",
    )
    bronze.add_argument(
        "--trace", metavar="PATH",
        help="export the run's span stream as JSONL (read back with report-trace)",
    )
    bronze.add_argument(
        "--chrome-trace", metavar="PATH",
        help="export the run as Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    bronze.add_argument(
        "--monitor", action="store_true",
        help="attach the live run monitor and print streaming progress/ETA lines",
    )
    bronze.add_argument(
        "--alerts", metavar="PATH",
        help="write monitor alerts as JSONL (implies monitoring; "
        "flushed per line, tail -f friendly)",
    )
    bronze.add_argument(
        "--feedback", action="store_true",
        help="wire monitor feedback into the broker: demote/blacklist "
        "flagged CEs and proactively resubmit jobs queued on them",
    )
    bronze.add_argument(
        "--best-effort", action="store_true",
        help="contain per-item failures: exhausted jobs become dead "
        "letters and the run completes with the surviving items",
    )
    bronze.add_argument(
        "--strict", action="store_true",
        help="with --best-effort: exit 3 when the run lost any item "
        "(default: partial success exits 0)",
    )
    bronze.add_argument(
        "--journal", metavar="PATH",
        help="append-only enactment journal (WAL) of completed invocations",
    )
    bronze.add_argument(
        "--resume", action="store_true",
        help="replay the journal's completed invocations before "
        "executing the rest (requires --journal)",
    )
    bronze.add_argument(
        "--crash-after", type=int, metavar="N",
        help="simulate a crash after N completed invocations (exit 4); "
        "combine with --journal, then rerun with --resume",
    )
    bronze.add_argument(
        "--profile", metavar="PATH",
        help="install the hot-path profiler (deterministic tick clock) "
        "and write the profile JSON here after the run",
    )
    bronze.set_defaults(func=cmd_bronze)

    report = sub.add_parser(
        "report-trace", help="phase-breakdown + model-drift tables for a JSONL trace"
    )
    report.add_argument("trace", help="JSONL span stream (bronze --trace output)")
    report.add_argument(
        "--policy", choices=["NOP", "DP", "SP", "SP+DP"],
        help="model equation to compare against (default: derived from the run span)",
    )
    report.add_argument(
        "--processors", nargs="+", metavar="NAME",
        default=list(BRONZE_CRITICAL_PATH),
        help="critical-path services forming the T matrix rows "
        "(default: the Bronze Standard critical path)",
    )
    report.set_defaults(func=cmd_report_trace)

    def add_run_options(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--pairs", type=int, default=12)
        sub_parser.add_argument("--config", default="SP+DP")
        sub_parser.add_argument("--seed", type=int, default=42)
        sub_parser.add_argument(
            "--testbed", choices=["egee", "faulty", "chaotic"], default="egee",
            help="grid to run on (default: egee)",
        )
        sub_parser.add_argument(
            "--max-attempts", type=int, default=None, metavar="N",
            help="override the faulty/chaotic testbed's resubmission cap",
        )
        sub_parser.add_argument(
            "--no-repair", action="store_true",
            help="with --testbed chaotic: disable background replica repair",
        )

    crit = sub.add_parser(
        "report-critical-path",
        help="observed gating chain with phase attribution (+ static diff)",
    )
    add_run_options(crit)
    crit.add_argument(
        "--trace", metavar="PATH",
        help="analyze an exported JSONL span stream instead of running "
        "a fresh enactment (run options are then ignored)",
    )
    crit.set_defaults(func=cmd_report_critical_path)

    gantt = sub.add_parser(
        "gantt", help="ASCII Gantt: invocations per processor, jobs per CE"
    )
    add_run_options(gantt)
    gantt.add_argument(
        "--trace", metavar="PATH",
        help="render an exported JSONL span stream instead of running "
        "a fresh enactment",
    )
    gantt.add_argument("--width", type=int, default=100, help="columns per lane")
    gantt.add_argument(
        "--no-queue", action="store_true", help="omit the per-CE queue-depth lanes"
    )
    gantt.set_defaults(func=cmd_gantt)

    health = sub.add_parser(
        "report-health",
        help="per-CE health scores and the alert log (live run or replayed trace)",
    )
    add_run_options(health)
    health.add_argument(
        "--trace", metavar="PATH",
        help="replay an exported JSONL span stream through a fresh monitor "
        "instead of running a new enactment (reproduces the live run's "
        "exact health state)",
    )
    health.set_defaults(func=cmd_report_health)

    failures = sub.add_parser(
        "report-failures",
        help="dead-letter report: what a best-effort run lost, and why",
    )
    add_run_options(failures)
    failures.add_argument(
        "--trace", metavar="PATH",
        help="report from an exported JSONL span stream instead of "
        "running a fresh best-effort enactment",
    )
    failures.add_argument(
        "--strict", action="store_true",
        help="exit 3 when the report contains any failure",
    )
    # dead letters only happen where faults do: default to the faulty grid
    failures.set_defaults(func=cmd_report_failures, testbed="faulty")

    durability = sub.add_parser(
        "report-durability",
        help="data-plane durability report for one best-effort chaos run: "
        "items delivered vs lost, repair traffic, transfer faults, alerts",
    )
    add_run_options(durability)
    durability.add_argument(
        "--strict", action="store_true",
        help="exit 3 when the run lost any item",
    )
    # durability only means something where data can die: default chaotic
    durability.set_defaults(func=cmd_report_durability, testbed="chaotic")

    dataflow = sub.add_parser(
        "report-dataflow",
        help="byte-accounted data plane: top-talker links/services, "
        "per-link bandwidth sparklines, purpose breakdown",
    )
    add_run_options(dataflow)
    dataflow.add_argument(
        "--top", type=int, default=10, help="links/services rows to list"
    )
    dataflow.add_argument(
        "--dot", metavar="PATH",
        help="also export the site-to-site data-flow graph as Graphviz DOT",
    )
    dataflow.set_defaults(func=cmd_report_dataflow)

    record = sub.add_parser(
        "record-run", help="run one enactment and append its summary to a store"
    )
    add_run_options(record)
    record.add_argument(
        "--store", default="runstore", metavar="DIR",
        help="run-store directory (created if missing; default: ./runstore)",
    )
    record.add_argument(
        "--note", default="", help="free-form annotation stored with the summary"
    )
    record.add_argument(
        "--out", metavar="PATH",
        help="additionally copy the summary JSON here (e.g. to commit a baseline)",
    )
    record.set_defaults(func=cmd_record_run)

    compare_runs = sub.add_parser(
        "compare-runs",
        help="budgeted baseline-vs-candidate comparison (exit 1 on regression)",
    )
    compare_runs.add_argument(
        "baseline", help="run id, 'latest[:POLICY]', or a summary JSON path"
    )
    compare_runs.add_argument(
        "candidate", help="run id, 'latest[:POLICY]', or a summary JSON path"
    )
    compare_runs.add_argument(
        "--store", default="runstore", metavar="DIR",
        help="run-store directory the run ids resolve against",
    )
    compare_runs.add_argument(
        "--budget-makespan", type=float, default=0.05,
        help="allowed relative makespan growth (default 0.05 = +5%%)",
    )
    compare_runs.add_argument(
        "--budget-phase", type=float, default=0.10,
        help="allowed relative growth per critical-path phase bucket",
    )
    compare_runs.add_argument(
        "--budget-drift", type=float, default=0.05,
        help="allowed absolute increase of the model's relative error",
    )
    compare_runs.add_argument(
        "--budget-hit-rate", type=float, default=0.05,
        help="allowed absolute drop of the cache hit rate",
    )
    compare_runs.add_argument(
        "--budget-jobs", type=float, default=0.0,
        help="allowed relative growth of submitted grid jobs",
    )
    compare_runs.add_argument(
        "--budget-alerts", type=float, default=0.0,
        help="allowed absolute growth of monitor alerts "
        "(default 0: any new health alert is a regression)",
    )
    compare_runs.add_argument(
        "--budget-throughput", type=float, default=None,
        help="when set, allowed relative loss of perf.events_per_sec / growth "
        "of perf.us_per_invocation (off by default: wall-clock noise)",
    )
    compare_runs.add_argument(
        "--budget-bytes", type=float, default=None,
        help="when set, allowed relative growth of bytes.total and "
        "bytes.enactor_moved (byte counters are deterministic, so 0.0 "
        "is a sound gate; off by default)",
    )
    compare_runs.add_argument(
        "--min-seconds", type=float, default=1.0,
        help="phases below this size in both runs are noise, never compared",
    )
    compare_runs.set_defaults(func=cmd_compare_runs)

    profile = sub.add_parser(
        "profile",
        help="hot-path profiler: record / report / diff / flame",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)

    p_record = profile_sub.add_parser(
        "record", help="run one profiled Bronze Standard enactment"
    )
    add_run_options(p_record)
    p_record.add_argument(
        "--out", default="profile.json", metavar="PATH",
        help="where to write the profile (default %(default)s)",
    )
    p_record.add_argument(
        "--clock", choices=["deterministic", "wall"], default="deterministic",
        help="time source: 'deterministic' produces byte-identical "
        "profiles across same-seed runs; 'wall' measures real time",
    )
    p_record.add_argument(
        "--memory", action="store_true",
        help="also record tracemalloc allocation deltas (slower; the "
        "memory section is machine-dependent)",
    )
    p_record.set_defaults(func=cmd_profile_record)

    p_report = profile_sub.add_parser("report", help="render a saved profile")
    p_report.add_argument("profile", help="profile JSON (profile record --out)")
    p_report.add_argument(
        "--limit", type=int, default=15, help="hottest scopes to list"
    )
    p_report.set_defaults(func=cmd_profile_report)

    p_diff = profile_sub.add_parser(
        "diff", help="rank per-component movement between two profiles"
    )
    p_diff.add_argument("baseline", help="baseline profile JSON")
    p_diff.add_argument("candidate", help="candidate profile JSON")
    p_diff.add_argument(
        "--limit", type=int, default=10, help="scope moves to list"
    )
    p_diff.set_defaults(func=cmd_profile_diff)

    p_flame = profile_sub.add_parser(
        "flame", help="export a flamegraph (collapsed stacks or speedscope)"
    )
    p_flame.add_argument("profile", help="profile JSON (profile record --out)")
    p_flame.add_argument(
        "--format", choices=["collapsed", "speedscope"], default="collapsed",
        help="collapsed = Brendan Gregg flamegraph.pl input; speedscope = "
        "https://speedscope.app JSON (default %(default)s)",
    )
    p_flame.add_argument(
        "--out", metavar="PATH", help="write here instead of stdout"
    )
    p_flame.set_defaults(func=cmd_profile_flame)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
