"""Command-line entry point: reproduce the paper from a shell.

Usage::

    python -m repro.experiments table1  [--sizes 12 66 126] [--seed 42]
    python -m repro.experiments diagrams
    python -m repro.experiments bronze  [--pairs 12] [--config SP+DP+JG]
                                        [--trace run.jsonl]
                                        [--chrome-trace run.trace.json]
    python -m repro.experiments report-trace run.jsonl [--policy SP+DP]

``table1`` runs the full sweep and prints Tables 1 and 2, the Section
5.2/5.3 ratios and the paper comparison; ``diagrams`` regenerates the
Figure 4/5/6 execution diagrams; ``bronze`` runs one Bronze Standard
enactment and reports its outputs (``--trace`` exports the span stream
as JSONL, ``--chrome-trace`` as Chrome trace-event JSON for Perfetto);
``report-trace`` renders the phase breakdown and model-drift tables of
a previously exported JSONL trace.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import execution_diagram
from repro.observability.logbridge import cli_logger
from repro.services.base import LocalService

#: the Bronze Standard's critical path (Baladin/Yasmina run on parallel
#: branches; MultiTransfoTest is a synchronization barrier) — the rows
#: of the Section 3.5 T matrix for drift reporting.
BRONZE_CRITICAL_PATH = ("crestLines", "crestMatch", "PFMatchICP", "PFRegister")


def _config_by_label(label: str) -> OptimizationConfig:
    table = {c.label: c for c in OptimizationConfig.paper_configurations()}
    try:
        return table[label]
    except KeyError:
        raise SystemExit(
            f"unknown configuration {label!r}; options: {', '.join(table)}"
        ) from None


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_sweep
    from repro.experiments.reporting import (
        check_ordering,
        format_ratios,
        format_table1,
        format_table2,
        paper_comparison,
    )

    out = cli_logger()
    sweep = run_sweep(sizes=tuple(args.sizes), seed=args.seed)
    out.info("=== Table 1 (measured) ===")
    out.info(format_table1(sweep, with_hours=True))
    out.info("\n=== Table 2 (measured) ===")
    out.info(format_table2(sweep.table2()))
    out.info("\n=== Sections 5.2/5.3 ratios ===")
    out.info(format_ratios(sweep.table2()))
    out.info("\n=== paper vs measured ===")
    out.info(paper_comparison(sweep))
    out.info(f"\nordering preserved: {check_ordering(sweep)}")
    return 0


def cmd_diagrams(args: argparse.Namespace) -> int:
    from repro.sim.engine import Engine
    from repro.workflow.patterns import chain_workflow, figure1_workflow

    out = cli_logger()
    for title, config in (
        ("Figure 4 — data parallelism", OptimizationConfig.dp()),
        ("Figure 5 — service parallelism", OptimizationConfig.sp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=1.0)

        workflow = figure1_workflow(factory)
        result = MoteurEnactor(engine, workflow, config).run({"source": [0, 1, 2]})
        out.info(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        out.info(execution_diagram(result.trace, cell=1.0))
        out.info("")

    times = [[2.0, 1.0, 1.0], [1.0, 3.0, 1.0]]
    for title, config in (
        ("Figure 6 left — DP only", OptimizationConfig.dp()),
        ("Figure 6 right — SP+DP", OptimizationConfig.sp_dp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            index = int(name[1:]) - 1
            return LocalService(
                engine, name, inputs, outputs,
                function=lambda x: {"y": x},
                duration=lambda d, i=index: times[i][d["x"].value],
            )

        workflow = chain_workflow(factory, 2)
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})
        out.info(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        out.info(execution_diagram(result.trace, cell=1.0))
        out.info("")
    return 0


def cmd_bronze(args: argparse.Namespace) -> int:
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.experiments.analysis import job_statistics, overhead_breakdown
    from repro.grid.testbeds import egee_like_testbed
    from repro.observability import ChromeTraceExporter, InstrumentationBus, JsonlExporter
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams
    from repro.util.units import format_duration

    out = cli_logger()
    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)

    bus = None
    jsonl = chrome = None
    if args.trace or args.chrome_trace:
        bus = InstrumentationBus()
        if args.trace:
            jsonl = bus.subscribe(JsonlExporter(args.trace))
        if args.chrome_trace:
            chrome = bus.subscribe(ChromeTraceExporter())
    result = app.enact(config, n_pairs=args.pairs, instrumentation=bus)

    out.info(f"configuration: {config.label}, {args.pairs} image pairs")
    out.info(f"makespan: {format_duration(result.makespan)}")
    if result.groups:
        out.info(f"groups: {', '.join(g.name for g in result.groups)}")
    stats = job_statistics(grid.records)
    out.info(
        f"jobs: {stats.jobs} ({stats.total_attempts} attempts), "
        f"overhead fraction {stats.overhead_fraction:.0%}"
    )
    phases = overhead_breakdown(grid.records)
    if phases is not None:
        out.info(
            "mean phase latencies: "
            f"submit->match {phases.submission_to_matched:.0f}s, "
            f"match->queue {phases.matched_to_queued:.0f}s, "
            f"queue->run {phases.queued_to_running:.0f}s, "
            f"run->done {phases.running_to_done:.0f}s"
        )
    rotation = result.output_values("accuracy_rotation")[0]
    translation = result.output_values("accuracy_translation")[0]
    out.info(f"accuracy: {rotation:.3f} deg rotation, {translation:.3f} mm translation")
    if jsonl is not None:
        jsonl.close()
        out.info(f"trace written: {args.trace} ({jsonl.lines_written} spans)")
    if chrome is not None:
        chrome.write(args.chrome_trace)
        out.info(f"chrome trace written: {args.chrome_trace} (load in Perfetto)")
    return 0


def cmd_report_trace(args: argparse.Namespace) -> int:
    from repro.core.trace import ExecutionTrace, TraceEvent
    from repro.experiments.reporting import format_drift, format_phase_breakdown
    from repro.observability import (
        DriftError,
        drift_report_from_trace,
        overhead_by_job_from_spans,
        spans_from_jsonl,
    )

    out = cli_logger()
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            spans = spans_from_jsonl(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.trace!r}: {exc}")
    out.info(f"{len(spans)} spans from {args.trace}")
    out.info("\n=== phase breakdown ===")
    out.info(format_phase_breakdown(spans))

    # Rebuild the enactor's execution trace out of the invocation spans
    # so the drift reporter can derive the model's T matrix from it.
    trace = ExecutionTrace()
    for span in spans:
        if span.name == "invocation" and span.end is not None:
            trace.add(
                TraceEvent(
                    processor=str(span.attributes.get("processor", "?")),
                    label=str(span.attributes.get("label", "?")),
                    start=span.start,
                    end=span.end,
                    kind=str(span.attributes.get("kind", "invocation")),
                    job_ids=tuple(span.attributes.get("job_ids") or ()),
                )
            )

    policy = args.policy
    if policy is None:
        runs = [s for s in spans if s.name == "run"]
        if runs:
            attrs = runs[-1].attributes
            dp = bool(attrs.get("data_parallelism"))
            sp = bool(attrs.get("service_parallelism"))
            policy = "SP+DP" if dp and sp else "DP" if dp else "SP" if sp else "NOP"
    if policy is None:
        out.info("\n(no run span in the trace and no --policy: drift report skipped)")
        return 0

    try:
        report = drift_report_from_trace(
            trace,
            policy,
            overhead_by_job=overhead_by_job_from_spans(spans),
            processors=args.processors,
        )
    except DriftError as exc:
        out.info(f"\n(drift report unavailable: {exc})")
        return 0
    out.info("\n=== model drift ===")
    out.info(format_drift(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="run the Table 1/2 sweep")
    table1.add_argument("--sizes", type=int, nargs="+", default=[12, 66, 126])
    table1.add_argument("--seed", type=int, default=42)
    table1.set_defaults(func=cmd_table1)

    diagrams = sub.add_parser("diagrams", help="regenerate Figures 4/5/6")
    diagrams.set_defaults(func=cmd_diagrams)

    bronze = sub.add_parser("bronze", help="run one Bronze Standard enactment")
    bronze.add_argument("--pairs", type=int, default=12)
    bronze.add_argument("--config", default="SP+DP+JG")
    bronze.add_argument("--seed", type=int, default=42)
    bronze.add_argument(
        "--trace", metavar="PATH",
        help="export the run's span stream as JSONL (read back with report-trace)",
    )
    bronze.add_argument(
        "--chrome-trace", metavar="PATH",
        help="export the run as Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    bronze.set_defaults(func=cmd_bronze)

    report = sub.add_parser(
        "report-trace", help="phase-breakdown + model-drift tables for a JSONL trace"
    )
    report.add_argument("trace", help="JSONL span stream (bronze --trace output)")
    report.add_argument(
        "--policy", choices=["NOP", "DP", "SP", "SP+DP"],
        help="model equation to compare against (default: derived from the run span)",
    )
    report.add_argument(
        "--processors", nargs="+", metavar="NAME",
        default=list(BRONZE_CRITICAL_PATH),
        help="critical-path services forming the T matrix rows "
        "(default: the Bronze Standard critical path)",
    )
    report.set_defaults(func=cmd_report_trace)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
