"""Command-line entry point: reproduce the paper from a shell.

Usage::

    python -m repro.experiments table1  [--sizes 12 66 126] [--seed 42]
    python -m repro.experiments diagrams
    python -m repro.experiments bronze  [--pairs 12] [--config SP+DP+JG]

``table1`` runs the full sweep and prints Tables 1 and 2, the Section
5.2/5.3 ratios and the paper comparison; ``diagrams`` regenerates the
Figure 4/5/6 execution diagrams; ``bronze`` runs one Bronze Standard
enactment and reports its outputs.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import execution_diagram
from repro.services.base import LocalService


def _config_by_label(label: str) -> OptimizationConfig:
    table = {c.label: c for c in OptimizationConfig.paper_configurations()}
    try:
        return table[label]
    except KeyError:
        raise SystemExit(
            f"unknown configuration {label!r}; options: {', '.join(table)}"
        ) from None


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_sweep
    from repro.experiments.reporting import (
        check_ordering,
        format_ratios,
        format_table1,
        format_table2,
        paper_comparison,
    )

    sweep = run_sweep(sizes=tuple(args.sizes), seed=args.seed)
    print("=== Table 1 (measured) ===")
    print(format_table1(sweep, with_hours=True))
    print("\n=== Table 2 (measured) ===")
    print(format_table2(sweep.table2()))
    print("\n=== Sections 5.2/5.3 ratios ===")
    print(format_ratios(sweep.table2()))
    print("\n=== paper vs measured ===")
    print(paper_comparison(sweep))
    print(f"\nordering preserved: {check_ordering(sweep)}")
    return 0


def cmd_diagrams(args: argparse.Namespace) -> int:
    from repro.sim.engine import Engine
    from repro.workflow.patterns import chain_workflow, figure1_workflow

    for title, config in (
        ("Figure 4 — data parallelism", OptimizationConfig.dp()),
        ("Figure 5 — service parallelism", OptimizationConfig.sp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=1.0)

        workflow = figure1_workflow(factory)
        result = MoteurEnactor(engine, workflow, config).run({"source": [0, 1, 2]})
        print(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        print(execution_diagram(result.trace, cell=1.0))
        print()

    times = [[2.0, 1.0, 1.0], [1.0, 3.0, 1.0]]
    for title, config in (
        ("Figure 6 left — DP only", OptimizationConfig.dp()),
        ("Figure 6 right — SP+DP", OptimizationConfig.sp_dp()),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            index = int(name[1:]) - 1
            return LocalService(
                engine, name, inputs, outputs,
                function=lambda x: {"y": x},
                duration=lambda d, i=index: times[i][d["x"].value],
            )

        workflow = chain_workflow(factory, 2)
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})
        print(f"=== {title} (makespan {result.makespan:.0f} T) ===")
        print(execution_diagram(result.trace, cell=1.0))
        print()
    return 0


def cmd_bronze(args: argparse.Namespace) -> int:
    from repro.apps.bronze_standard import BronzeStandardApplication
    from repro.experiments.analysis import job_statistics, overhead_breakdown
    from repro.grid.testbeds import egee_like_testbed
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams
    from repro.util.units import format_duration

    engine = Engine()
    streams = RandomStreams(seed=args.seed)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = _config_by_label(args.config)
    result = app.enact(config, n_pairs=args.pairs)

    print(f"configuration: {config.label}, {args.pairs} image pairs")
    print(f"makespan: {format_duration(result.makespan)}")
    if result.groups:
        print(f"groups: {', '.join(g.name for g in result.groups)}")
    stats = job_statistics(grid.records)
    print(f"jobs: {stats.jobs} ({stats.total_attempts} attempts), "
          f"overhead fraction {stats.overhead_fraction:.0%}")
    phases = overhead_breakdown(grid.records)
    if phases is not None:
        print(
            "mean phase latencies: "
            f"submit->match {phases.submission_to_matched:.0f}s, "
            f"match->queue {phases.matched_to_queued:.0f}s, "
            f"queue->run {phases.queued_to_running:.0f}s, "
            f"run->done {phases.running_to_done:.0f}s"
        )
    rotation = result.output_values("accuracy_rotation")[0]
    translation = result.output_values("accuracy_translation")[0]
    print(f"accuracy: {rotation:.3f} deg rotation, {translation:.3f} mm translation")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="run the Table 1/2 sweep")
    table1.add_argument("--sizes", type=int, nargs="+", default=[12, 66, 126])
    table1.add_argument("--seed", type=int, default=42)
    table1.set_defaults(func=cmd_table1)

    diagrams = sub.add_parser("diagrams", help="regenerate Figures 4/5/6")
    diagrams.set_defaults(func=cmd_diagrams)

    bronze = sub.add_parser("bronze", help="run one Bronze Standard enactment")
    bronze.add_argument("--pairs", type=int, default=12)
    bronze.add_argument("--config", default="SP+DP+JG")
    bronze.add_argument("--seed", type=int, default=42)
    bronze.set_defaults(func=cmd_bronze)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
