"""The experiment harness: run configurations × sizes, collect rows.

One :func:`run_configuration` call is one cell of Table 1: a fresh
engine, a fresh calibrated grid, a fresh Bronze Standard application,
one enactment.  Isolating runs this way mirrors the paper's protocol
("we submitted each dataset ... with 6 different optimization
configurations in order to identify the specific gain provided by each
optimization") and keeps cells statistically independent.

:func:`run_sweep` produces the whole table plus the Table 2 regression
fits; the benchmarks and EXPERIMENTS.md are generated from its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core.config import OptimizationConfig
from repro.experiments.calibration import PAPER_SIZES, make_experiment_grid
from repro.grid.middleware import Grid
from repro.model.metrics import ConfigurationFit, fit_configuration
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

__all__ = ["ExperimentRow", "SweepResult", "run_configuration", "run_sweep"]

GridFactory = Callable[[Engine, RandomStreams], Grid]


@dataclass(frozen=True)
class ExperimentRow:
    """One (configuration, size) measurement."""

    config_label: str
    n_pairs: int
    makespan: float
    jobs_submitted: int
    jobs_completed: int
    invocations: int
    mean_overhead: float
    accuracy_rotation: float
    accuracy_translation: float

    @property
    def hours(self) -> float:
        """Makespan in hours (the Figure 10 axis)."""
        return self.makespan / 3600.0


@dataclass
class SweepResult:
    """All rows of one sweep plus derived fits."""

    sizes: Tuple[int, ...]
    config_labels: Tuple[str, ...]
    rows: List[ExperimentRow] = field(default_factory=list)

    def cell(self, config_label: str, n_pairs: int) -> ExperimentRow:
        """Look one (configuration, size) cell up."""
        for row in self.rows:
            if row.config_label == config_label and row.n_pairs == n_pairs:
                return row
        raise KeyError(f"no row for ({config_label!r}, {n_pairs})")

    def times(self, config_label: str) -> List[float]:
        """Makespans of one configuration across the size sweep."""
        return [self.cell(config_label, size).makespan for size in self.sizes]

    def table1(self) -> Dict[str, Dict[int, float]]:
        """Same layout as the paper's Table 1."""
        return {
            label: {size: self.cell(label, size).makespan for size in self.sizes}
            for label in self.config_labels
        }

    def table2(self) -> Dict[str, ConfigurationFit]:
        """Linear fits per configuration (the paper's Table 2)."""
        return {
            label: fit_configuration(label, self.sizes, self.times(label))
            for label in self.config_labels
        }


def run_configuration(
    config: OptimizationConfig,
    n_pairs: int,
    seed: int = 42,
    grid_factory: Optional[GridFactory] = None,
    method_to_test: str = "crestMatch",
) -> ExperimentRow:
    """Run one Table 1 cell on a fresh engine and grid."""
    engine = Engine()
    streams = RandomStreams(seed=seed)
    if grid_factory is None:
        grid = make_experiment_grid(engine, streams)
    else:
        grid = grid_factory(engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    result = app.enact(config, n_pairs=n_pairs, method_to_test=method_to_test)

    completed = grid.completed_records()
    overheads = [r.overhead for r in completed if r.overhead is not None]
    rotation = result.output_values("accuracy_rotation")
    translation = result.output_values("accuracy_translation")
    return ExperimentRow(
        config_label=config.label,
        n_pairs=n_pairs,
        makespan=result.makespan,
        jobs_submitted=len(grid.records),
        jobs_completed=len(completed),
        invocations=result.invocation_count,
        mean_overhead=float(np.mean(overheads)) if overheads else 0.0,
        accuracy_rotation=float(rotation[0]) if rotation else float("nan"),
        accuracy_translation=float(translation[0]) if translation else float("nan"),
    )


def run_sweep(
    configs: Optional[Sequence[OptimizationConfig]] = None,
    sizes: Sequence[int] = PAPER_SIZES,
    seed: int = 42,
    grid_factory: Optional[GridFactory] = None,
) -> SweepResult:
    """Run the full Table 1 grid: every configuration at every size.

    Every cell uses the same master seed, so two configurations see
    identical overhead draws job-for-job — differences between rows are
    pure scheduling-policy effects, which is the cleanest version of
    the paper's controlled comparison.
    """
    if configs is None:
        configs = OptimizationConfig.paper_configurations()
    result = SweepResult(
        sizes=tuple(int(s) for s in sizes),
        config_labels=tuple(c.label for c in configs),
    )
    for config in configs:
        for size in result.sizes:
            result.rows.append(
                run_configuration(config, size, seed=seed, grid_factory=grid_factory)
            )
    return result
