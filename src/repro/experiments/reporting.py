"""Report formatting: text tables and paper-vs-measured comparisons.

These renderers produce the artifacts the benchmark suite prints and
EXPERIMENTS.md records: Table 1/Table 2 layouts, the Section 5.2/5.3
ratio analyses, and explicit shape checks (configuration ordering,
linearity, which metric each optimization moves).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cache import CacheStatsSnapshot
from repro.experiments.calibration import PAPER_TABLE1, PAPER_TABLE2
from repro.experiments.harness import SweepResult
from repro.model.metrics import ConfigurationFit, ratios_table
from repro.observability.alerts import Alert
from repro.observability.critical_path import (
    PHASE_KEYS,
    CriticalPathDiff,
    ObservedCriticalPath,
)
from repro.observability.drift import DriftReport
from repro.observability.health import CEHealth
from repro.observability.metrics import MetricsSnapshot
from repro.observability.runstore import RunComparison
from repro.observability.spans import Span

__all__ = [
    "format_table1",
    "format_table2",
    "format_ratios",
    "format_cache_stats",
    "format_reexecution",
    "format_phase_breakdown",
    "format_drift",
    "format_metrics",
    "format_critical_path",
    "format_critical_path_diff",
    "format_ce_utilization",
    "format_run_comparison",
    "format_health",
    "format_alerts",
    "format_failures",
    "paper_comparison",
    "check_ordering",
    "SECTION52_PAIRS",
]

#: the (analyzed, reference) comparisons of Sections 5.2 and 5.3
SECTION52_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("DP", "NOP"),
    ("SP+DP", "DP"),
    ("JG", "NOP"),
    ("SP+DP+JG", "SP+DP"),
)


def _grid(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    def line(cells):
        return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def format_table1(sweep: SweepResult, with_hours: bool = False) -> str:
    """Render the measured Table 1 (execution time per config and size)."""
    headers = ["Configuration"] + [f"{s} pairs" for s in sweep.sizes]
    rows = []
    for label in sweep.config_labels:
        cells = [label]
        for size in sweep.sizes:
            makespan = sweep.cell(label, size).makespan
            cells.append(
                f"{makespan:.0f}s ({makespan / 3600:.2f}h)" if with_hours else f"{makespan:.0f}"
            )
        rows.append(cells)
    return _grid(headers, rows)


def format_table2(fits: Mapping[str, ConfigurationFit]) -> str:
    """Render the measured Table 2 (y-intercept and slope per config)."""
    headers = ["Configuration", "y-intercept (s)", "slope (s/data set)", "r^2"]
    rows = [
        [label, f"{fit.y_intercept:.0f}", f"{fit.slope:.1f}", f"{fit.fit.r_squared:.4f}"]
        for label, fit in fits.items()
    ]
    return _grid(headers, rows)


def format_ratios(
    fits: Mapping[str, ConfigurationFit],
    pairs: Sequence[Tuple[str, str]] = SECTION52_PAIRS,
) -> str:
    """Render the Section 5.2/5.3 speed-up and ratio analysis."""
    headers = [
        "Analyzed vs reference",
        "speed-ups (per size)",
        "y-intercept ratio",
        "slope ratio",
    ]
    rows = []
    for entry in ratios_table(fits, pairs):
        speedups = ", ".join(f"{s:.2f}" for s in entry["speedups"])
        rows.append(
            [
                f"{entry['analyzed']} vs {entry['reference']}",
                speedups,
                f"{entry['y_intercept_ratio']:.2f}",
                f"{entry['slope_ratio']:.2f}",
            ]
        )
    return _grid(headers, rows)


def format_cache_stats(stats: Optional[CacheStatsSnapshot]) -> str:
    """Per-service cache counters as a table (hits, misses, hit rate...).

    This is the warm-re-execution companion of Table 1: it shows which
    services' submissions a run skipped and how many bytes of results
    back that saving.
    """
    if stats is None or not stats.per_service:
        return "(result caching disabled or unused)"
    headers = ["Service", "hits", "coalesced", "misses", "hit rate",
               "stores", "evictions", "bytes"]
    def row(name, s):
        return [name, str(s.hits), str(s.coalesced), str(s.misses),
                f"{s.hit_rate:.0%}", str(s.stores), str(s.evictions),
                str(s.bytes_stored)]
    rows = [row(name, s) for name, s in stats]
    rows.append(row("TOTAL", stats.total))
    return _grid(headers, rows)


def format_reexecution(
    rows: Sequence[Tuple[str, float, float, int, int, Optional[CacheStatsSnapshot]]],
) -> str:
    """Cold-vs-warm makespan table, one row per configuration.

    Each row is ``(label, cold_makespan, warm_makespan, cold_jobs,
    warm_jobs, warm_stats)``; the speed-up column is what the cache
    benchmark asserts on.
    """
    headers = ["Configuration", "cold (s)", "warm (s)", "speed-up",
               "cold jobs", "warm jobs", "warm hit rate"]
    out = []
    for label, cold, warm, cold_jobs, warm_jobs, stats in rows:
        if warm > 0:
            speedup = f"{cold / warm:.0f}x"
        else:
            speedup = "inf" if cold > 0 else "-"
        hit_rate = f"{stats.hit_rate:.0%}" if stats is not None else "-"
        out.append([label, f"{cold:.0f}", f"{warm:.2f}", speedup,
                    str(cold_jobs), str(warm_jobs), hit_rate])
    return _grid(headers, out)


#: canonical display order for span names in phase breakdowns
_SPAN_ORDER = (
    "run",
    "invocation",
    "cache.lookup",
    "grid.job",
    "job.attempt",
    "job.submit",
    "job.schedule",
    "job.queue",
    "job.run",
    "job.stage_in",
    "job.stage_out",
    "job.fault",
)


def format_phase_breakdown(spans: Sequence[Span]) -> str:
    """Per-span-name duration statistics for one run's span stream.

    This is the "where did the time go" table: submission / scheduling /
    queuing / running / staging phases side by side, with the enactor's
    invocation and cache-lookup spans above them for context.
    """
    if not spans:
        return "(no spans)"
    groups: Dict[str, list] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span.duration)
    names = [n for n in _SPAN_ORDER if n in groups]
    names += sorted(set(groups) - set(names))
    headers = ["Span", "count", "total (s)", "mean (s)", "min (s)", "max (s)"]
    rows = []
    for name in names:
        durations = groups[name]
        rows.append(
            [
                name,
                str(len(durations)),
                f"{sum(durations):.1f}",
                f"{sum(durations) / len(durations):.2f}",
                f"{min(durations):.2f}",
                f"{max(durations):.2f}",
            ]
        )
    return _grid(headers, rows)


def format_drift(report: DriftReport) -> str:
    """The model-drift report: equations (1)-(4) vs the observed run.

    The table gives all four policy predictions computed from the same
    observed T matrix; the lines below compare the run's own policy
    against what it actually measured and state the live Section 5.1
    estimates (y-intercept, slope, ratios vs NOP).
    """
    headers = ["Policy", "predicted makespan (s)", ""]
    rows = [
        [label, f"{report.predictions.get(label, 0.0):.1f}",
         "<- this run" if label == report.policy else ""]
        for label in ("NOP", "DP", "SP", "SP+DP")
    ]
    lines = [
        _grid(headers, rows),
        "",
        f"modelled region: {report.n_services} services x {report.n_items} "
        f"data sets ({', '.join(report.row_names)})",
        f"observed makespan: {report.observed_makespan:.1f}s",
        f"predicted ({report.policy}): {report.predicted_makespan:.1f}s",
        f"drift: {report.drift:+.1f}s (relative error {report.relative_error:.1%})",
        f"y-intercept estimate: {report.y_intercept_estimate:.1f}s "
        f"(ratio vs NOP {report.y_intercept_ratio_vs_nop:.2f})",
        f"slope estimate: {report.slope_estimate:.2f}s/data set "
        f"(ratio vs NOP {report.slope_ratio_vs_nop:.2f})",
        f"predicted speed-up vs NOP: {report.speedup_vs_nop:.2f}x",
    ]
    return "\n".join(lines)


def format_metrics(snapshot: Optional[MetricsSnapshot]) -> str:
    """Counters, gauges and histogram summaries of one run's metrics."""
    if snapshot is None or not snapshot.names():
        return "(no metrics recorded)"
    rows = []
    for name in sorted(snapshot.counters):
        value = snapshot.counters[name]
        rendered = f"{value:.0f}" if value == int(value) else f"{value:.2f}"
        rows.append([name, "counter", rendered])
    for name in sorted(snapshot.gauges):
        rows.append(
            [name, "gauge",
             f"{snapshot.gauges[name]:.0f} (peak {snapshot.gauge_peak(name):.0f})"]
        )
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        rows.append(
            [name, "histogram",
             f"n={hist.count} mean={hist.mean:.2f}s "
             f"p50={hist.percentile(50):.2f}s max={hist.maximum:.2f}s"]
        )
    return _grid(["Metric", "kind", "value"], rows)


def format_critical_path(observed: ObservedCriticalPath) -> str:
    """The observed gating chain, one row per step, plus phase totals.

    The footer re-states the tiling identity the reconstruction
    guarantees — step durations (and phase buckets) sum to the run
    makespan — so a reader can see at a glance that nothing was lost.
    """
    headers = ["#", "processor", "label", "kind", "start (s)",
               "duration (s)", "dominant phase"]
    rows = []
    for index, step in enumerate(observed.steps, start=1):
        rows.append(
            [
                str(index),
                step.processor,
                step.label,
                step.kind,
                f"{step.start:.1f}",
                f"{step.duration:.1f}",
                step.dominant_phase(),
            ]
        )
    totals = observed.phase_totals()
    phase_cells = [
        f"{key}={totals[key]:.1f}s" for key in PHASE_KEYS if key in totals
    ]
    lines = [
        f"run {observed.trace_id} ({observed.workflow}, {observed.policy}): "
        f"{len(observed.steps)} gating steps",
        _grid(headers, rows),
        "",
        "phase totals: " + (", ".join(phase_cells) or "(none)"),
        f"grid overhead on the chain: {observed.overhead_total():.1f}s",
        f"chain total: {observed.total:.1f}s = run makespan {observed.makespan:.1f}s",
    ]
    return "\n".join(lines)


def format_critical_path_diff(diff: CriticalPathDiff) -> str:
    """Static prediction vs observed gating services, one verdict line."""
    lines = [
        "static prediction: " + (" -> ".join(diff.static) or "(empty)"),
        "observed gating:   " + (" -> ".join(diff.observed) or "(empty)"),
    ]
    if diff.matches:
        lines.append("verdict: observed chain matches the static prediction")
    else:
        if diff.missing:
            lines.append(
                "predicted but never gated: " + ", ".join(diff.missing)
            )
        if diff.unexpected:
            lines.append(
                "gated but not predicted:   " + ", ".join(diff.unexpected)
            )
    return "\n".join(lines)


def format_ce_utilization(rows: Sequence[Mapping[str, object]]) -> str:
    """Per-CE summary table from ``timeline.utilization_table`` rows."""
    if not rows:
        return "(no grid jobs in the span stream)"
    headers = ["CE", "jobs", "peak running", "peak queued",
               "busy fraction", "mean running"]
    out = [
        [
            str(row["ce"]),
            str(row["jobs"]),
            str(row["peak_running"]),
            str(row["peak_queued"]),
            f"{row['busy_fraction']:.0%}",
            f"{row['mean_running']:.2f}",
        ]
        for row in rows
    ]
    return _grid(headers, out)


def format_run_comparison(comparison: RunComparison) -> str:
    """Baseline-vs-candidate verdict: per-metric deltas, then budgets."""
    baseline = comparison.baseline
    candidate = comparison.candidate
    lines = [
        f"baseline:  {baseline.run_id or '(file)'} {baseline.policy} "
        f"makespan {baseline.makespan:.1f}s",
        f"candidate: {candidate.run_id or '(file)'} {candidate.policy} "
        f"makespan {candidate.makespan:.1f}s",
        f"checked: {', '.join(comparison.checked)}",
    ]
    if comparison.deltas:
        blown = {entry.metric for entry in comparison.regressions}
        rows = []
        for entry in comparison.deltas:
            if entry.mode == "relative":
                change = f"{entry.change:+.1%}"
                budget = f"{entry.budget:+.1%}"
            else:
                change = f"{entry.change:+.3f}"
                budget = f"{entry.budget:+.3f}"
            rows.append([
                entry.metric,
                f"{entry.baseline:.2f}",
                f"{entry.candidate:.2f}",
                change,
                budget,
                "OVER" if entry.metric in blown else "ok",
            ])
        lines.append("")
        lines.append(
            _grid(["metric", "baseline", "candidate", "change", "budget", ""], rows)
        )
    if comparison.regressions:
        lines.append("")
        lines.append("REGRESSIONS:")
        lines.extend(f"  {entry.describe()}" for entry in comparison.regressions)
    if comparison.improvements:
        lines.append("")
        lines.append("improvements:")
        lines.extend(f"  {entry.describe()}" for entry in comparison.improvements)
    lines.append("")
    lines.append(
        "verdict: OK (within budgets)"
        if comparison.ok
        else f"verdict: {len(comparison.regressions)} regression(s) over budget"
    )
    return "\n".join(lines)


def format_health(table: Sequence[CEHealth]) -> str:
    """Per-CE health table from ``RunMonitor.health_table()``."""
    if not table:
        return "(no grid activity observed)"
    headers = ["CE", "score", "attempts", "faults", "fault rate",
               "stragglers", "med queue", "med run", "med TTF", "flags"]
    rows = []
    for health in table:
        flags = []
        if health.is_blackhole:
            flags.append("BLACKHOLE")
        if health.is_straggler:
            flags.append("STRAGGLER")
        rows.append([
            health.ce,
            f"{health.score:.2f}",
            str(health.attempts),
            str(health.faults),
            f"{health.fault_rate:.0%}",
            f"{health.straggler_jobs}/{health.completed}",
            f"{health.median_queue:.1f}s",
            f"{health.median_run:.1f}s",
            f"{health.median_ttf:.1f}s" if health.faults else "-",
            ",".join(flags) or "-",
        ])
    return _grid(headers, rows)


def format_alerts(alerts: Sequence[Alert]) -> str:
    """Chronological alert table from ``RunMonitor.sorted_alerts()``."""
    if not alerts:
        return "(no alerts raised)"
    headers = ["t (s)", "kind", "severity", "scope", "subject", "message"]
    rows = [
        [
            f"{alert.time:.1f}",
            alert.kind,
            alert.severity,
            alert.scope,
            alert.subject,
            alert.message,
        ]
        for alert in alerts
    ]
    return _grid(headers, rows)


def format_failures(rows: Sequence[Mapping[str, object]]) -> str:
    """Dead-letter table from failure-report rows.

    Accepts :meth:`repro.core.failures.FailureReport.to_rows` (live run)
    or :func:`repro.observability.failure_rows_from_spans` (exported
    trace) — the two produce the same row schema.
    """
    if not rows:
        return "(no contained failures)"
    headers = ["processor", "item", "kind", "computing elements", "error"]
    table = []
    for row in rows:
        ces = row.get("computing_elements") or ()
        table.append(
            [
                str(row.get("processor", "")),
                str(row.get("label", "")),
                str(row.get("kind", "failed")),
                ", ".join(str(c) for c in ces) or "-",
                _truncate(str(row.get("error", "")), 60),
            ]
        )
    return _grid(headers, table)


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def paper_comparison(sweep: SweepResult) -> str:
    """Side-by-side paper-vs-measured table for every Table 1 cell.

    Also reports, per configuration, the paper's regression line next
    to the measured one — the shape comparison EXPERIMENTS.md records.
    """
    headers = ["Configuration", "size", "paper (s)", "measured (s)", "measured/paper"]
    rows = []
    for label in sweep.config_labels:
        for size in sweep.sizes:
            paper = PAPER_TABLE1.get(label, {}).get(size)
            measured = sweep.cell(label, size).makespan
            ratio = f"{measured / paper:.2f}" if paper else "-"
            rows.append([label, size, f"{paper:.0f}" if paper else "-", f"{measured:.0f}", ratio])
    table = _grid(headers, rows)

    fits = sweep.table2()
    headers2 = ["Configuration", "paper y-int", "measured y-int", "paper slope", "measured slope"]
    rows2 = []
    for label in sweep.config_labels:
        paper = PAPER_TABLE2.get(label)
        fit = fits[label]
        rows2.append(
            [
                label,
                f"{paper[0]:.0f}" if paper else "-",
                f"{fit.y_intercept:.0f}",
                f"{paper[1]:.0f}" if paper else "-",
                f"{fit.slope:.1f}",
            ]
        )
    return table + "\n\n" + _grid(headers2, rows2)


def check_ordering(sweep: SweepResult) -> Dict[int, bool]:
    """Check the paper's headline shape at every size.

    The published ordering at every input size is
    ``NOP > JG > SP > DP > SP+DP > SP+DP+JG``; returns size -> whether
    the measured sweep preserves it.
    """
    expected = ["NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"]
    present = [label for label in expected if label in sweep.config_labels]
    verdict: Dict[int, bool] = {}
    for size in sweep.sizes:
        times = [sweep.cell(label, size).makespan for label in present]
        verdict[size] = all(t1 > t2 for t1, t2 in zip(times, times[1:]))
    return verdict
