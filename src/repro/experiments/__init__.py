"""Experiment drivers shared by the benchmark suite and EXPERIMENTS.md.

* :mod:`~repro.experiments.calibration` — the EGEE-like calibration
  constants and the paper's published numbers (Tables 1 and 2),
* :mod:`~repro.experiments.harness` — run configurations × data-set
  sizes on fresh engines and collect rows,
* :mod:`~repro.experiments.reporting` — text tables, paper-vs-measured
  comparisons, and shape checks,
* :mod:`~repro.experiments.analysis` — post-hoc job-record statistics
  (overhead breakdowns, per-service totals),
* ``python -m repro.experiments`` — the command-line entry point
  (``table1``, ``diagrams``, ``bronze``).
"""

from repro.experiments.analysis import (
    job_statistics,
    overhead_breakdown,
    per_service_statistics,
)
from repro.experiments.calibration import (
    PAPER_SIZES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    make_experiment_grid,
)
from repro.experiments.harness import ExperimentRow, SweepResult, run_configuration, run_sweep
from repro.experiments.reporting import (
    format_table1,
    format_table2,
    format_ratios,
    paper_comparison,
)

__all__ = [
    "PAPER_SIZES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "make_experiment_grid",
    "ExperimentRow",
    "SweepResult",
    "run_configuration",
    "run_sweep",
    "format_table1",
    "format_table2",
    "format_ratios",
    "paper_comparison",
    "job_statistics",
    "overhead_breakdown",
    "per_service_statistics",
]
