"""Shared low-level utilities: RNG streams, units, statistics, validation.

These helpers are deliberately free of any simulation or workflow
concepts so that every other subpackage can depend on them without
cycles.
"""

from repro.util.rng import RandomStreams
from repro.util.stats import LinearFit, linear_fit, summarize
from repro.util.units import (
    GIBIBYTE,
    HOUR,
    KIBIBYTE,
    MEBIBYTE,
    MINUTE,
    SECOND,
    format_duration,
    format_size,
)

__all__ = [
    "RandomStreams",
    "LinearFit",
    "linear_fit",
    "summarize",
    "SECOND",
    "MINUTE",
    "HOUR",
    "KIBIBYTE",
    "MEBIBYTE",
    "GIBIBYTE",
    "format_duration",
    "format_size",
]
