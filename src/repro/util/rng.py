"""Reproducible named random streams.

Every stochastic component of the simulator (overhead sampling,
background load, algorithm durations, failure injection, ...) draws from
its own named substream so that

* experiments are reproducible from a single integer seed, and
* adding a new consumer of randomness does not perturb the draws seen
  by existing consumers (stream independence by name, not by call
  order).

Substreams are derived with :class:`numpy.random.SeedSequence` using a
stable 64-bit hash of the stream name, which is the mechanism NumPy
documents for building independent generators.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RandomStreams", "stable_hash64"]


def stable_hash64(name: str) -> int:
    """Return a stable (process-independent) 64-bit hash of *name*.

    Python's builtin ``hash`` is salted per process, so it cannot be
    used to derive reproducible seeds; BLAKE2 is stable.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` s.

    Parameters
    ----------
    seed:
        Master seed for the whole experiment.  Two ``RandomStreams``
        built with the same seed hand out identical generators for
        identical names.

    Ownership
    ---------
    An instance is the unit of randomness ownership — there is no
    module-global generator state anywhere in the simulator.  Each
    concurrent enactment constructs its own ``RandomStreams`` so its
    draws are independent of how runs interleave on the shared engine;
    shared *environment* randomness (grid overheads, faults) lives in
    the grid's own instance, which is deliberately common to all runs.
    Application outputs additionally key their generators by input
    identity (see ``repro.apps.registration``), which is what makes an
    interleaved run byte-identical to the same run executed serially.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> g1 = streams.get("overhead")
    >>> g2 = RandomStreams(seed=42).get("overhead")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._generators: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The same ``RandomStreams`` instance returns the *same generator
        object* for repeated calls with one name, so state advances
        across uses — which is what a simulation component wants.
        """
        if name not in self._generators:
            seq = np.random.SeedSequence([self._seed, stable_hash64(name)])
            self._generators[name] = np.random.default_rng(seq)
        return self._generators[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a new independent factory namespaced under *name*.

        Useful to give a whole subsystem (e.g. one computing element)
        its own family of streams.
        """
        return RandomStreams(seed=stable_hash64(f"{self._seed}/{name}") & 0x7FFFFFFFFFFFFFFF)

    def names(self) -> Iterator[str]:
        """Iterate over the stream names created so far."""
        return iter(sorted(self._generators))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._generators)})"
