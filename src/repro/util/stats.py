"""Statistics helpers used by the analysis layer.

The paper's Section 5.1 interprets execution-time curves through their
**y-intercept** (incompressible infrastructure overhead) and **slope**
(data scalability), obtained by linear regression over the measured
points.  :func:`linear_fit` implements exactly that regression and is
what `repro.model.metrics` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "linear_fit", "summarize", "Summary"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = intercept + slope * x``.

    Attributes
    ----------
    intercept:
        The y-intercept — in the paper's reading, the time spent to
        process *zero* data sets, i.e. the fixed cost of accessing the
        infrastructure (Table 2, first column).
    slope:
        Seconds per additional data set (Table 2, second column).
    r_squared:
        Coefficient of determination of the fit; the paper notes the
        measured curves are "almost straight lines", which shows up as
        r² close to 1.
    """

    intercept: float
    slope: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line at *x*."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares linear regression of *y* against *x*.

    Raises
    ------
    ValueError
        If fewer than two points are given or the x values are all
        identical (the slope would be undefined).
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(f"x and y lengths differ: {xs.shape} vs {ys.shape}")
    if xs.size < 2:
        raise ValueError("linear_fit needs at least two points")
    if np.ptp(xs) == 0:
        raise ValueError("all x values identical; slope undefined")
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = intercept + slope * xs
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(intercept=float(intercept), slope=float(slope), r_squared=r_squared)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample (used in reports)."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample of values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
