"""Probability distributions for stochastic simulation parameters.

Every random quantity in the simulator (job overheads, compute times,
background-load inter-arrivals, failure delays, ...) is described by a
:class:`Distribution` object sampled with an explicit
:class:`numpy.random.Generator`.  Keeping the generator external makes
components reproducible and lets tests drive them with fixed streams.

The paper repeatedly stresses that EGEE's per-job overhead is *high and
variable* ("around 10 minutes ... ± 5 minutes", Section 5.1) and that
this variability is precisely why service parallelism pays off even
under data parallelism (Section 3.5.4).  The distributions here are the
knobs that the calibration layer (`repro.experiments.calibration`) turns
to reproduce that regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "TruncatedNormal",
    "LogNormal",
    "Exponential",
    "Empirical",
    "Shifted",
    "SumOf",
    "as_distribution",
]


class Distribution:
    """Base class: a non-negative random duration/size generator."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytical mean of the distribution."""
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* values (vectorized where the backend allows)."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always *value*.  Used by ideal testbeds."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"Constant value must be >= 0, got {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=float)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mu, sigma) truncated below at *floor* by resampling.

    This is the paper-calibration workhorse: "10 minutes ± 5 minutes"
    overheads become ``TruncatedNormal(600, 300, floor=30)``.

    The analytical mean reported is the mean of the *truncated*
    distribution (computed from the standard one-sided truncation
    formula), so calibration code can reason about the effective value.
    """

    mu: float
    sigma: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.floor < 0:
            raise ValueError(f"floor must be >= 0, got {self.floor}")

    def sample(self, rng: np.random.Generator) -> float:
        if self.sigma == 0:
            return max(self.mu, self.floor)
        for _ in range(1000):
            value = rng.normal(self.mu, self.sigma)
            if value >= self.floor:
                return float(value)
        return self.floor  # pragma: no cover - pathological parameters

    def mean(self) -> float:
        if self.sigma == 0:
            return max(self.mu, self.floor)
        alpha = (self.floor - self.mu) / self.sigma
        phi = math.exp(-0.5 * alpha * alpha) / math.sqrt(2.0 * math.pi)
        big_phi = 0.5 * (1.0 + math.erf(alpha / math.sqrt(2.0)))
        tail = 1.0 - big_phi
        if tail <= 0:  # pragma: no cover - floor far above mu
            return self.floor
        return self.mu + self.sigma * phi / tail

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.sigma == 0:
            return np.full(n, max(self.mu, self.floor), dtype=float)
        out = rng.normal(self.mu, self.sigma, size=n)
        bad = out < self.floor
        while bad.any():
            out[bad] = rng.normal(self.mu, self.sigma, size=int(bad.sum()))
            bad = out < self.floor
        return out


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by its *arithmetic* mean and sigma of the log.

    Heavy right tail — a good model for batch-queue waiting times on a
    loaded multi-user grid, where a few jobs get stuck far longer than
    the median (the paper's "D1 remained blocked on a waiting queue").
    """

    mean_value: float
    sigma_log: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"mean_value must be > 0, got {self.mean_value}")
        if self.sigma_log < 0:
            raise ValueError(f"sigma_log must be >= 0, got {self.sigma_log}")

    def _mu_log(self) -> float:
        return math.log(self.mean_value) - 0.5 * self.sigma_log**2

    def sample(self, rng: np.random.Generator) -> float:
        if self.sigma_log == 0:
            return self.mean_value
        return float(rng.lognormal(self._mu_log(), self.sigma_log))

    def mean(self) -> float:
        return self.mean_value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.sigma_log == 0:
            return np.full(n, self.mean_value, dtype=float)
        return rng.lognormal(self._mu_log(), self.sigma_log, size=n)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (inter-arrival model for load)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"mean_value must be > 0, got {self.mean_value}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        return self.mean_value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size=n)


class Empirical(Distribution):
    """Resamples uniformly from observed values (trace-driven replay)."""

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("Empirical needs at least one value")
        if (arr < 0).any():
            raise ValueError("Empirical values must be >= 0")
        self._values = arr

    @property
    def values(self) -> np.ndarray:
        """The backing sample (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self._values))

    def mean(self) -> float:
        return float(self._values.mean())

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self._values, size=n)

    def __repr__(self) -> str:
        return f"Empirical(n={self._values.size}, mean={self.mean():.3g})"


class SumOf(Distribution):
    """Sum of independent component distributions.

    Used by composite (grouped) services: a grouped job's compute time
    is the sum of its constituents' compute times (Section 3.6 — the
    codes run back-to-back inside a single grid job).
    """

    def __init__(self, components: Sequence[Distribution]) -> None:
        comps = tuple(components)
        if not comps:
            raise ValueError("SumOf needs at least one component")
        for c in comps:
            if not isinstance(c, Distribution):
                raise TypeError(f"SumOf components must be Distributions, got {type(c).__name__}")
        self.components = comps

    def sample(self, rng: np.random.Generator) -> float:
        return float(sum(c.sample(rng) for c in self.components))

    def mean(self) -> float:
        return float(sum(c.mean() for c in self.components))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        total = np.zeros(n, dtype=float)
        for c in self.components:
            total += c.sample_many(rng, n)
        return total

    def __repr__(self) -> str:
        return f"SumOf({len(self.components)} components, mean={self.mean():.3g})"


@dataclass(frozen=True)
class Shifted(Distribution):
    """``base`` shifted right by a fixed non-negative *offset*."""

    base: Distribution
    offset: float

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.base.sample(rng)

    def mean(self) -> float:
        return self.offset + self.base.mean()

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.offset + self.base.sample_many(rng, n)


def as_distribution(value: "float | Distribution") -> Distribution:
    """Coerce a bare number to :class:`Constant`; pass distributions through."""
    if isinstance(value, Distribution):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"expected number or Distribution, got {type(value).__name__}")
