"""Small argument-validation helpers.

Consistent error messages across the code base; all raise standard
exception types so callers do not need repro-specific exception
handling for plain misuse.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require_positive", "require_non_negative", "require_in", "require_type"]


def require_positive(value: float, name: str) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return *value* if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in(value: Any, options: tuple, name: str) -> Any:
    """Return *value* if it is one of *options*, else raise ``ValueError``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> Any:
    """Return *value* if it is an instance of *types*, else raise ``TypeError``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
