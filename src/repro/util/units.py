"""Time and data-size units.

The simulator's base units are **seconds** for time and **bytes** for
data sizes.  These constants and formatters keep magic numbers out of
the rest of the code base and make calibration tables readable.
"""

from __future__ import annotations

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "KIBIBYTE",
    "MEBIBYTE",
    "GIBIBYTE",
    "format_duration",
    "format_size",
]

SECOND = 1.0
MINUTE = 60.0 * SECOND
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR

KIBIBYTE = 1024
MEBIBYTE = 1024 * KIBIBYTE
GIBIBYTE = 1024 * MEBIBYTE


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_duration(32855)
    '9h07m35s'
    >>> format_duration(59.5)
    '59.5s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    total = int(round(seconds))
    hours, rem = divmod(total, int(HOUR))
    minutes, secs = divmod(rem, int(MINUTE))
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    return f"{minutes}m{secs:02d}s"


def format_size(num_bytes: float) -> str:
    """Render a byte count with binary prefixes.

    >>> format_size(7.8 * MEBIBYTE)
    '7.8 MiB'
    >>> format_size(512)
    '512 B'
    """
    if num_bytes < 0:
        return "-" + format_size(-num_bytes)
    if num_bytes < KIBIBYTE:
        return f"{int(num_bytes)} B"
    for unit, name in ((GIBIBYTE, "GiB"), (MEBIBYTE, "MiB"), (KIBIBYTE, "KiB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.1f} {name}"
    raise AssertionError("unreachable")
