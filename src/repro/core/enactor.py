"""MOTEUR: the optimized service-based workflow enactor.

This is the paper's prototype (Section 4.1) rebuilt on the simulated
grid.  "To our knowledge, this is the only service-based workflow
enactor providing all these levels of optimization":

* **asynchronous service calls** — every invocation is a simulated
  process, the analogue of the "independent system threads" MOTEUR
  spawns (Section 3.1),
* **workflow parallelism** — independent branches always run
  concurrently (Section 3.2),
* **data parallelism** — a service fires one concurrent job per
  available input item when enabled (Section 3.3),
* **service parallelism** — per-item firing lets different services
  process different items simultaneously; disabling it imposes the
  stage barriers described by equations (1)-(2) (Section 3.4),
* **job grouping** — sequential wrapped services are fused into
  single-job virtual services before execution (Section 3.6),
* **data synchronization barriers** — synchronization processors (and
  targets of Scufl coordination constraints) consume their entire input
  streams in one invocation (Section 2.3),
* **provenance-aware iteration strategies** — dot products stay
  causally correct under DP+SP thanks to history trees (Section 4.1).

Execution model
---------------
The enactor pushes :class:`~repro.core.tokens.DataToken` s along the
workflow links.  Sources emit their data sets at start time; each
token offered to a processor's iteration engine may complete one or
more *bindings*; each binding becomes an invocation process that (a)
waits for the stage barrier when SP is off, (b) acquires the service's
concurrency gate (capacity 1 without DP), (c) invokes the black-box
service, and (d) delivers the outputs downstream with a derived
history tree.  Enactment completes when no invocation is in flight —
a quiescence criterion that also covers workflows with loops, where
stream lengths cannot be known in advance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache import CacheStatsSnapshot, ResultCache, invocation_key
from repro.core.config import OptimizationConfig
from repro.core.failures import DeadLetter, FailureReport, InvocationFailure
from repro.core.grouping import GroupInfo, group_workflow
from repro.core.iteration import Binding, IterationEngine, expected_bindings
from repro.core.journal import EnactmentJournal, JournalEntry, SimulatedCrash
from repro.core.provenance import HistoryTree
from repro.core.tokens import DataToken, NoData
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.grid.job import JobFailedError
from repro.grid.middleware import Grid
from repro.observability.bus import InstrumentationBus
from repro.observability.metrics import MetricsSnapshot
from repro.observability.spans import Span
from repro.services.base import GridData, ServiceError
from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource
from repro.workflow.analysis import find_cycles
from repro.workflow.datasets import InputDataSet
from repro.workflow.graph import Processor, ProcessorKind, Workflow, WorkflowError
from repro.workflow.validation import require_valid

__all__ = ["MoteurEnactor", "EnactmentResult", "EnactmentError", "EnactmentCancelled"]


class EnactmentError(RuntimeError):
    """The enactment failed (service error, job failure, deadlock...)."""


class EnactmentCancelled(EnactmentError):
    """An in-flight enactment was cancelled (see :meth:`MoteurEnactor.cancel`).

    Carries the run's :class:`~repro.core.failures.FailureReport`, whose
    ``cancelled_reason`` / ``cancelled_jobs`` fields describe the
    cancellation itself on top of whatever the run had already lost.
    """

    def __init__(self, workflow: str, reason: str, report: FailureReport) -> None:
        super().__init__(f"enactment of {workflow!r} cancelled: {reason}")
        self.workflow = workflow
        self.reason = reason
        self.report = report


@dataclass
class EnactmentResult:
    """Everything one enactment produced."""

    workflow_name: str
    config: OptimizationConfig
    started_at: float
    finished_at: float
    #: sink name -> data items collected, arrival order
    outputs: Dict[str, List[GridData]]
    #: sink name -> provenance trees matching ``outputs``
    histories: Dict[str, List[HistoryTree]]
    trace: ExecutionTrace
    invocation_count: int
    groups: List[GroupInfo] = field(default_factory=list)
    #: per-service cache counters for THIS run (None when caching is off)
    cache_stats: Optional[CacheStatsSnapshot] = None
    #: metrics snapshot for THIS run (None when instrumentation is off)
    metrics: Optional[MetricsSnapshot] = None
    #: what a best-effort run lost (None under strict failure mode)
    failures: Optional[FailureReport] = None
    #: invocations satisfied from the enactment journal on a resume
    replayed_count: int = 0

    @property
    def makespan(self) -> float:
        """Wall-clock seconds from enactment start to completion."""
        return self.finished_at - self.started_at

    def output_values(self, sink: str) -> List[Any]:
        """Convenience: the plain values collected at *sink*."""
        return [d.value for d in self.outputs.get(sink, [])]


class _ProcessorState:
    """Mutable per-processor bookkeeping for one enactment."""

    __slots__ = (
        "processor",
        "iteration",
        "gate",
        "emitted",
        "invocations_done",
        "arrived",
        "expected",
        "preds",
        "preds_drained",
        "drained",
        "sync_buffers",
        "collected",
        "collected_histories",
        "tracks_draining",
    )

    def __init__(self, processor: Processor) -> None:
        self.processor = processor
        self.iteration: Optional[IterationEngine] = None
        self.gate: Optional[Resource] = None
        self.emitted: Dict[str, int] = {
            port: 0 for port in processor.effective_output_ports()
        }
        self.invocations_done = 0
        self.arrived = 0  # sink-side token count
        self.expected: Optional[int] = None
        self.preds: List[str] = []
        self.preds_drained: Optional[Event] = None
        self.drained: Optional[Event] = None
        self.sync_buffers: Dict[str, List[DataToken]] = {}
        self.collected: List[GridData] = []
        self.collected_histories: List[HistoryTree] = []
        self.tracks_draining = True


class MoteurEnactor:
    """The optimized enactor; one instance may run several data sets.

    Parameters
    ----------
    engine:
        The simulation engine shared with the services/grid.
    workflow:
        A bound workflow (every service processor carries a live
        service).  With job grouping enabled the enactor derives and
        runs a grouped copy; the original is untouched.
    config:
        The optimization switches (defaults to NOP).
    grid:
        When given, grid-file items of the input data set are
        registered in the grid's replica catalog before execution.
    cache:
        A provenance-keyed :class:`~repro.cache.ResultCache`.  When
        given (or when ``config.cache`` is on, which builds one from the
        configuration), every invocation consults it first: a hit
        advances the dataflow immediately — zero grid jobs, zero
        simulated time, no service concurrency slot — and emits a
        ``kind="cached"`` trace event.  Share one instance (or one
        :class:`~repro.cache.FileStore` directory) across enactors to
        make warm re-execution nearly free.
    instrumentation:
        An :class:`~repro.observability.InstrumentationBus`.  When
        given, each enactment emits a correlated span tree (run →
        invocations → cache lookups; the grid adds job and phase spans
        when it shares the bus) and the per-run metrics delta lands on
        ``EnactmentResult.metrics``.  A grid without its own bus is
        wired to this one automatically.
    """

    def __init__(
        self,
        engine: Engine,
        workflow: Workflow,
        config: Optional[OptimizationConfig] = None,
        grid: Optional[Grid] = None,
        cache: Optional[ResultCache] = None,
        instrumentation: Optional[InstrumentationBus] = None,
        journal: "Optional[EnactmentJournal | str | Path]" = None,
        crash_after_n_invocations: Optional[int] = None,
        run_attributes: Optional[Mapping[str, Any]] = None,
        claim_run_span: bool = True,
    ) -> None:
        self.engine = engine
        self.config = config or OptimizationConfig.nop()
        self.grid = grid
        self.instrumentation = instrumentation
        #: hot-path profiler (repro.observability.profiling); installed
        #: by ``profiling.install`` / the service scheduler.  None keeps
        #: every instrumented site at one attribute test of overhead.
        self.profiler = None
        #: extra attributes stamped on the run span (e.g. tenant / run id)
        self.run_attributes: Dict[str, Any] = dict(run_attributes or {})
        #: whether this enactor claims the bus-wide ``run_span`` slot.
        #: The slot is single-occupancy, so a scheduler multiplexing
        #: several concurrent enactments on one bus sets False and
        #: relies on tenant/run tags for span attribution instead.
        self.claim_run_span = claim_run_span
        if isinstance(journal, (str, Path)):
            journal = EnactmentJournal(journal)
        #: crash-safe WAL of completed invocations (see repro.core.journal)
        self.journal = journal
        #: simulated-crash hook: raise SimulatedCrash once this many
        #: non-replayed invocations have completed (crash-resume tests)
        self.crash_after_n_invocations = crash_after_n_invocations
        if grid is not None and instrumentation is not None and grid.instrumentation is None:
            grid.instrumentation = instrumentation
        self.cache = cache if cache is not None else ResultCache.from_config(self.config)
        require_valid(workflow)
        for processor in workflow.services():
            if processor.service is None:
                raise WorkflowError(
                    f"processor {processor.name!r} has no bound service; "
                    "bind it (see repro.workflow.scufl.bind_services) before enacting"
                )
        self.original_workflow = workflow
        self.groups: List[GroupInfo] = []
        if self.config.job_grouping:
            self.workflow, self.groups = group_workflow(workflow, engine)
        else:
            self.workflow = workflow

        cycles = find_cycles(self.workflow)
        self._cyclic_processors = {name for cycle in cycles for name in cycle}
        if self._cyclic_processors and not self.config.service_parallelism:
            raise WorkflowError(
                "workflows with loops require service parallelism: a stage "
                "barrier would wait for a stream that never ends "
                f"(cycle through {sorted(self._cyclic_processors)})"
            )
        # Synchronization set: flagged processors plus coordination targets
        # ("we used those coordination constraints to identify services that
        #  require data synchronization").
        self._sync = {
            p.name for p in self.workflow.processors.values() if p.synchronization
        }
        self._sync.update(after for _, after in self.workflow.coordination_constraints)
        bad_sync = self._sync & self._cyclic_processors
        if bad_sync:
            raise WorkflowError(
                f"synchronization processors on a cycle can never fire: {sorted(bad_sync)}"
            )

        # -- per-run state, reset by enact() --
        self._states: Dict[str, _ProcessorState] = {}
        self._in_flight = 0
        self._completion: Optional[Event] = None
        self._started_at = 0.0
        self._trace = ExecutionTrace()
        self._invocation_count = 0
        self._failed = False
        self._cancelled = False
        self._cache_baseline: Optional[CacheStatsSnapshot] = None
        self._run_span: Optional[Span] = None
        self._trace_id = ""
        self._metrics_baseline: Optional[MetricsSnapshot] = None
        self._report = FailureReport()
        self._replay: Dict[str, JournalEntry] = {}
        self._replayed_count = 0
        self._progress = 0  # non-replayed completions (crash hook counter)

    # -- public API ----------------------------------------------------------
    def run(
        self,
        dataset: "InputDataSet | Mapping[str, Sequence[Any]]",
        replay: Optional[Mapping[str, JournalEntry]] = None,
    ) -> EnactmentResult:
        """Enact the workflow on *dataset*, driving the engine to completion."""
        completion = self.enact(dataset, replay=replay)
        return self.engine.run(until=completion)

    def resume(
        self,
        dataset: "InputDataSet | Mapping[str, Sequence[Any]]",
        journal: "Optional[EnactmentJournal | str | Path]" = None,
    ) -> EnactmentResult:
        """Continue an interrupted enactment from its journal.

        Every invocation recorded in the journal (this enactor's own,
        unless *journal* overrides it) is replayed instantly — zero grid
        jobs, ``kind="replayed"`` trace events — and only the remaining
        work executes.  With the same seed and dataset, the final
        outputs are byte-identical to an uninterrupted run.
        """
        source = journal if journal is not None else self.journal
        if source is None:
            raise ValueError("resume() needs a journal (none configured on this enactor)")
        if isinstance(source, (str, Path)):
            source = EnactmentJournal(source)
        return self.run(dataset, replay=source.load())

    def cancel(self, reason: str = "cancelled", job_filter=None) -> FailureReport:
        """Cancel the in-flight enactment.

        Blocks further invocations from spawning, withdraws this run's
        queued grid jobs with ``resubmit=False`` (their slots go back to
        the other tenants — no free resubmission), and fails the
        completion event with :class:`EnactmentCancelled`.  Jobs already
        executing on a worker are left to drain; their late completions
        and failures are absorbed harmlessly.

        *job_filter* is a predicate over
        :class:`~repro.grid.job.JobRecord` selecting which queued jobs
        belong to this run.  The default matches the ``run`` tag from
        ``run_attributes`` when one is set (the multi-tenant case, where
        several runs share the testbed), and otherwise withdraws every
        queued job (the single-run case).

        Returns the run's :class:`FailureReport` — also carried by the
        :class:`EnactmentCancelled` the completion event fails with.
        The caller must keep driving the engine (or have a callback on
        the completion event) so the scheduled cancellations process.
        """
        if self._completion is None or self._completion.triggered:
            raise EnactmentError(
                f"no in-flight enactment of {self.workflow.name!r} to cancel"
            )
        if self._cancelled:
            return self._report
        self._cancelled = True
        if job_filter is None:
            run_id = self.run_attributes.get("run")
            if run_id is not None:
                def job_filter(record):  # noqa: E306
                    return record.description.tags.get("run") == run_id
        released = 0
        if self.grid is not None:
            for ce in self.grid.computing_elements:
                released += len(
                    ce.cancel_queued(reason=reason, resubmit=False, predicate=job_filter)
                )
        self._report.cancelled_reason = reason
        self._report.cancelled_jobs = released
        if self.instrumentation is not None:
            self.instrumentation.metrics.counter("enactor.cancellations").inc()
        self._close_run_span(status="cancelled", reason=reason)
        self._failed = True
        error = EnactmentCancelled(self.workflow.name, reason, self._report)
        # Pre-defuse: the scheduler harvests via callbacks, and nothing
        # should crash the shared engine if no-one is waiting.
        self._completion.defused = True
        self._completion.fail(error)
        return self._report

    def enact(
        self,
        dataset: "InputDataSet | Mapping[str, Sequence[Any]]",
        replay: Optional[Mapping[str, JournalEntry]] = None,
    ) -> Event:
        """Start an enactment; returns an event yielding the result.

        Use this form to embed the enactment in a larger simulation (or
        to run several enactments concurrently on one engine — each
        needs its own enactor instance).  *replay* is a journal's
        replay map (see :meth:`resume`).
        """
        data = self._normalize_dataset(dataset)
        self._reset()
        if replay:
            self._replay = dict(replay)
        if self.journal is not None:
            self.journal.append_run(self.workflow.name, self.config.label, self.engine.now)
        self._build_states()
        self._register_input_files(data)
        self._emit_sources(data)
        self._fire_inputless_services()
        self._check_completion()
        return self._completion

    # -- setup ------------------------------------------------------------------
    def _normalize_dataset(
        self, dataset: "InputDataSet | Mapping[str, Sequence[Any]]"
    ) -> InputDataSet:
        if isinstance(dataset, InputDataSet):
            return dataset
        if isinstance(dataset, Mapping):
            return InputDataSet.from_values("adhoc", **{k: list(v) for k, v in dataset.items()})
        raise TypeError(
            f"dataset must be an InputDataSet or a mapping, got {type(dataset).__name__}"
        )

    def _reset(self) -> None:
        self._states = {}
        self._in_flight = 0
        self._completion = self.engine.event(name=f"enactment:{self.workflow.name}")
        self._started_at = self.engine.now
        self._trace = ExecutionTrace()
        self._invocation_count = 0
        self._failed = False
        self._cancelled = False
        self._cache_baseline = self.cache.snapshot() if self.cache is not None else None
        self._run_span = None
        self._trace_id = ""
        self._metrics_baseline = None
        self._report = FailureReport()
        self._replay = {}
        self._replayed_count = 0
        self._progress = 0
        bus = self.instrumentation
        if bus is not None:
            self._metrics_baseline = bus.metrics.snapshot()
            self._trace_id = bus.next_trace_id(self.workflow.name)
            self._run_span = bus.begin(
                "run",
                "enactor",
                self.engine.now,
                trace_id=self._trace_id,
                workflow=self.workflow.name,
                data_parallelism=self.config.data_parallelism,
                service_parallelism=self.config.service_parallelism,
                job_grouping=self.config.job_grouping,
                **self.run_attributes,
            )
            if self.claim_run_span:
                bus.run_span = self._run_span

    def _build_states(self) -> None:
        for name, processor in self.workflow.processors.items():
            state = _ProcessorState(processor)
            state.tracks_draining = name not in self._cyclic_processors
            if processor.kind is ProcessorKind.SERVICE:
                ports = processor.effective_input_ports()
                if name in self._sync:
                    state.sync_buffers = {port: [] for port in ports}
                elif ports:
                    state.iteration = IterationEngine(ports, processor.iteration_strategy)
                state.gate = Resource(
                    self.engine, self.config.service_concurrency, name=f"gate:{name}"
                )
            if state.tracks_draining:
                state.drained = self.engine.event(name=f"drained:{name}")
            self._states[name] = state

        # Predecessors: data links plus coordination (control) links.
        for name, state in self._states.items():
            preds = list(self.workflow.predecessors(name))
            for before, after in self.workflow.coordination_constraints:
                if after == name and before not in preds:
                    preds.append(before)
            state.preds = preds
            if state.tracks_draining:
                pred_events = []
                incomplete = False
                for pred in preds:
                    pred_state = self._states[pred]
                    if pred_state.drained is None:
                        incomplete = True  # pred on a cycle: no stream accounting
                        break
                    pred_events.append(pred_state.drained)
                if incomplete:
                    state.tracks_draining = False
                    state.drained = None
                elif pred_events:
                    state.preds_drained = self.engine.all_of(
                        pred_events, name=f"preds-drained:{name}"
                    )
                    state.preds_drained.callbacks.append(
                        lambda _evt, s=state: self._check_drained(s)
                    )
            if name in self._sync:
                if state.preds_drained is None and state.preds:
                    raise WorkflowError(
                        f"synchronization processor {name!r} depends on a cyclic "
                        "region; its input stream length is undecidable"
                    )
                self._spawn_sync(state)

    def _register_input_files(self, dataset: InputDataSet) -> None:
        if self.grid is None:
            return
        for file in dataset.files():
            if not self.grid.catalog.knows(file.gfn):
                self.grid.add_input_file(file)

    def _emit_sources(self, dataset: InputDataSet) -> None:
        profiler = self.profiler
        for source in self.workflow.sources():
            items = dataset.items(source.name)
            state = self._states[source.name]
            port = source.effective_output_ports()[0]
            for index, item in enumerate(items):
                if profiler is not None:
                    profiler.count("enactor.tokens")
                token = DataToken(
                    data=item.grid_data(), history=HistoryTree.leaf(source.name, index)
                )
                state.emitted[port] += 1
                self._deliver(source.name, port, token)
            if state.drained is not None:
                state.expected = 0
                state.drained.succeed(len(items))

    def _fire_inputless_services(self) -> None:
        for processor in self.workflow.services():
            if not processor.effective_input_ports() and processor.name not in self._sync:
                self._spawn_invocation(self._states[processor.name], {})

    # -- token flow ---------------------------------------------------------------
    def _deliver(self, from_processor: str, out_port: str, token: DataToken) -> None:
        profiler = self.profiler
        if profiler is None:
            fanout = 0
            for link in self.workflow.links_out_of(from_processor, out_port):
                self._accept(link.target.processor, link.target.port, token)
                fanout += 1
            self._note_routed_bytes(token, fanout)
            return
        profiler.enter("enactor.route")
        try:
            fanout = 0
            for link in self.workflow.links_out_of(from_processor, out_port):
                self._accept(link.target.processor, link.target.port, token)
                fanout += 1
            self._note_routed_bytes(token, fanout)
        finally:
            profiler.exit()

    def _note_routed_bytes(self, token: DataToken, fanout: int) -> None:
        """Account the enactor-routed data volume of one delivery.

        Every token a centralized enactor routes carries its payload
        file through the enactor host once per consumer — the traffic
        Barker's choreography argument wants off the orchestrator, and
        the ROADMAP item 4 yardstick (``bytes.enactor_moved``) any
        future choreography mode must beat.
        """
        if fanout == 0:
            return
        bus = self.instrumentation
        if bus is None:
            return
        file = token.data.file
        if file is None:
            return
        moved = file.size * fanout
        bus.metrics.counter("bytes.enactor_moved").inc(moved)
        bus.metrics.counter("bytes.total").inc(moved)

    def _accept(self, name: str, port: str, token: DataToken) -> None:
        state = self._states[name]
        processor = state.processor
        if processor.kind is ProcessorKind.SINK:
            if token.poisoned and token.failure is not None:
                # Dead letter: the lineage died upstream; the sink keeps
                # the obituary, not a data item.
                self._report.dead_letters.append(
                    DeadLetter(sink=name, label=token.label, root=token.failure)
                )
            else:
                state.collected.append(token.data)
                state.collected_histories.append(token.history)
            state.arrived += 1
            self._check_drained(state)
            return
        if name in self._sync:
            state.sync_buffers[port].append(token)
            return
        assert state.iteration is not None
        for binding in state.iteration.offer(port, token):
            self._spawn_invocation(state, binding)

    def _spawn_invocation(self, state: _ProcessorState, binding: Binding) -> None:
        if self._cancelled:
            return  # a cancelled run starts no new work
        self._in_flight += 1
        self._note_in_flight()
        self.engine.process(
            self._invoke(state, binding), name=f"moteur:{state.processor.name}"
        )

    # -- instrumentation ---------------------------------------------------------
    def _note_in_flight(self) -> None:
        """Track the in-flight invocation gauge (peak = real concurrency)."""
        if self.instrumentation is not None:
            self.instrumentation.metrics.gauge("enactor.in_flight").set(self._in_flight)

    def _record_cache_lookup(self, processor: str, start: float, status: str) -> None:
        """Span + counter for one cache consultation (hit/miss/coalesced).

        A hit or miss is instantaneous; a coalesced lookup covers the
        wait on the in-flight leader, so the span has real duration.
        """
        bus = self.instrumentation
        if bus is None:
            return
        bus.metrics.counter(f"cache.lookups.{status}").inc()
        bus.record(
            "cache.lookup",
            "cache",
            start,
            self.engine.now,
            parent=self._run_span,
            trace_id=self._trace_id,
            status=status,
            processor=processor,
        )

    def _record_invocation_span(
        self,
        processor: str,
        label: str,
        start: float,
        end: float,
        kind: str,
        job_ids: Tuple[int, ...],
        status: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """The invocation span, id tied to the token lineage label."""
        bus = self.instrumentation
        if bus is None:
            return
        bus.metrics.counter("enactor.invocations").inc()
        bus.metrics.counter(f"enactor.invocations.{kind}").inc()
        bus.record(
            "invocation",
            "enactor",
            start,
            end,
            parent=self._run_span,
            trace_id=self._trace_id,
            span_id=f"{self._trace_id}:{processor}:{label}",
            processor=processor,
            label=label,
            kind=kind,
            job_ids=list(job_ids),
            status=status,
            **self.run_attributes,
            **extra,
        )

    # -- profiled hot-path helpers ----------------------------------------------------
    def _profiled_key(self, processor: Processor, facts, unordered: bool = False) -> str:
        """Provenance-key hashing, attributed to the ``enactor`` component."""
        profiler = self.profiler
        if profiler is None:
            return invocation_key(processor.service, facts, unordered=unordered)
        profiler.enter("enactor.key")
        try:
            profiler.count("enactor.keys")
            return invocation_key(processor.service, facts, unordered=unordered)
        finally:
            profiler.exit()

    def _profiled_lookup(self, key: str, name: str):
        """Cache consultation, attributed to the ``cache`` component."""
        profiler = self.profiler
        if profiler is None:
            return self.cache.lookup(key, name)
        profiler.enter("cache.lookup")
        try:
            return self.cache.lookup(key, name)
        finally:
            profiler.exit()

    def _profiled_put(self, key: str, name: str, outputs) -> None:
        profiler = self.profiler
        if profiler is None:
            self.cache.put(key, name, outputs)
            return
        profiler.enter("cache.put")
        try:
            self.cache.put(key, name, outputs)
        finally:
            profiler.exit()

    # -- invocation lifecycle ---------------------------------------------------------
    def _invoke(self, state: _ProcessorState, binding: Binding):
        processor = state.processor
        key: Optional[str] = None
        flight_open = False
        began = self.engine.now
        profiler = self.profiler
        if profiler is not None:
            profiler.enter("enactor.prepare")
        try:
            parents = tuple(binding[port].history for port in sorted(binding))
            history = HistoryTree.derive(processor.name, parents)
        finally:
            if profiler is not None:
                profiler.exit()
        try:
            # Stage barrier: without service parallelism a service only
            # starts once its predecessors finished their whole streams.
            if not self.config.service_parallelism and state.preds_drained is not None:
                yield state.preds_drained

            poisoned = next((t for t in binding.values() if t.poisoned), None)
            if poisoned is not None and poisoned.failure is not None:
                # A parent lineage already died: skip this invocation and
                # propagate the error token so only this lineage is lost.
                self._skip_poisoned(state, history, poisoned.failure)
            else:
                outputs: Optional[Mapping[str, GridData]] = None
                job_ids: Tuple[int, ...] = ()
                kind = (
                    "grouped"
                    if getattr(processor.service, "stages", None)
                    else "invocation"
                )
                if self.cache is not None or self.journal is not None or self._replay:
                    facts = {
                        port: ((token.history, token.data),)
                        for port, token in binding.items()
                    }
                    key = self._profiled_key(processor, facts)
                if key is not None and key in self._replay:
                    # Journal replay: the previous (interrupted) run already
                    # completed this invocation and persisted its outputs.
                    entry = self._replay[key]
                    outputs = dict(entry.outputs)
                    job_ids = entry.job_ids
                    kind = "replayed"
                    start = end = self.engine.now
                    self._register_cached_files(outputs)
                    self._replayed_count += 1
                elif self.cache is not None:
                    lookup_start = self.engine.now
                    outputs = self._profiled_lookup(key, processor.name)
                    if outputs is not None:
                        kind = "cached"
                        start = end = self.engine.now
                        self._register_cached_files(outputs)
                        self._record_cache_lookup(processor.name, lookup_start, "hit")
                    else:
                        leader = self.cache.flight_leader(self.engine, key)
                        if leader is not None:
                            # Single-flight: an identical invocation is already
                            # executing; wait for its result instead of
                            # submitting the same work twice.
                            outputs = yield leader
                            self.cache.record_coalesced(processor.name)
                            kind = "cached"
                            start = end = self.engine.now
                            self._register_cached_files(outputs)
                            self._record_cache_lookup(
                                processor.name, lookup_start, "coalesced"
                            )
                        else:
                            self.cache.open_flight(self.engine, key)
                            flight_open = True
                            self.cache.record_miss(processor.name)
                            self._record_cache_lookup(processor.name, lookup_start, "miss")

                if outputs is None:
                    request = state.gate.request()
                    gate_requested = self.engine.now
                    yield request
                    start = self.engine.now
                    if self.instrumentation is not None:
                        self.instrumentation.metrics.histogram("enactor.gate_wait").observe(
                            start - gate_requested
                        )
                    try:
                        inputs = {port: token.data for port, token in binding.items()}
                        call, record = processor.service.invoke_recorded(inputs)
                        outputs = yield call
                    finally:
                        state.gate.release(request)
                    end = self.engine.now
                    job_ids = tuple(record.job_ids)
                    if self.cache is not None and key is not None:
                        self._profiled_put(key, processor.name, outputs)
                        self.cache.close_flight(self.engine, key, outputs=outputs)
                        flight_open = False

                self._complete_invocation(
                    state, history, outputs, start, end, kind, job_ids, key
                )
                self._check_drained(state)
        except Exception as exc:
            if flight_open and key is not None:
                self.cache.close_flight(self.engine, key, error=exc)
            if not self._contain(state, history, began, exc):
                self._fail(exc)
                return
        finally:
            self._in_flight -= 1
            self._note_in_flight()
        self._check_completion()

    def _spawn_sync(self, state: _ProcessorState) -> None:
        if self._cancelled:
            return
        self._in_flight += 1
        self._note_in_flight()
        self.engine.process(
            self._sync_invoke(state), name=f"moteur-sync:{state.processor.name}"
        )

    def _sync_invoke(self, state: _ProcessorState):
        """Synchronization barrier: one invocation over the whole streams."""
        processor = state.processor
        key: Optional[str] = None
        flight_open = False
        history: Optional[HistoryTree] = None
        began = self.engine.now
        try:
            if state.preds_drained is not None:
                yield state.preds_drained

            # Failure containment at the barrier: poisoned tokens are
            # dropped so the synchronization runs over the survivors.  A
            # port whose *whole* stream died starves the barrier — then
            # the barrier itself is skipped and emits an error token.
            survivors = state.sync_buffers
            starved: List[str] = []
            if self.config.best_effort:
                survivors = {
                    port: [t for t in tokens if not t.poisoned]
                    for port, tokens in state.sync_buffers.items()
                }
                dropped = sum(
                    len(state.sync_buffers[port]) - len(tokens)
                    for port, tokens in survivors.items()
                )
                if dropped:
                    self._report.barrier_drops += dropped
                starved = [
                    port
                    for port, tokens in state.sync_buffers.items()
                    if tokens and not survivors[port]
                ]

            all_parents = tuple(
                token.history
                for port in sorted(state.sync_buffers)
                for token in state.sync_buffers[port]
            )
            if starved:
                history = HistoryTree.derive(processor.name, all_parents)
                root = next(
                    t.failure
                    for port in starved
                    for t in state.sync_buffers[port]
                    if t.failure is not None
                )
                self._skip_poisoned(state, history, root)
                state.expected = 1
                if state.drained is not None and not state.drained.triggered:
                    state.drained.succeed(state.invocations_done)
            else:
                outputs: Optional[Mapping[str, GridData]] = None
                job_ids: Tuple[int, ...] = ()
                kind = "synchronization"
                if self.cache is not None or self.journal is not None or self._replay:
                    # A barrier consumes whole streams whose arrival order is
                    # a DP+SP race artifact, so its key treats each port's
                    # tokens as a multiset (unordered=True): a warm run whose
                    # tokens arrive in a different order still hits.
                    facts = {
                        port: tuple((t.history, t.data) for t in tokens)
                        for port, tokens in survivors.items()
                    }
                    key = self._profiled_key(processor, facts, unordered=True)
                if key is not None and key in self._replay:
                    entry = self._replay[key]
                    outputs = dict(entry.outputs)
                    job_ids = entry.job_ids
                    kind = "replayed"
                    start = end = self.engine.now
                    self._register_cached_files(outputs)
                    self._replayed_count += 1
                elif self.cache is not None:
                    lookup_start = self.engine.now
                    outputs = self._profiled_lookup(key, processor.name)
                    if outputs is not None:
                        kind = "cached"
                        start = end = self.engine.now
                        self._register_cached_files(outputs)
                        self._record_cache_lookup(processor.name, lookup_start, "hit")
                    else:
                        leader = self.cache.flight_leader(self.engine, key)
                        if leader is not None:
                            outputs = yield leader
                            self.cache.record_coalesced(processor.name)
                            kind = "cached"
                            start = end = self.engine.now
                            self._register_cached_files(outputs)
                            self._record_cache_lookup(
                                processor.name, lookup_start, "coalesced"
                            )
                        else:
                            self.cache.open_flight(self.engine, key)
                            flight_open = True
                            self.cache.record_miss(processor.name)
                            self._record_cache_lookup(processor.name, lookup_start, "miss")

                if outputs is None:
                    request = state.gate.request()
                    gate_requested = self.engine.now
                    yield request
                    start = self.engine.now
                    if self.instrumentation is not None:
                        self.instrumentation.metrics.histogram("enactor.gate_wait").observe(
                            start - gate_requested
                        )
                    try:
                        inputs = {
                            port: GridData(value=[t.value for t in tokens])
                            for port, tokens in survivors.items()
                        }
                        call, record = processor.service.invoke_recorded(inputs)
                        outputs = yield call
                    finally:
                        state.gate.release(request)
                    end = self.engine.now
                    job_ids = tuple(record.job_ids)
                    if self.cache is not None and key is not None:
                        self._profiled_put(key, processor.name, outputs)
                        self.cache.close_flight(self.engine, key, outputs=outputs)
                        flight_open = False

                parents = tuple(
                    token.history
                    for port in sorted(survivors)
                    for token in survivors[port]
                )
                history = HistoryTree.derive(processor.name, parents)
                self._complete_invocation(
                    state, history, outputs, start, end, kind, job_ids, key
                )
                state.expected = 1
                if state.drained is not None and not state.drained.triggered:
                    state.drained.succeed(state.invocations_done)
        except Exception as exc:
            if flight_open and key is not None:
                self.cache.close_flight(self.engine, key, error=exc)
            if history is None:
                history = HistoryTree.derive(
                    processor.name,
                    tuple(
                        token.history
                        for port in sorted(state.sync_buffers)
                        for token in state.sync_buffers[port]
                    ),
                )
            if not self._contain(state, history, began, exc):
                self._fail(exc)
                return
            state.expected = 1
            if state.drained is not None and not state.drained.triggered:
                state.drained.succeed(state.invocations_done)
        finally:
            self._in_flight -= 1
            self._note_in_flight()
        self._check_completion()

    def _complete_invocation(
        self,
        state: _ProcessorState,
        history: HistoryTree,
        outputs: Mapping[str, GridData],
        start: float,
        end: float,
        kind: str,
        job_ids: Tuple[int, ...],
        key: Optional[str],
    ) -> None:
        """Record one completed invocation and let its outputs take effect.

        Ordering is the WAL contract: the journal line is durable
        *before* the outputs are emitted downstream, so a crash can
        never have published results it did not persist.
        """
        profiler = self.profiler
        if profiler is None:
            self._complete_unprofiled(
                state, history, outputs, start, end, kind, job_ids, key
            )
            return
        profiler.enter("enactor.complete")
        try:
            self._complete_unprofiled(
                state, history, outputs, start, end, kind, job_ids, key
            )
        finally:
            profiler.exit()

    def _complete_unprofiled(
        self,
        state: _ProcessorState,
        history: HistoryTree,
        outputs: Mapping[str, GridData],
        start: float,
        end: float,
        kind: str,
        job_ids: Tuple[int, ...],
        key: Optional[str],
    ) -> None:
        self._trace.add(
            TraceEvent(
                processor=state.processor.name,
                label=history.label(),
                start=start,
                end=end,
                kind=kind,
                job_ids=job_ids,
            )
        )
        self._record_invocation_span(
            state.processor.name, history.label(), start, end, kind, job_ids
        )
        self._invocation_count += 1
        if kind != "replayed":
            if self.journal is not None and key is not None:
                self.journal.append_invocation(
                    JournalEntry(
                        key=key,
                        processor=state.processor.name,
                        label=history.label(),
                        kind=kind,
                        started=start,
                        finished=end,
                        job_ids=job_ids,
                        outputs=dict(outputs),
                    )
                )
                if self.profiler is not None:
                    self.profiler.count("enactor.journal_appends")
            self._progress += 1
            crash_after = self.crash_after_n_invocations
            if crash_after is not None and self._progress >= crash_after:
                raise SimulatedCrash(self._progress)
        self._emit_outputs(state, history, outputs)
        state.invocations_done += 1

    def _contain(
        self,
        state: _ProcessorState,
        history: HistoryTree,
        began: float,
        exc: Exception,
    ) -> bool:
        """Absorb an invocation failure under best-effort mode.

        Returns True when the failure was contained: the dead-letter
        report gains an :class:`InvocationFailure`, an error token
        poisons exactly this lineage downstream, and the run carries
        on.  Returns False (caller aborts the run) under strict mode or
        for non-service errors (bugs, simulated crashes).
        """
        if not self.config.best_effort or isinstance(exc, SimulatedCrash):
            return False
        if not isinstance(exc, (ServiceError, JobFailedError)):
            return False
        failure = InvocationFailure.from_exception(
            state.processor.name, history, exc, self.engine.now
        )
        self._report.failures.append(failure)
        self._trace.add(
            TraceEvent(
                processor=state.processor.name,
                label=history.label(),
                start=began,
                end=self.engine.now,
                kind="failed",
                job_ids=failure.job_ids,
            )
        )
        self._record_invocation_span(
            state.processor.name,
            history.label(),
            began,
            self.engine.now,
            "failed",
            failure.job_ids,
            status="error",
            error=failure.error,
        )
        self._emit_error_tokens(state, history, failure)
        state.invocations_done += 1
        self._check_drained(state)
        return True

    def _skip_poisoned(
        self, state: _ProcessorState, history: HistoryTree, failure: InvocationFailure
    ) -> None:
        """Skip an invocation whose input lineage already died upstream."""
        self._report.skipped += 1
        now = self.engine.now
        self._trace.add(
            TraceEvent(
                processor=state.processor.name,
                label=history.label(),
                start=now,
                end=now,
                kind="poisoned",
                job_ids=(),
            )
        )
        self._record_invocation_span(
            state.processor.name,
            history.label(),
            now,
            now,
            "poisoned",
            (),
            status="skipped",
            root=failure.processor,
        )
        self._emit_error_tokens(state, history, failure)
        state.invocations_done += 1
        self._check_drained(state)

    def _emit_error_tokens(
        self, state: _ProcessorState, history: HistoryTree, failure: InvocationFailure
    ) -> None:
        """Propagate a failure as typed error tokens on every output port.

        Error tokens keep the normal derived history, so dot/cross
        iteration downstream still pairs them with their siblings (and
        the stream accounting stays exact) — the poison only kills the
        lineage it belongs to.
        """
        profiler = self.profiler
        for port in state.processor.effective_output_ports():
            state.emitted[port] += 1
            if profiler is not None:
                profiler.count("enactor.tokens")
            self._deliver(
                state.processor.name,
                port,
                DataToken(GridData(value=None), history, failure=failure),
            )

    def _register_cached_files(self, outputs: Mapping[str, GridData]) -> None:
        """Re-advertise a hit's grid files in the replica catalog.

        A warm run on a fresh grid has never seen the files a cold run
        minted; a *partial* hit chain must still let the first
        downstream miss stage them in.
        """
        if self.grid is None:
            return
        for datum in outputs.values():
            if datum.file is not None and not self.grid.catalog.knows(datum.file.gfn):
                self.grid.add_input_file(datum.file, cache_refill=True)

    def _emit_outputs(
        self, state: _ProcessorState, history: HistoryTree, outputs: Mapping[str, GridData]
    ) -> None:
        profiler = self.profiler
        for port in state.processor.effective_output_ports():
            datum = outputs[port]
            if isinstance(datum.value, NoData):
                continue  # conditional port chose not to emit (loop exits...)
            state.emitted[port] += 1
            if profiler is not None:
                profiler.count("enactor.tokens")
            self._deliver(state.processor.name, port, DataToken(datum, history))

    # -- stream accounting -------------------------------------------------------------
    def _check_drained(self, state: _ProcessorState) -> None:
        """Mark *state* drained once its full stream has been processed."""
        if state.drained is None or state.drained.triggered:
            return
        if state.preds_drained is not None and not state.preds_drained.triggered:
            return
        if state.expected is None:
            per_port: Dict[str, int] = {}
            for port in state.processor.effective_input_ports():
                per_port[port] = sum(
                    self._states[link.source.processor].emitted[link.source.port]
                    for link in self.workflow.links_into(state.processor.name, port)
                )
            if state.processor.kind is ProcessorKind.SINK:
                state.expected = sum(per_port.values())
            elif state.processor.name in self._sync:
                state.expected = 1
            else:
                state.expected = expected_bindings(
                    state.processor.iteration_strategy, per_port
                )
        done = (
            state.arrived
            if state.processor.kind is ProcessorKind.SINK
            else state.invocations_done
        )
        if done >= state.expected:
            state.drained.succeed(done)

    def _check_completion(self) -> None:
        if self._failed or self._completion is None or self._completion.triggered:
            return
        if self._in_flight == 0:
            self._completion.succeed(self._build_result())

    def _fail(self, exc: Exception) -> None:
        if not self._failed and self._completion is not None and not self._completion.triggered:
            self._failed = True
            self._close_run_span(status="error", error=str(exc))
            if isinstance(exc, SimulatedCrash):
                # Crash tests must see the interrupt itself, not a wrapper.
                self._completion.fail(exc)
            else:
                self._completion.fail(
                    EnactmentError(f"enactment of {self.workflow.name!r} failed: {exc}")
                )

    def _close_run_span(self, status: Optional[str] = None, **attributes: Any) -> None:
        bus = self.instrumentation
        if bus is None or self._run_span is None or not self._run_span.open:
            return
        bus.end(self._run_span, self.engine.now, status=status, **attributes)
        if bus.run_span is self._run_span:
            bus.run_span = None

    def _build_result(self) -> EnactmentResult:
        outputs: Dict[str, List[GridData]] = {}
        histories: Dict[str, List[HistoryTree]] = {}
        for sink in self.workflow.sinks():
            state = self._states[sink.name]
            outputs[sink.name] = list(state.collected)
            histories[sink.name] = list(state.collected_histories)
        cache_stats = None
        if self.cache is not None and self._cache_baseline is not None:
            cache_stats = self.cache.snapshot() - self._cache_baseline
        metrics = None
        if self.instrumentation is not None:
            self._close_run_span(invocations=self._invocation_count)
            # Engine lifetime counters (events scheduled/processed, peak
            # heap, absorbed failures) surface through the registry so
            # every metrics snapshot carries the events/sec denominator.
            registry = self.instrumentation.metrics
            for name, value in self.engine.counters().items():
                registry.gauge(name).set(value)
            metrics = self.instrumentation.metrics.snapshot()
            if self._metrics_baseline is not None:
                metrics = metrics.since(self._metrics_baseline)
        return EnactmentResult(
            workflow_name=self.workflow.name,
            config=self.config,
            started_at=self._started_at,
            finished_at=self.engine.now,
            outputs=outputs,
            histories=histories,
            trace=self._trace,
            invocation_count=self._invocation_count,
            groups=list(self.groups),
            cache_stats=cache_stats,
            metrics=metrics,
            failures=self._report if self.config.best_effort else None,
            replayed_count=self._replayed_count,
        )
