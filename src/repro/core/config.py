"""Optimization configuration: which of the paper's levers are on.

The evaluation (Section 4.4) runs six configurations mixing Data
Parallelism (DP), Service Parallelism (SP) and Job Grouping (JG); "the
configuration with no optimization (NOP) only includes workflow
parallelism".  :class:`OptimizationConfig` captures one such mix; the
canonical six live in :meth:`OptimizationConfig.paper_configurations`.

Semantics implemented by the enactor:

* **workflow parallelism** — always on (independent branches run
  concurrently; "trivial and implemented in all the workflow managers").
* **SP off** — stage barrier: a service only starts processing once
  every one of its predecessors has finished its *whole* data stream.
  This is what equations (1) and (2) describe.
* **SP on** — per-item firing (pipelining, equation (3)).
* **DP off** — at most one job in flight per service.
* **DP on** — one concurrent job per available data item (unbounded,
  hypothesis H2), optionally capped via ``data_parallelism_cap`` for
  the Section 5.4 granularity ablation.
* **JG on** — maximal sequential chains of groupable wrapped services
  are fused into single-job virtual services before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

__all__ = ["OptimizationConfig"]


@dataclass(frozen=True)
class OptimizationConfig:
    """One combination of the enactor's optimization levers."""

    data_parallelism: bool = False
    service_parallelism: bool = False
    job_grouping: bool = False
    #: max concurrent jobs per service when DP is on (None = unbounded)
    data_parallelism_cap: Optional[int] = None
    #: provenance-keyed result caching (see :mod:`repro.cache`)
    cache: bool = False
    #: which result store backs the cache: "memory" or "file"
    cache_store: str = "memory"
    #: directory of the file store (required when ``cache_store="file"``)
    cache_dir: Optional[str] = None
    #: LRU entry cap of the cache store (None = unbounded)
    cache_max_entries: Optional[int] = None
    #: seconds a cached result stays valid (None = forever)
    cache_ttl: Optional[float] = None
    #: "strict" aborts the run on the first unrecoverable invocation;
    #: "best_effort" contains it to its lineage (see repro.core.failures)
    failure_mode: str = "strict"

    def __post_init__(self) -> None:
        if self.failure_mode not in ("strict", "best_effort"):
            raise ValueError(
                f"failure_mode must be 'strict' or 'best_effort', got {self.failure_mode!r}"
            )
        if self.data_parallelism_cap is not None:
            if not self.data_parallelism:
                raise ValueError("data_parallelism_cap requires data_parallelism=True")
            if self.data_parallelism_cap < 1:
                raise ValueError(
                    f"data_parallelism_cap must be >= 1, got {self.data_parallelism_cap}"
                )
        if self.cache_store not in ("memory", "file"):
            raise ValueError(
                f"cache_store must be 'memory' or 'file', got {self.cache_store!r}"
            )
        if self.cache and self.cache_store == "file" and not self.cache_dir:
            raise ValueError("cache_store='file' requires cache_dir")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise ValueError(f"cache_ttl must be > 0, got {self.cache_ttl}")

    @property
    def label(self) -> str:
        """The paper's name for this configuration (NOP, DP, SP+DP+JG, ...)."""
        parts = []
        if self.service_parallelism:
            parts.append("SP")
        if self.data_parallelism:
            parts.append("DP")
        if self.job_grouping:
            parts.append("JG")
        if self.cache:
            parts.append("cache")
        return "+".join(parts) if parts else "NOP"

    @property
    def best_effort(self) -> bool:
        """True when per-item failure containment is on."""
        return self.failure_mode == "best_effort"

    def with_best_effort(self) -> "OptimizationConfig":
        """This configuration with per-item failure containment on."""
        return replace(self, failure_mode="best_effort")

    @property
    def service_concurrency(self) -> "int | float":
        """Per-service concurrent-invocation cap implied by the flags."""
        if not self.data_parallelism:
            return 1
        return self.data_parallelism_cap if self.data_parallelism_cap else float("inf")

    # -- canonical configurations -------------------------------------------
    @classmethod
    def nop(cls) -> "OptimizationConfig":
        """Workflow parallelism only."""
        return cls()

    @classmethod
    def dp(cls) -> "OptimizationConfig":
        """Data parallelism only."""
        return cls(data_parallelism=True)

    @classmethod
    def sp(cls) -> "OptimizationConfig":
        """Service parallelism (pipelining) only."""
        return cls(service_parallelism=True)

    @classmethod
    def jg(cls) -> "OptimizationConfig":
        """Job grouping only."""
        return cls(job_grouping=True)

    @classmethod
    def sp_dp(cls) -> "OptimizationConfig":
        """Service + data parallelism."""
        return cls(data_parallelism=True, service_parallelism=True)

    @classmethod
    def sp_dp_jg(cls) -> "OptimizationConfig":
        """Everything on — the paper's best configuration."""
        return cls(data_parallelism=True, service_parallelism=True, job_grouping=True)

    def with_cache(
        self,
        store: str = "memory",
        directory: Optional[str] = None,
        max_entries: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> "OptimizationConfig":
        """This configuration plus provenance-keyed result caching.

        ``store="file"`` persists results under *directory* so a later
        process can warm-re-execute the same workflow without submitting
        any grid job (see :mod:`repro.cache`).
        """
        return replace(
            self,
            cache=True,
            cache_store=store,
            cache_dir=str(directory) if directory is not None else None,
            cache_max_entries=max_entries,
            cache_ttl=ttl,
        )

    @classmethod
    def paper_configurations(cls) -> List["OptimizationConfig"]:
        """The six rows of Table 1, in the paper's order."""
        return [cls.nop(), cls.jg(), cls.sp(), cls.dp(), cls.sp_dp(), cls.sp_dp_jg()]

    def __str__(self) -> str:
        return self.label
