"""Optimization configuration: which of the paper's levers are on.

The evaluation (Section 4.4) runs six configurations mixing Data
Parallelism (DP), Service Parallelism (SP) and Job Grouping (JG); "the
configuration with no optimization (NOP) only includes workflow
parallelism".  :class:`OptimizationConfig` captures one such mix; the
canonical six live in :meth:`OptimizationConfig.paper_configurations`.

Semantics implemented by the enactor:

* **workflow parallelism** — always on (independent branches run
  concurrently; "trivial and implemented in all the workflow managers").
* **SP off** — stage barrier: a service only starts processing once
  every one of its predecessors has finished its *whole* data stream.
  This is what equations (1) and (2) describe.
* **SP on** — per-item firing (pipelining, equation (3)).
* **DP off** — at most one job in flight per service.
* **DP on** — one concurrent job per available data item (unbounded,
  hypothesis H2), optionally capped via ``data_parallelism_cap`` for
  the Section 5.4 granularity ablation.
* **JG on** — maximal sequential chains of groupable wrapped services
  are fused into single-job virtual services before execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["OptimizationConfig"]


@dataclass(frozen=True)
class OptimizationConfig:
    """One combination of the enactor's optimization levers."""

    data_parallelism: bool = False
    service_parallelism: bool = False
    job_grouping: bool = False
    #: max concurrent jobs per service when DP is on (None = unbounded)
    data_parallelism_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.data_parallelism_cap is not None:
            if not self.data_parallelism:
                raise ValueError("data_parallelism_cap requires data_parallelism=True")
            if self.data_parallelism_cap < 1:
                raise ValueError(
                    f"data_parallelism_cap must be >= 1, got {self.data_parallelism_cap}"
                )

    @property
    def label(self) -> str:
        """The paper's name for this configuration (NOP, DP, SP+DP+JG, ...)."""
        parts = []
        if self.service_parallelism:
            parts.append("SP")
        if self.data_parallelism:
            parts.append("DP")
        if self.job_grouping:
            parts.append("JG")
        return "+".join(parts) if parts else "NOP"

    @property
    def service_concurrency(self) -> "int | float":
        """Per-service concurrent-invocation cap implied by the flags."""
        if not self.data_parallelism:
            return 1
        return self.data_parallelism_cap if self.data_parallelism_cap else float("inf")

    # -- canonical configurations -------------------------------------------
    @classmethod
    def nop(cls) -> "OptimizationConfig":
        """Workflow parallelism only."""
        return cls()

    @classmethod
    def dp(cls) -> "OptimizationConfig":
        """Data parallelism only."""
        return cls(data_parallelism=True)

    @classmethod
    def sp(cls) -> "OptimizationConfig":
        """Service parallelism (pipelining) only."""
        return cls(service_parallelism=True)

    @classmethod
    def jg(cls) -> "OptimizationConfig":
        """Job grouping only."""
        return cls(job_grouping=True)

    @classmethod
    def sp_dp(cls) -> "OptimizationConfig":
        """Service + data parallelism."""
        return cls(data_parallelism=True, service_parallelism=True)

    @classmethod
    def sp_dp_jg(cls) -> "OptimizationConfig":
        """Everything on — the paper's best configuration."""
        return cls(data_parallelism=True, service_parallelism=True, job_grouping=True)

    @classmethod
    def paper_configurations(cls) -> List["OptimizationConfig"]:
        """The six rows of Table 1, in the paper's order."""
        return [cls.nop(), cls.jg(), cls.sp(), cls.dp(), cls.sp_dp(), cls.sp_dp_jg()]

    def __str__(self) -> str:
        return self.label
