"""Crash-safe enactment journal: an append-only WAL of completed work.

An interrupted enactment used to restart from zero.  The journal fixes
that: the enactor appends one line per *completed* invocation —
provenance key, trace metadata, and the produced outputs in the result
cache's wire format — flushed and fsync'd before the outputs become
visible to the dataflow.  ``MoteurEnactor.resume`` loads the journal
and replays every recorded invocation instantly (``kind="replayed"``
trace events, zero grid jobs), so the run continues exactly where the
crash cut it off and the final outputs match an uninterrupted run.

Write-ahead ordering matters: an entry is durable *before* its outputs
are emitted downstream, so a crash can lose at most work that had not
yet taken effect.  Conversely a torn final line (the crash hit mid
write) is detected on load and skipped — that invocation simply
re-executes.

Failed invocations are never journaled: a resumed run retries them,
which is exactly what you want after fixing whatever killed the run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Mapping, Optional, Tuple

from repro.cache.store import decode_datum, encode_datum
from repro.services.base import GridData

__all__ = ["EnactmentJournal", "JournalEntry", "SimulatedCrash"]


class SimulatedCrash(RuntimeError):
    """Injected mid-run crash (``crash_after_n_invocations``).

    Propagates through the enactment completion *unwrapped* so crash
    tests can tell a simulated interrupt from a real enactment error.
    """

    def __init__(self, completed: int) -> None:
        super().__init__(f"simulated crash after {completed} completed invocations")
        self.completed = completed


@dataclass(frozen=True)
class JournalEntry:
    """One completed invocation as recorded in (or loaded from) the WAL."""

    key: str
    processor: str
    label: str
    kind: str
    started: float
    finished: float
    job_ids: Tuple[int, ...] = ()
    outputs: Mapping[str, GridData] = field(default_factory=dict)

    def to_document(self) -> dict:
        return {
            "event": "invocation",
            "key": self.key,
            "processor": self.processor,
            "label": self.label,
            "kind": self.kind,
            "started": self.started,
            "finished": self.finished,
            "job_ids": list(self.job_ids),
            "outputs": {port: encode_datum(d) for port, d in self.outputs.items()},
        }

    @classmethod
    def from_document(cls, doc: Mapping) -> "JournalEntry":
        return cls(
            key=doc["key"],
            processor=doc["processor"],
            label=doc["label"],
            kind=doc["kind"],
            started=float(doc["started"]),
            finished=float(doc["finished"]),
            job_ids=tuple(int(j) for j in doc["job_ids"]),
            outputs={port: decode_datum(d) for port, d in doc["outputs"].items()},
        )


class EnactmentJournal:
    """Append-only JSONL journal at *path*; safe to reopen and resume."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        #: entries appended by THIS process (not counting loaded ones)
        self.appended = 0

    # -- writing -------------------------------------------------------
    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _write(self, doc: dict) -> None:
        handle = self._ensure_open()
        handle.write(json.dumps(doc, sort_keys=True) + "\n")
        # WAL semantics: the line must be durable before the enactor
        # lets the recorded outputs take effect downstream.
        handle.flush()
        os.fsync(handle.fileno())
        self.appended += 1

    def append_run(self, workflow: str, config_label: str, at: float) -> None:
        """Mark the start of one enactment (sanity anchor for load())."""
        self._write(
            {"event": "run", "workflow": workflow, "config": config_label, "at": at}
        )

    def append_invocation(self, entry: JournalEntry) -> None:
        """Record one completed invocation (outputs included)."""
        self._write(entry.to_document())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EnactmentJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def load(self) -> Dict[str, JournalEntry]:
        """Replay map ``provenance key -> entry`` from the journal file.

        Corrupt or torn lines (typically the very last one, cut by the
        crash) are skipped: losing one entry only means re-executing
        one invocation.  Later entries win on key collisions, so a
        journal spanning several runs replays the freshest results.
        """
        entries: Dict[str, JournalEntry] = {}
        if not self.path.exists():
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    if doc.get("event") != "invocation":
                        continue
                    entry = JournalEntry.from_document(doc)
                except (ValueError, KeyError, TypeError):
                    continue  # torn/corrupt line: re-execute that invocation
                entries[entry.key] = entry
        return entries

    def runs(self) -> List[dict]:
        """The run-start markers present in the journal, oldest first."""
        markers: List[dict] = []
        if not self.path.exists():
            return markers
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if doc.get("event") == "run":
                    markers.append(doc)
        return markers

    def __repr__(self) -> str:
        return f"<EnactmentJournal {str(self.path)!r} appended={self.appended}>"
