"""Iteration strategies: provenance-aware dot and cross products.

Section 2.2: "When a service owns two input ports or more, an iteration
strategy defines the composition rule for the data coming from all
input ports pairwise":

* **dot product** — pair items "in their order of definition",
  producing ``min(n, m)`` results.  Under data+service parallelism,
  items arrive out of order, so the pairing is driven by provenance
  compatibility (:func:`repro.core.provenance.compatible`) rather than
  raw arrival rank — this is exactly the causality problem Section 4.1
  solves with history trees.
* **cross product** — combine every item of each port with every item
  of every other port, producing ``n × m`` results.

:class:`IterationEngine` is the incremental combiner a processor state
owns: tokens are *offered* one at a time and the engine returns the
newly fireable input bindings, deterministically.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.provenance import compatible
from repro.core.tokens import DataToken

__all__ = ["IterationEngine", "Binding", "expected_bindings"]

#: one fireable set of inputs: port -> token
Binding = Dict[str, DataToken]


class IterationEngine:
    """Incremental dot/cross combiner over a processor's input ports."""

    def __init__(self, ports: Tuple[str, ...], strategy: str) -> None:
        if not ports:
            raise ValueError("an iteration engine needs at least one port")
        if strategy not in ("dot", "cross"):
            raise ValueError(f"unknown strategy {strategy!r} (expected 'dot' or 'cross')")
        self.ports = tuple(ports)
        self.strategy = strategy
        #: per-port tokens not yet consumed (dot) / all tokens seen (cross)
        self._buffers: Dict[str, List[DataToken]] = {port: [] for port in ports}
        self.offered = 0
        self.fired = 0

    def offer(self, port: str, token: DataToken) -> List[Binding]:
        """Feed one token; return bindings that just became fireable."""
        if port not in self._buffers:
            raise KeyError(f"unknown port {port!r}; engine ports are {self.ports}")
        self.offered += 1
        if self.strategy == "dot":
            bindings = self._offer_dot(port, token)
        else:
            bindings = self._offer_cross(port, token)
        self.fired += len(bindings)
        return bindings

    # -- dot --------------------------------------------------------------
    def _offer_dot(self, port: str, token: DataToken) -> List[Binding]:
        self._buffers[port].append(token)
        if len(self.ports) == 1:
            self._buffers[port].pop()
            return [{port: token}]
        binding = self._try_match(port, token)
        if binding is None:
            return []
        # Consume the matched tokens.
        for bport, btoken in binding.items():
            self._buffers[bport].remove(btoken)
        return [binding]

    def _try_match(self, port: str, token: DataToken) -> Optional[Binding]:
        """Greedy compatibility search seeded by the newly arrived token.

        For each other port, take the first buffered token compatible
        with everything chosen so far (arrival order).  Greedy matching
        is exact for the tree-shaped dataflows of the paper's
        applications, where lineages on shared sources are equal or
        disjoint.
        """
        chosen: Binding = {port: token}
        for other in self.ports:
            if other == port:
                continue
            found = None
            for candidate in self._buffers[other]:
                if all(compatible(candidate.history, t.history) for t in chosen.values()):
                    found = candidate
                    break
            if found is None:
                return None
            chosen[other] = found
        return chosen

    # -- cross -------------------------------------------------------------
    def _offer_cross(self, port: str, token: DataToken) -> List[Binding]:
        other_ports = [p for p in self.ports if p != port]
        if not other_ports:
            return [{port: token}]
        pools = [self._buffers[p] for p in other_ports]
        bindings: List[Binding] = []
        if all(pools):
            for combination in product(*pools):
                binding: Binding = {port: token}
                binding.update(dict(zip(other_ports, combination)))
                bindings.append(binding)
        # Record the token *after* combining so it never pairs with itself.
        self._buffers[port].append(token)
        return bindings

    # -- bookkeeping -----------------------------------------------------------
    def buffered(self, port: str) -> int:
        """Unconsumed (dot) / total seen (cross) tokens on *port*."""
        return len(self._buffers[port])

    def __repr__(self) -> str:
        counts = {p: len(b) for p, b in self._buffers.items()}
        return f"<IterationEngine {self.strategy} ports={counts} fired={self.fired}>"


def expected_bindings(strategy: str, per_port_counts: Mapping[str, int]) -> int:
    """How many bindings a full set of streams will produce.

    Dot: ``min`` over ports (the paper's ``min(n, m)``);
    cross: product over ports (the paper's ``n × m``).
    Used by the enactor's stream-completion accounting (barriers and
    synchronization processors need to know when a stream has ended).
    """
    if not per_port_counts:
        return 1  # a no-input service fires exactly once
    counts = list(per_port_counts.values())
    if strategy == "dot":
        return min(counts)
    if strategy == "cross":
        result = 1
        for count in counts:
            result *= count
        return result
    raise ValueError(f"unknown strategy {strategy!r}")
