"""Typed failure records: what a best-effort enactment reports.

Under ``failure_mode="best_effort"`` the enactor no longer dies when a
job exhausts its resubmission budget (the Section 5.1 reality: on a
production grid *some* jobs always fail).  Instead the failed
invocation becomes an :class:`InvocationFailure`, its would-be outputs
become *error tokens* that poison only the descendant lineage, and the
run completes with the surviving data items plus a
:class:`FailureReport` on the result — the dead-letter queue of the
workflow.

The report keeps the full history-tree lineage of every failure so a
user (or a re-run) can tell exactly which input items were lost, plus
per-service and per-CE failure counts and the attempt-level error
reasons accumulated by the grid middleware
(:class:`~repro.grid.job.AttemptFailure`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.provenance import HistoryTree
from repro.grid.job import AttemptFailure, JobFailedError

__all__ = ["InvocationFailure", "DeadLetter", "FailureReport"]


@dataclass(frozen=True)
class InvocationFailure:
    """One invocation that exhausted every recovery option."""

    processor: str
    #: paper-style item label of the failed invocation (e.g. ``D3``)
    label: str
    #: source name -> input item indices this invocation descended from
    lineage: Mapping[str, Tuple[int, ...]]
    error: str
    failed_at: float
    job_ids: Tuple[int, ...] = ()
    #: attempt-level reasons accumulated by the middleware, oldest first
    attempts: Tuple[AttemptFailure, ...] = ()

    @property
    def computing_elements(self) -> Tuple[str, ...]:
        """Distinct CEs that failed attempts of this invocation, first-seen order."""
        seen: List[str] = []
        for attempt in self.attempts:
            if attempt.computing_element and attempt.computing_element not in seen:
                seen.append(attempt.computing_element)
        return tuple(seen)

    @classmethod
    def from_exception(
        cls, processor: str, history: HistoryTree, exc: BaseException, now: float
    ) -> "InvocationFailure":
        """Build a failure record, digging the cause chain for job details.

        Service wrappers raise :class:`~repro.services.base.ServiceError`
        with the underlying :class:`~repro.grid.job.JobFailedError` as
        ``__cause__``; that error's record carries the per-attempt
        failure history and the job id.
        """
        job_ids: Tuple[int, ...] = ()
        attempts: Tuple[AttemptFailure, ...] = ()
        cause: BaseException | None = exc
        while cause is not None:
            if isinstance(cause, JobFailedError):
                record = cause.record
                job_ids = (record.job_id,)
                attempts = tuple(record.failure_history)
                break
            cause = cause.__cause__
        lineage = {
            source: tuple(sorted(indices))
            for source, indices in history.lineage.items()
        }
        return cls(
            processor=processor,
            label=history.label(),
            lineage=lineage,
            error=str(exc),
            failed_at=now,
            job_ids=job_ids,
            attempts=attempts,
        )


@dataclass(frozen=True)
class DeadLetter:
    """A poisoned token that reached a sink instead of a data item."""

    sink: str
    label: str
    root: InvocationFailure


@dataclass
class FailureReport:
    """Everything a best-effort run lost, and why."""

    #: invocations that failed outright (the roots of every poisoning)
    failures: List[InvocationFailure] = field(default_factory=list)
    #: poisoned tokens that arrived at sinks
    dead_letters: List[DeadLetter] = field(default_factory=list)
    #: downstream invocations skipped because an input was poisoned
    skipped: int = 0
    #: poisoned tokens filtered out at synchronization barriers
    barrier_drops: int = 0
    #: why the run was cancelled mid-flight (None for runs that ended
    #: on their own); set by :meth:`MoteurEnactor.cancel`
    cancelled_reason: Optional[str] = None
    #: queued grid jobs withdrawn by the cancellation
    cancelled_jobs: int = 0

    @property
    def empty(self) -> bool:
        """True when the run lost nothing."""
        return (
            not self.failures and not self.dead_letters and self.cancelled_reason is None
        )

    def by_service(self) -> Dict[str, int]:
        """Root failure counts per processor."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.processor] = counts.get(failure.processor, 0) + 1
        return counts

    def by_computing_element(self) -> Dict[str, int]:
        """Failed-attempt counts per CE, over every root failure."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            for attempt in failure.attempts:
                ce = attempt.computing_element or "?"
                counts[ce] = counts.get(ce, 0) + 1
        return counts

    def poisoned_lineage(self) -> Dict[str, FrozenSet[int]]:
        """Union of failed lineages: source name -> lost input indices."""
        union: Dict[str, set] = {}
        for failure in self.failures:
            for source, indices in failure.lineage.items():
                union.setdefault(source, set()).update(indices)
        return {source: frozenset(indices) for source, indices in union.items()}

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat dead-letter rows (one per root failure) for table rendering."""
        rows: List[Dict[str, object]] = []
        for failure in self.failures:
            rows.append(
                {
                    "processor": failure.processor,
                    "label": failure.label,
                    "kind": "failed",
                    "lineage": {s: list(ix) for s, ix in sorted(failure.lineage.items())},
                    "error": failure.error,
                    "failed_at": failure.failed_at,
                    "job_ids": list(failure.job_ids),
                    "attempts": len(failure.attempts),
                    "computing_elements": list(failure.computing_elements),
                    "attempt_reasons": [a.reason for a in failure.attempts],
                }
            )
        return rows

    def __repr__(self) -> str:
        cancelled = (
            f" cancelled={self.cancelled_reason!r}" if self.cancelled_reason else ""
        )
        return (
            f"<FailureReport failures={len(self.failures)} "
            f"dead_letters={len(self.dead_letters)} skipped={self.skipped} "
            f"barrier_drops={self.barrier_drops}{cancelled}>"
        )
