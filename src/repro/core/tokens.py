"""Data tokens: what flows along workflow links at enactment time.

A :class:`DataToken` pairs the payload
(:class:`~repro.services.base.GridData`) with its provenance
(:class:`~repro.core.provenance.HistoryTree`).  The token is the unit
the iteration strategies match on and the unit the execution trace
labels (``D0``, ``D1``, ...).

``NO_DATA`` is the sentinel a service program returns on an output port
to emit *nothing* there.  It is what makes conditional outputs — and
therefore the Figure 2 optimization loop, whose ``P3`` "produces its
result on one of its two output ports" — expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.provenance import HistoryTree
from repro.services.base import GridData

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.core.failures import InvocationFailure

__all__ = ["DataToken", "NO_DATA", "NoData"]


class NoData:
    """Singleton sentinel: 'this output port emits nothing this time'."""

    _instance = None

    def __new__(cls) -> "NoData":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_DATA"

    def __reduce__(self):
        return (NoData, ())


NO_DATA = NoData()


@dataclass(frozen=True)
class DataToken:
    """One datum on one link: payload + provenance.

    Under best-effort failure containment, a token may instead be an
    *error token*: ``failure`` names the root
    :class:`~repro.core.failures.InvocationFailure` it descends from,
    the payload is empty, and every downstream invocation fed by it is
    skipped rather than invoked — the poison stays inside one lineage.
    """

    data: GridData
    history: HistoryTree
    failure: "Optional[InvocationFailure]" = None

    @property
    def poisoned(self) -> bool:
        """True for error tokens (a failed ancestor, not a data item)."""
        return self.failure is not None

    @property
    def label(self) -> str:
        """The paper-style item label (delegates to the history tree)."""
        return self.history.label()

    @property
    def value(self) -> object:
        """Shortcut to the payload value."""
        return self.data.value

    def __repr__(self) -> str:
        if self.failure is not None:
            return f"<DataToken {self.label} poisoned by {self.failure.processor}>"
        return f"<DataToken {self.label}>"
