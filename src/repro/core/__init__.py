"""MOTEUR — the paper's optimized service-based workflow enactor.

"hoMe-made OpTimisEd scUfl enactoR": this package is the primary
contribution of the paper, reimplemented on the simulated grid:

* :mod:`~repro.core.config` — the optimization switches: Data
  Parallelism (DP), Service Parallelism (SP), Job Grouping (JG);
  workflow parallelism is always on,
* :mod:`~repro.core.provenance` — history trees that uniquely identify
  every produced data item (Section 4.1's answer to the causality
  problem of DP+SP execution),
* :mod:`~repro.core.iteration` — the dot/cross iteration strategies of
  Section 2.2, provenance-aware so dot products stay correct when items
  overtake each other,
* :mod:`~repro.core.grouping` — the sequential-service grouping
  transformation of Section 3.6,
* :mod:`~repro.core.enactor` — the enactor itself,
* :mod:`~repro.core.trace` / :mod:`~repro.core.diagrams` — execution
  traces and the paper-style execution diagrams (Figures 4-6).
"""

from repro.core.config import OptimizationConfig
from repro.core.enactor import EnactmentResult, MoteurEnactor
from repro.core.failures import DeadLetter, FailureReport, InvocationFailure
from repro.core.grouping import GroupInfo, group_workflow
from repro.core.journal import EnactmentJournal, JournalEntry, SimulatedCrash
from repro.core.provenance import HistoryTree, compatible
from repro.core.tokens import NO_DATA, DataToken
from repro.core.trace import ExecutionTrace, TraceEvent

__all__ = [
    "OptimizationConfig",
    "MoteurEnactor",
    "EnactmentResult",
    "HistoryTree",
    "compatible",
    "DataToken",
    "NO_DATA",
    "ExecutionTrace",
    "TraceEvent",
    "GroupInfo",
    "group_workflow",
    "InvocationFailure",
    "DeadLetter",
    "FailureReport",
    "EnactmentJournal",
    "JournalEntry",
    "SimulatedCrash",
]
