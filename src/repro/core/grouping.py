"""Job grouping: the workflow transformation of Section 3.6.

"Processors grouping consists in merging multiple jobs into a single
one.  It reduces the grid overhead induced by the submission,
scheduling, queuing and data transfers times [...]  In particular
sequential processors grouping is interesting because those processors
do not benefit from any parallelism."

:func:`group_workflow` rewrites a workflow before enactment:

1. find the maximal groupable sequential chains
   (:func:`repro.workflow.analysis.sequential_chains` — only
   generic-wrapper-backed, non-synchronization, dot-strategy services
   whose intermediate data is invisible outside the chain),
2. build one :class:`~repro.services.composite.CompositeService` per
   chain (the *virtual service* of Figure 7 that submits a single job
   with the composed command line),
3. splice the composite into a new workflow, re-routing the external
   links onto the composite's exposed ports.

For the Bronze Standard workflow this produces exactly the two groups
the paper names: ``crestLines+crestMatch`` and
``PFMatchICP+PFRegister``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.services.composite import CompositeService
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.workflow.analysis import sequential_chains
from repro.workflow.graph import Processor, ProcessorKind, Workflow

__all__ = ["GroupInfo", "group_workflow"]


@dataclass(frozen=True)
class GroupInfo:
    """One formed group: its processor name, members and composite service."""

    name: str
    members: Tuple[str, ...]
    composite: CompositeService


def group_workflow(workflow: Workflow, engine: Engine) -> Tuple[Workflow, List[GroupInfo]]:
    """Return a grouped copy of *workflow* plus the groups formed.

    Chains whose members are not all generic-wrapper services are
    skipped (only wrapper services expose the descriptors the enactor
    needs to compose command lines); everything else is left untouched.
    The original workflow is never modified.
    """
    chains = []
    for chain in sequential_chains(workflow):
        services = [workflow.processor(name).service for name in chain]
        if all(isinstance(service, GenericWrapperService) for service in services):
            chains.append(chain)

    if not chains:
        return workflow.copy(name=f"{workflow.name} (grouped)"), []

    member_of: Dict[str, str] = {}
    groups: List[GroupInfo] = []
    composites: Dict[str, CompositeService] = {}
    chain_members: Dict[str, List[str]] = {}
    for chain in chains:
        group_name = "+".join(chain)
        internal_links: Dict[Tuple[int, str], Tuple[int, str]] = {}
        position = {name: idx for idx, name in enumerate(chain)}
        for link in workflow.links:
            src, dst = link.source.processor, link.target.processor
            if src in position and dst in position:
                internal_links[(position[dst], link.target.port)] = (
                    position[src],
                    link.source.port,
                )
        composite = CompositeService(
            engine,
            stages=[workflow.processor(name).service for name in chain],
            internal_links=internal_links,
            name=group_name,
        )
        composites[group_name] = composite
        chain_members[group_name] = list(chain)
        for name in chain:
            member_of[name] = group_name
        groups.append(GroupInfo(name=group_name, members=tuple(chain), composite=composite))

    grouped = Workflow(name=f"{workflow.name} (grouped)")
    added_groups = set()
    for name, processor in workflow.processors.items():
        group_name = member_of.get(name)
        if group_name is None:
            grouped.add_processor(processor)
        elif group_name not in added_groups:
            added_groups.add(group_name)
            grouped.add_processor(
                Processor(
                    name=group_name,
                    kind=ProcessorKind.SERVICE,
                    service=composites[group_name],
                    input_ports=tuple(composites[group_name].input_ports),
                    output_ports=tuple(composites[group_name].output_ports),
                    iteration_strategy="dot",
                    synchronization=False,
                    groupable=False,  # already a group
                )
            )

    for link in workflow.links:
        src, dst = link.source.processor, link.target.processor
        src_group = member_of.get(src)
        dst_group = member_of.get(dst)
        if src_group is not None and src_group == dst_group:
            continue  # internal to a group: handled by the composite
        source_ref = str(link.source)
        target_ref = str(link.target)
        if src_group is not None:
            composite = composites[src_group]
            idx = chain_members[src_group].index(src)
            public = composite.public_output_name(idx, link.source.port)
            source_ref = f"{src_group}:{public}"
        if dst_group is not None:
            composite = composites[dst_group]
            idx = chain_members[dst_group].index(dst)
            public = composite.public_input_name(idx, link.target.port)
            target_ref = f"{dst_group}:{public}"
        grouped.add_link(source_ref, target_ref)

    seen_constraints = set()
    for before, after in workflow.coordination_constraints:
        before = member_of.get(before, before)
        after = member_of.get(after, after)
        if before == after or (before, after) in seen_constraints:
            continue
        seen_constraints.add((before, after))
        grouped.add_coordination_constraint(before, after)

    return grouped, groups
