"""Paper-style execution diagrams (Figures 4, 5 and 6).

"On this kind of diagram, the abscissa axis represents time.  When a
data set Di appears on a row corresponding to a processor Pj, it means
that Di is being processed by Pj at the current time. [...] Crosses
represent idle cycles."

:func:`execution_diagram` renders an :class:`~repro.core.trace.ExecutionTrace`
into that exact visual language: one row per processor (top-most = last
processor, as in the paper), time discretized into cells of a given
width; each cell shows the labels of the items being processed during
that slot, or ``X`` when the processor is idle.  An event spanning
several cells repeats its label in each (the paper's ``D1 D1 D1`` for a
three-slot-long job in Figure 6).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.trace import ExecutionTrace

__all__ = ["execution_diagram", "infer_cell_width", "diagram_rows"]


def infer_cell_width(trace: ExecutionTrace) -> float:
    """Guess a good time-cell width: the shortest event duration.

    For the constant-time workloads of Figures 4/5 every event has the
    same duration T, so the guess is exact.
    """
    durations = [e.duration for e in trace.iter_events() if e.duration > 0]
    if not durations:
        return 1.0
    return min(durations)


def diagram_rows(
    trace: ExecutionTrace,
    processors: Optional[Sequence[str]] = None,
    cell: Optional[float] = None,
) -> "dict[str, List[str]]":
    """The diagram as data: processor -> list of cell strings."""
    if processors is None:
        processors = trace.processors()
    width = cell if cell is not None else infer_cell_width(trace)
    if width <= 0:
        raise ValueError(f"cell width must be > 0, got {width}")
    t0 = trace.start_time or 0.0
    t_end = trace.end_time or 0.0
    n_cells = max(1, math.ceil((t_end - t0) / width - 1e-9))
    rows: "dict[str, List[str]]" = {}
    for processor in processors:
        events = trace.for_processor(processor)
        cells: List[str] = []
        for k in range(n_cells):
            lo = t0 + k * width
            hi = lo + width
            # Use a strictly interior probe band so touching endpoints
            # do not bleed into neighbouring cells.
            labels = [
                e.label for e in events if e.overlaps(lo + 1e-9, hi - 1e-9)
            ]
            cells.append(" ".join(labels) if labels else "X")
        rows[processor] = cells
    return rows


def execution_diagram(
    trace: ExecutionTrace,
    processors: Optional[Sequence[str]] = None,
    cell: Optional[float] = None,
    reverse: bool = True,
) -> str:
    """Render the trace in the paper's Figure 4/5/6 style.

    ``reverse=True`` puts the last processor on top, matching the paper
    (P3 above P2 above P1).
    """
    rows = diagram_rows(trace, processors=processors, cell=cell)
    names = list(rows)
    if reverse:
        names = names[::-1]
    name_width = max((len(n) for n in names), default=1)
    cell_width = max(
        (len(content) for cells in rows.values() for content in cells), default=1
    )
    lines = []
    for name in names:
        cells = " | ".join(content.center(cell_width) for content in rows[name])
        lines.append(f"{name.rjust(name_width)} | {cells} |")
    return "\n".join(lines)
