"""Execution traces: everything the enactor did, with timestamps.

The trace is the raw material for the paper-style execution diagrams
(Figures 4-6, rendered by :mod:`repro.core.diagrams`) and for the
per-configuration statistics the experiment harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One service invocation as observed by the enactor."""

    processor: str
    label: str  # paper-style item label, e.g. "D0"
    start: float
    end: float
    kind: str = "invocation"  # "invocation" | "grouped" | "synchronization"
    job_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")

    @property
    def duration(self) -> float:
        """Wall-clock seconds of the invocation."""
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the event intersects the half-open interval [t0, t1)."""
        return self.start < t1 and self.end > t0


class ExecutionTrace:
    """Ordered collection of trace events plus derived statistics."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def add(self, event: TraceEvent) -> None:
        """Record one event."""
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """All events, recording order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- derived statistics ------------------------------------------------
    @property
    def makespan(self) -> float:
        """Last end minus first start (0 for an empty trace)."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events) - min(e.start for e in self._events)

    @property
    def start_time(self) -> Optional[float]:
        """Earliest invocation start."""
        return min((e.start for e in self._events), default=None)

    @property
    def end_time(self) -> Optional[float]:
        """Latest invocation end."""
        return max((e.end for e in self._events), default=None)

    def processors(self) -> List[str]:
        """Distinct processor names in first-appearance order."""
        seen = set()
        names = []
        for event in self._events:
            if event.processor not in seen:
                seen.add(event.processor)
                names.append(event.processor)
        return names

    def for_processor(self, processor: str) -> List[TraceEvent]:
        """Events of one processor, sorted by start time."""
        return sorted(
            (e for e in self._events if e.processor == processor),
            key=lambda e: (e.start, e.label),
        )

    def busy_time(self, processor: str) -> float:
        """Total union-of-intervals busy seconds for *processor*.

        Overlapping invocations (data parallelism) are not
        double-counted.
        """
        intervals = sorted(
            (e.start, e.end) for e in self._events if e.processor == processor
        )
        busy = 0.0
        current_start: Optional[float] = None
        current_end = float("-inf")
        for start, end in intervals:
            if current_start is None or start > current_end:
                if current_start is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            busy += current_end - current_start
        return busy

    def concurrency_profile(self, processor: Optional[str] = None) -> List[Tuple[float, int]]:
        """Step function of in-flight invocations over time.

        Returns ``(time, active_count)`` breakpoints; useful to check
        that DP-off really serialized a service and that DP-on overlapped.
        """
        deltas: Dict[float, int] = {}
        for event in self._events:
            if processor is not None and event.processor != processor:
                continue
            deltas[event.start] = deltas.get(event.start, 0) + 1
            deltas[event.end] = deltas.get(event.end, 0) - 1
        profile = []
        active = 0
        for time in sorted(deltas):
            active += deltas[time]
            profile.append((time, active))
        return profile

    def max_concurrency(self, processor: Optional[str] = None) -> int:
        """Peak simultaneous invocations (optionally for one processor)."""
        profile = self.concurrency_profile(processor)
        return max((count for _, count in profile), default=0)

    # -- export -------------------------------------------------------------
    def to_rows(self) -> List[dict]:
        """The trace as plain dictionaries (for DataFrames, JSON, ...)."""
        return [
            {
                "processor": e.processor,
                "label": e.label,
                "start": e.start,
                "end": e.end,
                "duration": e.duration,
                "kind": e.kind,
                "job_ids": list(e.job_ids),
            }
            for e in self._events
        ]

    def to_csv(self) -> str:
        """The trace as CSV text (header + one line per event)."""
        lines = ["processor,label,start,end,duration,kind,job_ids"]
        for e in self._events:
            jobs = ";".join(str(j) for j in e.job_ids)
            lines.append(
                f"{e.processor},{e.label},{e.start},{e.end},{e.duration},{e.kind},{jobs}"
            )
        return "\n".join(lines)
