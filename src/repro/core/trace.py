"""Execution traces: everything the enactor did, with timestamps.

The trace is the raw material for the paper-style execution diagrams
(Figures 4-6, rendered by :mod:`repro.core.diagrams`) and for the
per-configuration statistics the experiment harness reports.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One service invocation as observed by the enactor."""

    processor: str
    label: str  # paper-style item label, e.g. "D0"
    start: float
    end: float
    #: "invocation" | "grouped" | "synchronization" | "cached" |
    #: "replayed" (journal resume) | "failed" (contained failure) |
    #: "poisoned" (skipped: input lineage died upstream)
    kind: str = "invocation"
    job_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")

    @property
    def duration(self) -> float:
        """Wall-clock seconds of the invocation."""
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the event intersects the half-open interval [t0, t1).

        Zero-duration events (``start == end`` — cache hits advance the
        dataflow instantaneously) are treated as instants: they overlap
        the interval that *contains* their timestamp.  Without this
        special case an instant sitting exactly on ``t0`` would
        intersect nothing and vanish from interval queries.
        """
        if self.start == self.end:
            return t0 <= self.start < t1
        return self.start < t1 and self.end > t0


class ExecutionTrace:
    """Ordered collection of trace events plus derived statistics.

    Derived statistics (bounds, makespan, per-processor views) are
    memoized and invalidated on :meth:`add`, so reading them inside a
    loop costs O(1) after the first read instead of re-scanning — and
    re-copying — the whole event list every time.  Code that only needs
    to walk the events should iterate the trace directly
    (``for event in trace``): unlike the :attr:`events` property it
    allocates nothing.
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._bounds: Optional[Tuple[Optional[float], Optional[float]]] = None
        self._by_processor: Optional[Dict[str, List[TraceEvent]]] = None
        self._kind_counts: Optional[Dict[str, int]] = None

    def add(self, event: TraceEvent) -> None:
        """Record one event (invalidates memoized statistics)."""
        self._events.append(event)
        self._bounds = None
        self._by_processor = None
        self._kind_counts = None

    @property
    def events(self) -> List[TraceEvent]:
        """All events, recording order (a defensive copy — prefer
        iterating the trace itself in hot paths)."""
        return list(self._events)

    def iter_events(self) -> Iterator[TraceEvent]:
        """Zero-copy iteration over the events in recording order."""
        return iter(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- derived statistics ------------------------------------------------
    def _time_bounds(self) -> Tuple[Optional[float], Optional[float]]:
        if self._bounds is None:
            if self._events:
                self._bounds = (
                    min(e.start for e in self._events),
                    max(e.end for e in self._events),
                )
            else:
                self._bounds = (None, None)
        return self._bounds

    @property
    def makespan(self) -> float:
        """Last end minus first start (0 for an empty trace)."""
        start, end = self._time_bounds()
        if start is None or end is None:
            return 0.0
        return end - start

    @property
    def start_time(self) -> Optional[float]:
        """Earliest invocation start."""
        return self._time_bounds()[0]

    @property
    def end_time(self) -> Optional[float]:
        """Latest invocation end."""
        return self._time_bounds()[1]

    def _processor_index(self) -> Dict[str, List[TraceEvent]]:
        if self._by_processor is None:
            index: Dict[str, List[TraceEvent]] = {}
            for event in self._events:
                index.setdefault(event.processor, []).append(event)
            for events in index.values():
                events.sort(key=lambda e: (e.start, e.label))
            self._by_processor = index
        return self._by_processor

    def processors(self) -> List[str]:
        """Distinct processor names in first-appearance order."""
        return list(self._processor_index())

    def for_processor(self, processor: str) -> List[TraceEvent]:
        """Events of one processor, sorted by start time."""
        return list(self._processor_index().get(processor, []))

    def count_by_kind(self) -> Dict[str, int]:
        """Event counts per kind (``cached`` is how warm runs show up)."""
        if self._kind_counts is None:
            counts: Dict[str, int] = {}
            for event in self._events:
                counts[event.kind] = counts.get(event.kind, 0) + 1
            self._kind_counts = counts
        return dict(self._kind_counts)

    def busy_time(self, processor: str) -> float:
        """Total union-of-intervals busy seconds for *processor*.

        Overlapping invocations (data parallelism) are not
        double-counted.
        """
        intervals = [
            (e.start, e.end) for e in self._processor_index().get(processor, [])
        ]
        # The sweep below requires start-ordered intervals; sort here
        # rather than rely on the index's internal ordering.
        intervals.sort()
        busy = 0.0
        current_start: Optional[float] = None
        current_end = float("-inf")
        for start, end in intervals:
            if current_start is None or start > current_end:
                if current_start is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_start is not None:
            busy += current_end - current_start
        return busy

    def concurrency_profile(self, processor: Optional[str] = None) -> List[Tuple[float, int]]:
        """Step function of in-flight invocations over time.

        Returns ``(time, active_count)`` breakpoints; useful to check
        that DP-off really serialized a service and that DP-on overlapped.

        Zero-duration events (cache hits) are momentary bursts: their
        ``+1`` and ``-1`` used to cancel inside one delta bucket, making
        them invisible.  They now contribute a ``(time, active + burst)``
        breakpoint immediately followed by ``(time, active)``, so
        :meth:`max_concurrency` sees them while the profile still ends
        at the correct steady level.
        """
        starts: Dict[float, int] = {}
        ends: Dict[float, int] = {}
        instants: Dict[float, int] = {}
        for event in self._events:
            if processor is not None and event.processor != processor:
                continue
            if event.start == event.end:
                instants[event.start] = instants.get(event.start, 0) + 1
            else:
                starts[event.start] = starts.get(event.start, 0) + 1
                ends[event.end] = ends.get(event.end, 0) + 1
        profile: List[Tuple[float, int]] = []
        active = 0
        for time in sorted({*starts, *ends, *instants}):
            active += starts.get(time, 0) - ends.get(time, 0)
            burst = instants.get(time, 0)
            if burst:
                profile.append((time, active + burst))
            profile.append((time, active))
        return profile

    def max_concurrency(self, processor: Optional[str] = None) -> int:
        """Peak simultaneous invocations (optionally for one processor)."""
        profile = self.concurrency_profile(processor)
        return max((count for _, count in profile), default=0)

    # -- export -------------------------------------------------------------
    def to_rows(self) -> List[dict]:
        """The trace as plain dictionaries (for DataFrames, JSON, ...)."""
        return [
            {
                "processor": e.processor,
                "label": e.label,
                "start": e.start,
                "end": e.end,
                "duration": e.duration,
                "kind": e.kind,
                "job_ids": list(e.job_ids),
            }
            for e in self._events
        ]

    def to_csv(self) -> str:
        """The trace as CSV text (header + one line per event).

        Written with :mod:`csv` so processor/label values containing
        commas or quotes are properly escaped.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            ["processor", "label", "start", "end", "duration", "kind", "job_ids"]
        )
        for e in self._events:
            jobs = ";".join(str(j) for j in e.job_ids)
            writer.writerow([e.processor, e.label, e.start, e.end, e.duration, e.kind, jobs])
        return buffer.getvalue().rstrip("\n")

    def to_jsonl(self, trace_id: str = "trace") -> str:
        """The trace as JSONL, one span record per event.

        The line schema matches :class:`repro.observability.spans.Span`
        (``spans_from_jsonl`` round-trips it), so legacy enactor traces
        and the new instrumentation streams share a single on-disk
        format — ``python -m repro.experiments report-trace`` reads
        either.  Span ids are derived from the provenance labels, the
        same lineage-tied scheme the live instrumentation uses.
        """
        lines = []
        for index, e in enumerate(self._events):
            lines.append(
                json.dumps(
                    {
                        "name": "invocation",
                        "category": "enactor",
                        "span_id": f"{trace_id}:{e.processor}:{e.label}:{index}",
                        "trace_id": trace_id,
                        "parent_id": None,
                        "start": e.start,
                        "end": e.end,
                        "duration": e.duration,
                        "status": "ok",
                        "attributes": {
                            "processor": e.processor,
                            "label": e.label,
                            "kind": e.kind,
                            "job_ids": list(e.job_ids),
                        },
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines)
