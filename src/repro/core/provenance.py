"""Data provenance: history trees (Section 4.1).

"Handling the iteration strategies ... in a service and data parallel
workflow is not straightforward because produced data sets have to be
uniquely identified.  Indeed they are likely to be computed in a
different order in every service, which could lead to wrong dot product
computations. [...] Attached to each processed data segment is a
history tree containing all the intermediate results computed to
process it.  This tree unambiguously identifies the data."

A :class:`HistoryTree` is an immutable tree: leaves are
``(source, index)`` pairs; internal nodes name the processor that
produced the datum and point at the histories of its inputs.  From the
tree we derive the **lineage** — for each ancestor source, the set of
item indices involved — and two tokens are *dot-compatible* exactly
when their lineages agree on every source they share.  That predicate
is what restores causally-correct dot products no matter the completion
order (the paper's data provenance strategy).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = ["HistoryTree", "compatible", "merged_lineage", "format_indices"]

Lineage = Mapping[str, FrozenSet[int]]


class HistoryTree:
    """Immutable provenance tree attached to every data token."""

    __slots__ = ("producer", "index", "parents", "iteration", "_lineage", "_hash")

    def __init__(
        self,
        producer: str,
        parents: Tuple["HistoryTree", ...] = (),
        index: Optional[int] = None,
        iteration: int = 0,
    ) -> None:
        if index is not None and parents:
            raise ValueError("a history node is a leaf (index) or internal (parents), not both")
        if index is None and not parents and iteration == 0:
            # A no-input service firing: legal, lineage is empty.
            pass
        self.producer = producer
        self.index = index
        self.parents = tuple(parents)
        self.iteration = iteration
        lineage: Dict[str, FrozenSet[int]] = {}
        if index is not None:
            lineage[producer] = frozenset((index,))
        else:
            for parent in self.parents:
                for source, indices in parent.lineage.items():
                    if source in lineage:
                        lineage[source] = lineage[source] | indices
                    else:
                        lineage[source] = indices
        self._lineage: Lineage = lineage
        self._hash = hash(
            (self.producer, self.index, self.parents, self.iteration)
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def leaf(cls, source: str, index: int) -> "HistoryTree":
        """History of the *index*-th item emitted by *source*."""
        return cls(producer=source, index=index)

    @classmethod
    def derive(
        cls, producer: str, parents: Tuple["HistoryTree", ...], iteration: int = 0
    ) -> "HistoryTree":
        """History of a datum produced by *producer* from *parents*.

        ``iteration`` disambiguates successive emissions of the same
        processor inside a workflow loop: without it, iteration *k* and
        iteration *k+1* of a loop body would carry identical trees.
        """
        return cls(producer=producer, parents=tuple(parents), iteration=iteration)

    # -- identity ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistoryTree):
            return NotImplemented
        return (
            self.producer == other.producer
            and self.index == other.index
            and self.iteration == other.iteration
            and self.parents == other.parents
        )

    def __hash__(self) -> int:
        return self._hash

    # -- derived views ----------------------------------------------------------
    @property
    def lineage(self) -> Lineage:
        """source name -> frozenset of item indices this datum derives from."""
        return self._lineage

    @property
    def depth(self) -> int:
        """Longest chain of processing steps below this node."""
        if not self.parents:
            return 0
        return 1 + max(parent.depth for parent in self.parents)

    @property
    def size(self) -> int:
        """Total number of nodes in the tree (intermediate results + leaves)."""
        return 1 + sum(parent.size for parent in self.parents)

    def label(self) -> str:
        """Paper-style item label: ``D0`` for single-item lineage, etc.

        Multi-index or multi-source lineages are compressed:
        ``D(0-11)`` for a synchronization result over items 0..11,
        ``D0x1`` for a cross-product pair.
        """
        lineage = self._lineage
        if not lineage:
            return f"{self.producer}()"
        all_indices = sorted(set().union(*lineage.values()))
        per_source = [sorted(indices) for indices in lineage.values()]
        if all(len(ix) == 1 for ix in per_source):
            distinct = sorted({ix[0] for ix in per_source})
            if len(distinct) == 1:
                return f"D{distinct[0]}"
            return "D" + "x".join(str(i) for i in distinct)
        return f"D({format_indices(all_indices)})"

    def describe(self, indent: int = 0) -> str:
        """Multi-line rendering of the full tree (debugging/reports)."""
        pad = "  " * indent
        if self.index is not None:
            return f"{pad}{self.producer}[{self.index}]"
        suffix = f" @iter{self.iteration}" if self.iteration else ""
        lines = [f"{pad}{self.producer}{suffix}"]
        lines.extend(parent.describe(indent + 1) for parent in self.parents)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<HistoryTree {self.label()} by {self.producer!r}>"


def compatible(a: HistoryTree, b: HistoryTree) -> bool:
    """Dot-product compatibility: lineages agree on every shared source.

    Tokens with disjoint ancestry (independent sources) are always
    compatible — the dot product then degenerates to positional
    pairing, matching the paper's "in their order of definition".
    """
    la, lb = a.lineage, b.lineage
    if len(lb) < len(la):
        la, lb = lb, la
    for source, indices in la.items():
        other = lb.get(source)
        if other is not None and other != indices:
            return False
    return True


def merged_lineage(trees: Tuple[HistoryTree, ...]) -> Dict[str, FrozenSet[int]]:
    """Union of the lineages of *trees* (what a derived node will carry)."""
    merged: Dict[str, FrozenSet[int]] = {}
    for tree in trees:
        for source, indices in tree.lineage.items():
            if source in merged:
                merged[source] = merged[source] | indices
            else:
                merged[source] = indices
    return merged


def format_indices(indices: "list[int]") -> str:
    """Compress a sorted index list into run notation: ``0-3,7,9-11``."""
    if not indices:
        return ""
    runs = []
    start = prev = indices[0]
    for value in indices[1:]:
        if value == prev + 1:
            prev = value
            continue
        runs.append((start, prev))
        start = prev = value
    runs.append((start, prev))
    return ",".join(f"{a}-{b}" if a != b else f"{a}" for a, b in runs)
