"""E9 — Section 3.5.4: asymptotic speed-ups under constant times.

Sweeps n_W and n_D on the ideal substrate with T_ij = T and verifies
the four closed-form ratios:

    S_DP  = n_D                      S_SP  = n_D n_W / (n_D + n_W - 1)
    S_DSP = (n_D + n_W - 1) / n_W    S_SDP = 1
"""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.model.speedup import (
    speedup_dp_given_sp,
    speedup_dp_no_sp,
    speedup_sp_given_dp,
    speedup_sp_no_dp,
)
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

SWEEP = [(2, 4), (3, 8), (5, 12), (5, 66)]
T = 3.0


def measure(n_w, n_d, config):
    engine = Engine()

    def factory(name, inputs, outputs):
        return LocalService(engine, name, inputs, outputs, duration=T)

    workflow = chain_workflow(factory, n_w)
    return MoteurEnactor(engine, workflow, config).run(
        {"input": list(range(n_d))}
    ).makespan


def test_asymptotic_speedups(benchmark):
    def sweep():
        rows = []
        for n_w, n_d in SWEEP:
            nop = measure(n_w, n_d, OptimizationConfig.nop())
            dp = measure(n_w, n_d, OptimizationConfig.dp())
            sp = measure(n_w, n_d, OptimizationConfig.sp())
            dsp = measure(n_w, n_d, OptimizationConfig.sp_dp())
            rows.append((n_w, n_d, nop / dp, nop / sp, sp / dsp, dp / dsp))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Section 3.5.4 asymptotic speed-ups (measured vs theory) ===")
    print(f"{'n_W':>4} {'n_D':>4} | {'S_DP':>12} | {'S_SP':>12} | {'S_DSP':>12} | {'S_SDP':>12}")
    print("-" * 70)
    for (n_w, n_d, s_dp, s_sp, s_dsp, s_sdp) in rows:
        theory = (
            speedup_dp_no_sp(n_w, n_d),
            speedup_sp_no_dp(n_w, n_d),
            speedup_dp_given_sp(n_w, n_d),
            speedup_sp_given_dp(n_w, n_d),
        )
        print(
            f"{n_w:>4} {n_d:>4} | {s_dp:5.2f} ({theory[0]:5.2f}) | "
            f"{s_sp:5.2f} ({theory[1]:5.2f}) | {s_dsp:5.2f} ({theory[2]:5.2f}) | "
            f"{s_sdp:5.2f} ({theory[3]:5.2f})"
        )
        assert s_dp == pytest.approx(theory[0], rel=1e-9)
        assert s_sp == pytest.approx(theory[1], rel=1e-9)
        assert s_dsp == pytest.approx(theory[2], rel=1e-9)
        assert s_sdp == pytest.approx(theory[3], rel=1e-9)
