"""E16 — ablation: what a real retry policy is worth on a faulty grid.

Section 5.1 blames the measured variability on resubmission cascades:
a job landing on a misconfigured site is "resubmitted, thus introducing
a significant extra delay", and the legacy loop resubmits *immediately*
and *unboundedly* (up to the fault model's generous attempt cap), so a
fast-failing blackhole CE soaks up attempt after attempt.

This ablation runs the same best-effort Bronze Standard workload on
``faulty_testbed`` under two retry regimes:

* **fixed** — immediate resubmission, full attempt cap: the legacy
  behavior, which buys completeness with wasted grid time;
* **exponential + budget** — exponential backoff with deterministic
  jitter plus a per-service retry budget: retry storms are throttled
  and then cut off, trading a few dead-lettered items for far fewer
  attempts and much less grid time burned on failing CEs.

Reported per seed: makespan, total attempts, grid seconds wasted in
failed attempts (fault/timeout span durations), items lost.  Rows land
in the run-history store so ``compare-runs`` can track the trade-off.
"""

import os

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.grid.retry import RetryBudget, RetryPolicy
from repro.grid.testbeds import faulty_testbed
from repro.observability import InstrumentationBus
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

N_PAIRS = 6
SEEDS = (42, 7, 11)

POLICIES = {
    "fixed": lambda: (RetryPolicy.fixed(0.0), RetryBudget.unlimited()),
    "exp+budget": lambda: (
        RetryPolicy.exponential(base_delay=15.0, multiplier=2.0, max_delay=240.0, jitter=0.2),
        RetryBudget(per_service=3),
    ),
}


def run_once(seed, policy_name):
    policy, budget = POLICIES[policy_name]()
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = faulty_testbed(engine, streams, retry_policy=policy, retry_budget=budget)
    bus = InstrumentationBus()
    collector = bus.collector()
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    ).with_best_effort()
    result = app.enact(config, n_pairs=N_PAIRS, instrumentation=bus)
    wasted = sum(
        s.duration for s in collector.spans if s.name in ("job.fault", "job.timeout")
    )
    attempts = sum(r.attempts for r in grid.records)
    assert result.failures is not None
    return {
        "makespan": result.makespan,
        "attempts": attempts,
        "wasted": wasted,
        "lost": len(result.failures.failures),
        "budget_denied": budget.denied,
        "backoffs": bus.metrics.counter("grid.jobs.retries").value,
    }


def _record(results) -> None:
    """Best-effort run-store rows: the retry trade-off over time."""
    from repro.observability.runstore import RunStore, RunSummary

    root = os.environ.get(
        "REPRO_RUNSTORE", os.path.join(os.path.dirname(__file__), "runstore")
    )
    store = RunStore(root)
    for (seed, name), row in results.items():
        store.append(
            RunSummary(
                workflow="bronze-standard",
                policy=f"SP+DP/{name}",
                makespan=row["makespan"],
                n_items=N_PAIRS,
                seed=seed,
                counters={
                    "grid.jobs.attempts": float(row["attempts"]),
                    "grid.wasted_seconds": float(row["wasted"]),
                    "enactor.items_lost": float(row["lost"]),
                },
                note="retry_ablation",
            )
        )


def test_budgeted_backoff_beats_naive_retry(benchmark):
    def sweep():
        return {
            (seed, name): run_once(seed, name)
            for seed in SEEDS
            for name in POLICIES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    try:
        _record(results)
    except Exception:
        pass  # recording must never fail the benchmark

    fixed_policy, _ = POLICIES["fixed"]()
    exp_policy, _ = POLICIES["exp+budget"]()
    print(f"\n=== Bronze ({N_PAIRS} pairs, SP+DP, best-effort) on faulty_testbed ===")
    print(f"fixed      = {fixed_policy.describe()}")
    print(f"exp+budget = {exp_policy.describe()} + per-service budget")
    print(f"{'seed':>5} | {'policy':>10} | {'makespan (s)':>12} | {'attempts':>8} | "
          f"{'wasted (s)':>10} | {'lost':>4} | {'denied':>6}")
    print("-" * 72)
    for seed in SEEDS:
        for name in POLICIES:
            row = results[(seed, name)]
            print(f"{seed:>5} | {name:>10} | {row['makespan']:>12.0f} | "
                  f"{row['attempts']:>8} | {row['wasted']:>10.0f} | "
                  f"{row['lost']:>4} | {row['budget_denied']:>6}")

    for seed in SEEDS:
        naive = results[(seed, "fixed")]
        budgeted = results[(seed, "exp+budget")]
        # The naive cap is generous enough to never lose an item — that
        # is its selling point, and what the wasted column pays for.
        assert naive["lost"] == 0, (seed, naive["lost"])
        # The budget must actually bite: retries denied, fewer attempts,
        # less grid time burned detecting failures on the blackhole.
        assert budgeted["budget_denied"] > 0, (seed, budgeted)
        assert budgeted["attempts"] < naive["attempts"], (seed, budgeted["attempts"])
    # Wasted grid time per seed is noisy (detection delays differ per
    # CE), but over the sweep the budget must burn materially less.
    total_naive = sum(results[(s, "fixed")]["wasted"] for s in SEEDS)
    total_budgeted = sum(results[(s, "exp+budget")]["wasted"] for s in SEEDS)
    assert total_budgeted < 0.9 * total_naive, (total_budgeted, total_naive)


def test_retry_policies_are_reproducible():
    """Same seed + same policy = identical makespan and attempt count."""
    a = run_once(SEEDS[0], "exp+budget")
    b = run_once(SEEDS[0], "exp+budget")
    assert a["makespan"] == pytest.approx(b["makespan"])
    assert a["attempts"] == b["attempts"]
