"""Data-flow collector cost: attaching it must cost <=2% throughput.

The byte *counters* are always on (the grid and enactor emit them on
any attached bus), so the only optional cost is the
:class:`~repro.observability.dataflow.DataFlowCollector` — one extra
network observer appending a frozen dataclass per transfer plus one
catalog observer updating two dicts per registration.  Transfers number
in the dozens per bronze run while engine events number in the
thousands, so the collector should be noise.  This benchmark proves it
on the instrumented bronze smoke workload with two interleaved arms:

``off``
    Instrumented run (bus attached), no collector — the default
    analytics state.
``on``
    The same run with a :class:`DataFlowCollector` attached to the
    grid and subscribed to the bus.  Acceptance target: <=2% wall-time
    cost (equivalently, ``perf.events_per_sec`` loss).

The assertion allows 10% so CI scheduling jitter cannot flake the
build, while a real regression (accidentally doing per-event work in
the observer: 2x, not 1.1x) still fails loudly.
"""

from __future__ import annotations

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core.config import OptimizationConfig
from repro.grid.testbeds import egee_like_testbed
from repro.observability import InstrumentationBus
from repro.observability.dataflow import DataFlowCollector
from repro.observability.profiling import wall_clock
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

BENCH_SEED = 42
PAIRS = 4
ROUNDS = 5
#: acceptance target; the assertion bar below adds CI jitter slack
ON_TARGET, ON_LIMIT = 0.02, 0.10


def run_workload(arm: str) -> float:
    """One instrumented bronze enactment; returns wall seconds."""
    engine = Engine()
    streams = RandomStreams(seed=BENCH_SEED)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    )
    bus = InstrumentationBus()
    collector = None
    if arm == "on":
        collector = DataFlowCollector().attach(grid)
        bus.subscribe(collector)
    begin = wall_clock()
    result = app.enact(config, n_pairs=PAIRS, instrumentation=bus)
    wall = wall_clock() - begin
    assert result.invocation_count > 0
    if collector is not None:
        assert collector.records  # the arm actually measured the collector
    return wall


def best_of_interleaved(rounds: int):
    """Alternate both arms per round so machine drift hits each."""
    for arm in ("off", "on"):  # warm caches, imports, allocator
        run_workload(arm)
    walls = {"off": [], "on": []}
    for _ in range(rounds):
        for arm in ("off", "on"):
            walls[arm].append(run_workload(arm))
    return min(walls["off"]), min(walls["on"])


def test_dataflow_collector_overhead(benchmark=None):
    def measure():
        return best_of_interleaved(ROUNDS)

    if benchmark is not None:
        off, on = benchmark.pedantic(measure, rounds=1, iterations=1)
    else:
        off, on = measure()

    overhead = (on - off) / off
    print(f"\n=== collector overhead (bronze {PAIRS} pairs, best of {ROUNDS}) ===")
    print(f"collector off : {off * 1000:8.1f} ms")
    print(f"collector on  : {on * 1000:8.1f} ms  "
          f"({overhead * 100:+.1f}%, target <= {ON_TARGET:.0%}, "
          f"asserted <= {ON_LIMIT:.0%})")

    assert overhead <= ON_LIMIT


if __name__ == "__main__":
    test_dataflow_collector_overhead()
