"""E15 — ablation: closing the loop from monitoring to brokering.

Section 5.1 attributes the measured variability to "sites whose
middlewares are misconfigured" and to jobs that need to be "resubmitted,
thus introducing a significant extra delay"; Figure 6's outliers are
exactly such resubmission cascades.  The live monitor (see
``repro.observability.monitor``) detects the two canonical pathologies —
blackhole CEs that fail fast and stragglers that run slow — while the
run is still in flight.

This ablation measures what that detection is *worth*: the same Bronze
Standard workload runs twice on ``faulty_testbed`` (one injected
blackhole, one injected straggler), once with the monitor passively
watching and once with its feedback wired into the broker (demotion +
blacklisting of flagged CEs, proactive resubmission of jobs queued on
them).  The feedback run must finish measurably sooner and waste far
fewer attempts on the blackhole.
"""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.grid.testbeds import faulty_testbed
from repro.observability import InstrumentationBus, RunMonitor
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

N_PAIRS = 8
SEEDS = (42, 7, 11)
BLACKHOLE = "site01-ce"
STRAGGLER = "site02-ce"


def run_once(seed, feedback):
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = faulty_testbed(engine, streams)
    bus = InstrumentationBus()
    monitor = RunMonitor.attach(bus, expected_items=N_PAIRS, policy="SP+DP")
    if feedback:
        grid.set_health_provider(monitor)
        monitor.add_sink(grid.alert_reactor())
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    )
    result = app.enact(config, n_pairs=N_PAIRS, instrumentation=bus)
    retries = bus.metrics.counter("grid.jobs.retries").value
    return {
        "makespan": result.makespan,
        "retries": retries,
        "flagged": monitor.flagged_ces(),
        "alerts": monitor.alert_counts(),
    }


def test_feedback_shortens_makespan_on_faulty_grid(benchmark):
    def sweep():
        return {
            seed: {fb: run_once(seed, fb) for fb in (False, True)} for seed in SEEDS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(f"\n=== Bronze ({N_PAIRS} pairs, SP+DP) on faulty_testbed: "
          f"monitor feedback off vs on ===")
    print(f"{'seed':>5} | {'baseline (s)':>12} | {'feedback (s)':>12} | "
          f"{'gain':>5} | {'retries off/on':>14}")
    print("-" * 62)
    for seed, pair in results.items():
        base, fed = pair[False], pair[True]
        gain = 1.0 - fed["makespan"] / base["makespan"]
        print(f"{seed:>5} | {base['makespan']:>12.0f} | {fed['makespan']:>12.0f} | "
              f"{gain:>4.0%} | {base['retries']:>6.0f}/{fed['retries']:<7.0f}")

    for seed, pair in results.items():
        base, fed = pair[False], pair[True]
        # The passive monitor must identify exactly the injected sites.
        assert base["flagged"] == [BLACKHOLE, STRAGGLER], (seed, base["flagged"])
        assert base["alerts"].get("blackhole", 0) >= 1
        assert base["alerts"].get("fault-burst", 0) >= 1
        # Feedback keeps the blackhole starved of work: almost no retries.
        assert fed["retries"] < base["retries"] / 3, (seed, fed["retries"])
        # And the run finishes measurably sooner (>=10% on every seed).
        assert fed["makespan"] < 0.9 * base["makespan"], (
            seed,
            base["makespan"],
            fed["makespan"],
        )


def test_passive_monitor_does_not_perturb_run():
    """Watching without feedback must not change the simulation at all."""

    def bare(seed):
        engine = Engine()
        streams = RandomStreams(seed=seed)
        grid = faulty_testbed(engine, streams)
        app = BronzeStandardApplication(engine, grid, streams)
        config = next(
            c for c in OptimizationConfig.paper_configurations()
            if c.label == "SP+DP"
        )
        return app.enact(config, n_pairs=N_PAIRS).makespan

    watched = run_once(42, feedback=False)["makespan"]
    assert bare(42) == pytest.approx(watched)
