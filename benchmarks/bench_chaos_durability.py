"""E17 — ablation: what background replica repair is worth under chaos.

The paper's Figure 6 narrative shows the production grid eating jobs —
"an error occurred" and the workload is resubmitted.  The chaos testbed
pushes the same hostility into the *data plane*: storage elements go
dark on a schedule, transfers fail and degrade, and replicas silently
die or corrupt.  Durability then rests on two mechanisms:

* **failover** — stage-in walks the replica ranking past dead or dark
  copies instead of failing on the closest one;
* **repair** — a background daemon re-replicates every logical file up
  to the target replica count, emitting ``purpose="repair"`` transfers
  (the always-on ``bytes.repair`` counter).

This ablation runs the best-effort Bronze Standard on
``chaotic_testbed`` with repair on vs off.  With repair disabled, a
single lost sandbox replica poisons every lineage that needed it; with
repair on, the daemon has already spread copies before the loss bites.
Reported per seed: makespan, items delivered/lost, repair transfers and
bytes, transfer faults.  Rows land in the run-history store so
``compare-runs`` can track durability over time.
"""

import os

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.grid.testbeds import chaotic_testbed
from repro.observability import InstrumentationBus
from repro.observability.durability import build_durability_report
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

N_PAIRS = 6
SEEDS = (42, 7, 11)
MODES = ("repair", "no-repair")


def run_once(seed, mode):
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = chaotic_testbed(engine, streams, repair=(mode == "repair"))
    bus = InstrumentationBus()
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    ).with_best_effort()
    result = app.enact(config, n_pairs=N_PAIRS, instrumentation=bus)
    report = build_durability_report(result, n_items=N_PAIRS)
    return {
        "makespan": result.makespan,
        "delivered": report.delivered_items,
        "lost": report.lost_items,
        "repair_transfers": report.repair_transfers,
        "repair_bytes": report.repair_bytes,
        "transfer_failures": report.transfer_failures,
        "replicas_lost": report.replicas_lost,
    }


def _record(results) -> None:
    """Best-effort run-store rows: durability vs repair over time."""
    from repro.observability.runstore import RunStore, RunSummary

    root = os.environ.get(
        "REPRO_RUNSTORE", os.path.join(os.path.dirname(__file__), "runstore")
    )
    store = RunStore(root)
    for (seed, mode), row in results.items():
        store.append(
            RunSummary(
                workflow="bronze-standard",
                policy=f"SP+DP/{mode}",
                makespan=row["makespan"],
                n_items=N_PAIRS,
                seed=seed,
                counters={
                    "enactor.items_delivered": float(row["delivered"]),
                    "enactor.items_lost": float(row["lost"]),
                    "bytes.repair": float(row["repair_bytes"]),
                    "grid.transfer.failures": float(row["transfer_failures"]),
                },
                note="chaos_durability_ablation",
            )
        )


def test_repair_and_failover_beat_no_repair(benchmark):
    def sweep():
        return {
            (seed, mode): run_once(seed, mode)
            for seed in SEEDS
            for mode in MODES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    try:
        _record(results)
    except Exception:
        pass  # recording must never fail the benchmark

    print(f"\n=== Bronze ({N_PAIRS} pairs, SP+DP, best-effort) on chaotic_testbed ===")
    print(f"{'seed':>5} | {'mode':>9} | {'makespan (s)':>12} | {'delivered':>9} | "
          f"{'lost':>4} | {'repair xfers':>12} | {'repair bytes':>12}")
    print("-" * 80)
    for seed in SEEDS:
        for mode in MODES:
            row = results[(seed, mode)]
            print(f"{seed:>5} | {mode:>9} | {row['makespan']:>12.0f} | "
                  f"{row['delivered']:>9} | {row['lost']:>4} | "
                  f"{row['repair_transfers']:>12} | {row['repair_bytes']:>12}")

    for seed in SEEDS:
        with_repair = results[(seed, "repair")]
        without = results[(seed, "no-repair")]
        # The repair daemon must actually run: repair traffic observed
        # through the data-flow ledger's always-on counter.
        assert with_repair["repair_bytes"] > 0, (seed, with_repair)
        assert with_repair["repair_transfers"] > 0, (seed, with_repair)
        assert without["repair_bytes"] == 0, (seed, without)
    # Durability is the headline: over the sweep, repair + failover must
    # deliver strictly more items than the no-repair ablation.
    total_with = sum(results[(s, "repair")]["delivered"] for s in SEEDS)
    total_without = sum(results[(s, "no-repair")]["delivered"] for s in SEEDS)
    assert total_with > total_without, (total_with, total_without)


def test_chaos_runs_are_reproducible():
    """Same seed + same mode = identical makespan and delivery."""
    a = run_once(SEEDS[0], "repair")
    b = run_once(SEEDS[0], "repair")
    assert a["makespan"] == pytest.approx(b["makespan"])
    assert a["delivered"] == b["delivered"]
    assert a["repair_bytes"] == b["repair_bytes"]
