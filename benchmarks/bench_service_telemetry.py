"""Telemetry overhead: the ops layer must cost <= 5% wall-clock.

The control-plane observability added for the service — audit events,
live rollups, SLO evaluation, throughput counters — runs inline with
every scheduler decision.  This benchmark enacts the identical
three-tenant bronze workload twice: once with a bare instrumentation
bus (the PR-5 status quo) and once with the full ops stack (bus +
rollups + SLO tracking + audit fan-in), and compares best-of-N wall
times.  The acceptance bar is a <=5% overhead on the bronze smoke
workload; the assertion allows 15% to keep CI machines' scheduling
jitter from flaking the build while still catching a real regression
(an accidentally quadratic fold shows up as 2-10x, not 1.15x).
"""

from __future__ import annotations

from repro.grid.testbeds import cluster_testbed
from repro.observability import InstrumentationBus
from repro.observability.profiling import wall_clock
from repro.service import EnactmentService, InMemoryStateStore, RunState, TenantSpec

BENCH_SEED = 42
ROUNDS = 5
#: CI-friendly assertion bar; the acceptance target is OVERHEAD_TARGET
OVERHEAD_TARGET = 0.05
OVERHEAD_LIMIT = 0.15


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def run_workload(with_ops_telemetry):
    """One full three-tenant drain; returns (wall_seconds, service)."""
    service = EnactmentService(
        InMemoryStateStore(),
        policy="fair-share",
        max_concurrent_runs=3,
        testbed=small_cluster,
        seed=BENCH_SEED,
        instrumentation=InstrumentationBus(),
    )
    if not with_ops_telemetry:
        # strip the ops layer back to the PR-5 shape: no rollup
        # subscriber on the bus, no SLO evaluation on audit events
        service.instrumentation.subscribers.remove(service.telemetry)
        service.slo_tracker.slos = []
    for name, weight in (("alice", 2.0), ("bob", 1.0), ("carol", 1.0)):
        service.add_tenant(TenantSpec(name=name, weight=weight, max_concurrent_runs=2))
    seed = 100
    for name in ("alice", "bob", "carol"):
        for _ in range(2):
            service.submit(name, n_items=1, seed=seed)
            seed += 1
    begin = wall_clock()
    runs = service.drain()
    wall = wall_clock() - begin
    assert len(runs) == 6
    assert all(run.state is RunState.DONE for run in runs)
    return wall, service


def best_of_interleaved(rounds):
    """Alternate the two arms per round so drift hits both equally."""
    run_workload(False)  # warm caches, imports, allocator
    run_workload(True)
    bare_walls, full_walls = [], []
    service = None
    for _ in range(rounds):
        wall, _ = run_workload(False)
        bare_walls.append(wall)
        wall, service = run_workload(True)
        full_walls.append(wall)
    return min(bare_walls), min(full_walls), service


def test_ops_telemetry_overhead(benchmark=None):
    def measure():
        return best_of_interleaved(ROUNDS)

    if benchmark is not None:
        bare, full, service = benchmark.pedantic(measure, rounds=1, iterations=1)
    else:
        bare, full, service = measure()

    overhead = (full - bare) / bare
    perf = service.perf_counters()
    print("\n=== ops telemetry overhead (bronze smoke, 3 tenants x 2 runs) ===")
    print(f"bare bus      : {bare * 1000:8.1f} ms")
    print(f"with ops layer: {full * 1000:8.1f} ms")
    print(f"overhead      : {overhead * 100:+8.1f}%  (target <= "
          f"{OVERHEAD_TARGET:.0%}, asserted <= {OVERHEAD_LIMIT:.0%})")
    if "perf.events_per_sec" in perf:
        print(f"engine        : {perf['perf.events_per_sec']:8.0f} events/s, "
              f"{perf.get('perf.us_per_invocation', 0.0):.0f} us/invocation")

    # sanity: the full arm actually ran the ops stack
    assert service.telemetry.totals().done == 6
    assert service.telemetry.totals().invocations > 0
    assert overhead <= OVERHEAD_LIMIT


if __name__ == "__main__":
    test_ops_telemetry_overhead()
