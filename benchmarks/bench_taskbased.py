"""E13 — baseline: task-based expansion growth (Section 2.2).

Quantifies "a cross product produces an enormous amount of tasks and
chaining cross products just makes the application workflow
representation intractable even for a limited number (tens) of input
data": counts static tasks for chained cross products against the
constant-size service workflow, and times the expansion itself.
"""


from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.taskbased.dag import expand_workflow
from repro.workflow.builder import WorkflowBuilder


def cross_chain(engine, depth):
    builder = WorkflowBuilder("cross-chain")
    for i in range(depth + 1):
        builder.source(f"s{i}")
    previous = "s0:output"
    for level in range(depth):
        builder.service(
            f"X{level}",
            LocalService(engine, f"X{level}", ("a", "b"), ("y",)),
            iteration_strategy="cross",
        )
        builder.connect(previous, f"X{level}:a")
        builder.connect(f"s{level + 1}:output", f"X{level}:b")
        previous = f"X{level}:y"
    builder.sink("out")
    builder.connect(previous, "out:input")
    return builder.build()


def expand_for(n, depth=3):
    engine = Engine()
    workflow = cross_chain(engine, depth)
    dataset = {f"s{i}": list(range(n)) for i in range(depth + 1)}
    return workflow, expand_workflow(workflow, dataset)


def test_taskbased_explosion(benchmark):
    dag20 = benchmark.pedantic(expand_for, args=(20,), rounds=1, iterations=1)[1]

    print("\n=== static task count vs input size (3 chained cross products) ===")
    print(f"{'n':>4} | {'service processors':>18} | {'static tasks':>12}")
    print("-" * 42)
    for n in (2, 5, 10, 20):
        workflow, dag = expand_for(n)
        print(f"{n:>4} | {len(workflow.services()):>18} | {dag.task_count:>12}")
        assert dag.task_count == n**2 + n**3 + n**4
        assert len(workflow.services()) == 3

    # "tens of input data" is already tens of thousands of tasks
    assert dag20.task_count == 20**2 + 20**3 + 20**4  # 168,400


def test_dot_products_stay_linear(benchmark):
    """Control: dot-product chains expand linearly — the explosion is
    specifically a cross-product phenomenon."""

    def expand_dot(n):
        engine = Engine()
        builder = WorkflowBuilder("dot-chain").source("s0").source("s1")
        builder.service(
            "X0", LocalService(engine, "X0", ("a", "b"), ("y",)),
            iteration_strategy="dot",
        )
        builder.connect("s0:output", "X0:a").connect("s1:output", "X0:b")
        builder.sink("out").connect("X0:y", "out:input")
        workflow = builder.build()
        return expand_workflow(workflow, {"s0": list(range(n)), "s1": list(range(n))})

    dag = benchmark.pedantic(expand_dot, args=(100,), rounds=1, iterations=1)
    print(f"\ndot-product chain at n=100: {dag.task_count} tasks (linear)")
    assert dag.task_count == 100
