"""E7 — Figure 3: the cross-product and dot-product iteration strategies.

Regenerates the figure's semantics as data: feeding input sets A (n
items) and B (m items) to a two-port service produces n x m invocations
under the cross product and min(n, m) under the dot product — "the
most common iteration strategy consists in processing each data of the
first set with each data of the second set in their order of
definition".
"""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.builder import WorkflowBuilder


def run_strategy(strategy, n, m):
    engine = Engine()
    combine = LocalService(
        engine, "combine", ("a", "b"), ("y",),
        function=lambda a, b: {"y": (a, b)}, duration=1.0,
    )
    workflow = (
        WorkflowBuilder(f"figure3-{strategy}")
        .source("A")
        .source("B")
        .service("combine", combine, iteration_strategy=strategy)
        .sink("out")
        .connect("A:output", "combine:a")
        .connect("B:output", "combine:b")
        .connect("combine:y", "out:input")
        .build()
    )
    result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
        {"A": [f"A{i}" for i in range(n)], "B": [f"B{j}" for j in range(m)]}
    )
    return result.output_values("out")


def test_figure3_operators(benchmark):
    n, m = 4, 3
    dot = benchmark.pedantic(run_strategy, args=("dot", n, m), rounds=1, iterations=1)
    cross = run_strategy("cross", n, m)

    print(f"\n=== Figure 3 (regenerated) — A has {n} items, B has {m} ===")
    print(f"dot product   -> {len(dot)} results (min(n, m) = {min(n, m)}):")
    for a, b in sorted(dot):
        print(f"   {a} . {b}")
    print(f"cross product -> {len(cross)} results (n x m = {n * m}):")
    for a, b in sorted(cross):
        print(f"   {a} x {b}")

    assert len(dot) == min(n, m)
    assert sorted(dot) == [(f"A{i}", f"B{i}") for i in range(min(n, m))]
    assert len(cross) == n * m
    assert set(cross) == {(f"A{i}", f"B{j}") for i in range(n) for j in range(m)}
