"""E10 — Sections 5.2/5.3: the per-optimization speed-up and ratio analysis.

Regenerates the four comparisons the paper walks through:

* DP vs NOP           (data parallelism pays through the *slope*),
* (SP+DP) vs DP       (service parallelism keeps paying under DP),
* JG vs NOP           (grouping pays through the *y-intercept*),
* (SP+DP+JG) vs SP+DP (grouping still pays on top of everything).
"""


from repro.experiments.reporting import SECTION52_PAIRS, format_ratios
from repro.model.metrics import ratios_table

#: the paper's measured numbers for each comparison
PAPER_VALUES = {
    ("DP", "NOP"): {"speedups": (1.86, 2.89, 3.92), "y": 1.27, "slope": 6.18},
    ("SP+DP", "DP"): {"speedups": (2.26, 2.17, 1.90), "y": 2.46, "slope": 1.62},
    ("JG", "NOP"): {"speedups": (1.43, 1.12, 1.06), "y": 1.87, "slope": 0.98},
    ("SP+DP+JG", "SP+DP"): {"speedups": (1.42, 1.34, 1.23), "y": 1.54, "slope": 1.11},
}


def test_ratio_analysis(benchmark, paper_sweep):
    fits = paper_sweep.table2()
    rows = benchmark.pedantic(
        ratios_table, args=(fits, SECTION52_PAIRS), rounds=1, iterations=1
    )

    print("\n=== Sections 5.2/5.3 (measured) ===")
    print(format_ratios(fits))
    print("\n=== paper values, same comparisons ===")
    for (analyzed, reference), values in PAPER_VALUES.items():
        speedups = ", ".join(f"{s:.2f}" for s in values["speedups"])
        print(f"{analyzed:>9} vs {reference:<6} | {speedups} | "
              f"y-int {values['y']:.2f} | slope {values['slope']:.2f}")

    by_pair = {(r["analyzed"], r["reference"]): r for r in rows}

    # DP pays through the slope (ours exceeds the paper's 6.18 because
    # the simulated grid honours H2 fully).
    assert by_pair[("DP", "NOP")]["slope_ratio"] > 5.0

    # SP keeps paying under DP: every size shows a speed-up > 1 (paper:
    # 1.90 - 2.26).
    assert all(s > 1.0 for s in by_pair[("SP+DP", "DP")]["speedups"])

    # JG pays at every size (paper: 1.06 - 1.43).
    assert all(s > 1.0 for s in by_pair[("JG", "NOP")]["speedups"])

    # JG on top of SP+DP improves the fixed cost (paper's ratio: 1.54).
    assert by_pair[("SP+DP+JG", "SP+DP")]["y_intercept_ratio"] > 1.0


def test_headline_speedup(benchmark, paper_sweep):
    """Abstract: 'an execution time speed up of approximately 9'."""
    nop = benchmark.pedantic(
        lambda: paper_sweep.cell("NOP", 126).makespan, rounds=1, iterations=1
    )
    best = paper_sweep.cell("SP+DP+JG", 126).makespan
    speedup = nop / best
    print(f"\nend-to-end speed-up of SP+DP+JG over NOP at 126 pairs: {speedup:.1f} "
          "(paper: ~9; larger here because the simulated grid is uncontended)")
    assert speedup > 5.0
