"""E11 — ablation: execution-time variability is what makes SP pay under DP.

Section 3.5.4 predicts S_SDP = 1 under constant times and the paper
attributes the measured S_SDP ~= 2 to "the high variability of the
overhead due to submission, scheduling and queuing times".  This
ablation sweeps the overhead's standard deviation at a fixed mean and
measures S_SDP = Sigma_DP / Sigma_DSP on the Bronze Standard workload,
alongside the closed Monte-Carlo estimate from the probabilistic model.

Expected shape: S_SDP ~= 1 at zero variability, growing monotonically
(in trend) with the dispersion.
"""

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.experiments.harness import run_configuration
from repro.grid.testbeds import egee_like_testbed
from repro.model.probabilistic import expected_sdp_gain
from repro.util.distributions import TruncatedNormal

SIGMAS = (0.0, 100.0, 300.0, 600.0)
MEAN = 600.0


def factory_for(sigma):
    def factory(engine, streams):
        return egee_like_testbed(
            engine,
            streams,
            n_sites=8,
            workers_per_ce=40,
            overhead_mean=MEAN,
            overhead_sigma=sigma,
            failure_probability=0.0,
            with_background_load=False,
            heterogeneous_workers=sigma > 0,
            overhead_load_coupling=0.0,  # isolate pure dispersion effects
        )

    return factory


def measure_gain(sigma, seed=11):
    dp = run_configuration(OptimizationConfig.dp(), 8, seed=seed,
                           grid_factory=factory_for(sigma))
    dsp = run_configuration(OptimizationConfig.sp_dp(), 8, seed=seed,
                            grid_factory=factory_for(sigma))
    return dp.makespan / dsp.makespan


def test_variability_ablation(benchmark):
    def sweep():
        return [measure_gain(sigma) for sigma in SIGMAS]

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rng = np.random.default_rng(5)
    print("\n=== S_SDP vs overhead variability (mean fixed at 600 s) ===")
    print(f"{'sigma (s)':>10} | {'measured S_SDP':>14} | {'MC model S_SDP':>14}")
    print("-" * 46)
    for sigma, gain in zip(SIGMAS, gains):
        job = TruncatedNormal(mu=MEAN + 250.0, sigma=sigma, floor=30.0)
        model = expected_sdp_gain(job, n_w=5, n_d=8, rng=rng, rounds=150)
        print(f"{sigma:>10.0f} | {gain:>14.2f} | {model:>14.2f}")

    # Zero variability: SP adds (nearly) nothing on top of DP.
    assert gains[0] == pytest.approx(1.0, abs=0.15)
    # High variability: SP clearly pays (the paper measured 1.9 - 2.3).
    assert gains[-1] > 1.2
    # Trend: the high-dispersion end beats the low-dispersion end.
    assert gains[-1] > gains[0]
