"""E2 — Table 2: y-intercept and slope of the time-vs-size regressions.

Regenerates the paper's Table 2 by linear regression over the measured
Table 1 rows, exactly as Section 5.1 prescribes.

Shape claims reproduced:
* data parallelism divides the slope by a large factor (the paper's
  slope ratio 6.18; larger here because the simulated grid honours
  hypothesis H2 more fully than loaded EGEE did),
* job grouping (SP+DP+JG vs SP+DP) improves the y-intercept more than
  the slope.
"""


from repro.experiments.reporting import format_table2
from repro.model.metrics import slope_ratio, y_intercept_ratio


def test_table2_regeneration(benchmark, paper_sweep):
    fits = benchmark.pedantic(paper_sweep.table2, rounds=1, iterations=1)

    print("\n=== Table 2 (measured) — y-intercept and slope per configuration ===")
    print(format_table2(fits))

    # near-linear growth for the serial family, as the paper observes
    for label in ("NOP", "JG", "SP"):
        assert fits[label].fit.r_squared > 0.99, label

    # DP flattens the slope dramatically
    assert slope_ratio(fits["NOP"].fit, fits["DP"].fit) > 5.0

    # JG on top of SP+DP cuts the fixed cost (the paper's 1.54 ratio)
    jg_gain = y_intercept_ratio(fits["SP+DP"].fit, fits["SP+DP+JG"].fit)
    print(f"\nJG y-intercept gain over SP+DP: {jg_gain:.2f} (paper: 1.54)")
    assert jg_gain > 1.0
