"""Profiler cost: off must be free (<=1%), on must stay under 10%.

The hot-path profiler lives *permanently* inside ``Engine.step`` /
``Engine.schedule``, the enactor's invocation path, grid submission,
broker ranking and the instrumentation bus.  The contract that makes
that acceptable is toggleability: every instrumented call site pays one
attribute load plus one ``is not None`` test when profiling is off.
This benchmark proves the contract on the bronze smoke workload with
three interleaved arms:

``bare``
    An :class:`Engine` subclass whose ``schedule``/``step`` carry the
    pre-profiler bodies — no profiler checks, no heap-peak tracking.
    The engine dispatch is the frequency-dominant call site (hundreds
    of events per run vs tens of invocations), so removing its checks
    is the honest "no instrumentation" baseline; the per-invocation
    checks that remain run orders of magnitude less often.
``off``
    The real engine, profiler ``None`` — the permanent production
    state.  Acceptance target: <=1% over ``bare``.
``on``
    The real engine with a deterministic-clock profiler installed
    across the whole stack.  Acceptance target: <=10% over ``off``.

The assertions allow 5% / 30% so CI scheduling jitter cannot flake the
build while a real regression (a forgotten fast path turns every event
into scope bookkeeping: 2-10x, not 1.3x) still fails loudly.
"""

from __future__ import annotations

import heapq

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core.config import OptimizationConfig
from repro.grid.testbeds import egee_like_testbed
from repro.observability.profiling import Profiler, TickClock, wall_clock
from repro.sim.engine import Engine, SimulationError
from repro.util.rng import RandomStreams

BENCH_SEED = 42
PAIRS = 4
ROUNDS = 5
#: acceptance targets; the assertion bars below add CI jitter slack
OFF_TARGET, OFF_LIMIT = 0.01, 0.05
ON_TARGET, ON_LIMIT = 0.10, 0.30


class _BareEngine(Engine):
    """The pre-profiler hot path: no toggles, no heap-peak tracking."""

    def schedule(self, event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def step(self) -> None:
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value


def run_workload(arm: str) -> float:
    """One bronze enactment; returns wall seconds for the chosen arm."""
    engine = _BareEngine() if arm == "bare" else Engine()
    streams = RandomStreams(seed=BENCH_SEED)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    )
    profiler = Profiler(clock=TickClock()) if arm == "on" else None
    begin = wall_clock()
    result = app.enact(config, n_pairs=PAIRS, profiler=profiler)
    wall = wall_clock() - begin
    assert result.invocation_count > 0
    return wall


def best_of_interleaved(rounds: int):
    """Alternate all three arms per round so machine drift hits each."""
    for arm in ("bare", "off", "on"):  # warm caches, imports, allocator
        run_workload(arm)
    walls = {"bare": [], "off": [], "on": []}
    for _ in range(rounds):
        for arm in ("bare", "off", "on"):
            walls[arm].append(run_workload(arm))
    return min(walls["bare"]), min(walls["off"]), min(walls["on"])


def test_profiler_overhead(benchmark=None):
    def measure():
        return best_of_interleaved(ROUNDS)

    if benchmark is not None:
        bare, off, on = benchmark.pedantic(measure, rounds=1, iterations=1)
    else:
        bare, off, on = measure()

    off_overhead = (off - bare) / bare
    on_overhead = (on - off) / off
    print(f"\n=== profiler overhead (bronze {PAIRS} pairs, best of {ROUNDS}) ===")
    print(f"bare engine   : {bare * 1000:8.1f} ms")
    print(f"profiler off  : {off * 1000:8.1f} ms  "
          f"({off_overhead * 100:+.1f}%, target <= {OFF_TARGET:.0%}, "
          f"asserted <= {OFF_LIMIT:.0%})")
    print(f"profiler on   : {on * 1000:8.1f} ms  "
          f"({on_overhead * 100:+.1f}% over off, target <= {ON_TARGET:.0%}, "
          f"asserted <= {ON_LIMIT:.0%})")

    assert off_overhead <= OFF_LIMIT
    assert on_overhead <= ON_LIMIT


if __name__ == "__main__":
    test_profiler_overhead()
