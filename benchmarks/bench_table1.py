"""E1 — Table 1: execution time per optimization configuration and size.

Regenerates the paper's Table 1 on the simulated EGEE-like grid: the
Bronze Standard workflow enacted under NOP / JG / SP / DP / SP+DP /
SP+DP+JG over 12, 66 and 126 image pairs.

Shape claims reproduced (absolute seconds are testbed-dependent):
* configuration ordering NOP > JG > SP > DP > SP+DP > SP+DP+JG at
  every size,
* the DP family is dramatically flatter in the input size than the
  non-DP family.
"""


from repro.core import OptimizationConfig
from repro.experiments.harness import run_configuration
from repro.experiments.reporting import check_ordering, format_table1, paper_comparison

from conftest import BENCH_SEED


def test_table1_regeneration(benchmark, paper_sweep):
    """Benchmark one representative cell; print the full measured table."""

    def one_cell():
        return run_configuration(OptimizationConfig.sp_dp_jg(), 12, seed=BENCH_SEED)

    row = benchmark.pedantic(one_cell, rounds=1, iterations=1)
    assert row.makespan > 0

    print("\n=== Table 1 (measured) — execution time for each configuration ===")
    print(format_table1(paper_sweep, with_hours=True))
    print("\n=== paper vs measured ===")
    print(paper_comparison(paper_sweep))

    ordering = check_ordering(paper_sweep)
    print(f"\nconfiguration ordering preserved per size: {ordering}")
    assert all(ordering.values()), "paper's configuration ordering must hold"


def test_table1_dp_flattens_growth(benchmark, paper_sweep):
    """DP's growth from 12 to 126 pairs is far below NOP's (paper: 1.9x vs 4.1x)."""
    nop_growth = benchmark.pedantic(
        lambda: paper_sweep.cell("NOP", 126).makespan / paper_sweep.cell("NOP", 12).makespan,
        rounds=1, iterations=1,
    )
    dp_growth = paper_sweep.cell("DP", 126).makespan / paper_sweep.cell("DP", 12).makespan
    print(f"\ngrowth 12->126 pairs: NOP x{nop_growth:.1f}, DP x{dp_growth:.1f}")
    assert dp_growth < nop_growth / 2
