"""E15 — warm re-execution: the provenance-keyed cache makes re-runs free.

The paper's input-data-set language exists "to save and store the input
data set in order to be able to re-execute workflows on the same data
set".  This benchmark measures what that re-execution costs *with* the
result cache: the Bronze Standard workflow is enacted cold (empty
FileStore, every invocation submits grid jobs) and then warm (fresh
engine + grid + enactor, same persisted store), under four execution
policies.

Claims checked per policy:

* the warm run submits **zero** grid jobs,
* warm sink outputs are byte-identical to the cold run's,
* warm makespan is at least 10x below cold (in practice it is ~0: every
  invocation replays in zero simulated time),
* the hit/miss ledger matches: warm hits == cold stores, warm misses == 0.
"""

import pickle


from repro.apps.bronze_standard import BronzeStandardApplication
from repro.cache import FileStore, ResultCache
from repro.core import OptimizationConfig
from repro.experiments.calibration import make_experiment_grid
from repro.experiments.reporting import format_cache_stats, format_reexecution
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

from conftest import BENCH_SEED

#: the four execution policies the warm-run study sweeps
POLICIES = (
    OptimizationConfig.nop(),
    OptimizationConfig.dp(),
    OptimizationConfig.sp(),
    OptimizationConfig.sp_dp(),
)

N_PAIRS = 12


def enact_once(config, cache, n_pairs=N_PAIRS):
    """One enactment on a fresh engine/grid/application (a new 'process').

    The seed pins the generated data set, so a warm run sees exactly the
    tokens the cold run persisted.
    """
    engine = Engine()
    streams = RandomStreams(seed=BENCH_SEED)
    grid = make_experiment_grid(engine, streams)
    app = BronzeStandardApplication(engine, grid, streams)
    result = app.enact(config, n_pairs=n_pairs, cache=cache)
    return result, len(grid.records)


def sink_bytes(result):
    """Canonical byte form of every sink output (order-insensitive)."""
    payload = {
        sink: sorted(repr(v) for v in result.output_values(sink))
        for sink in ("accuracy_rotation", "accuracy_translation")
    }
    return pickle.dumps(payload)


def test_warm_reexecution_all_policies(benchmark, tmp_path):
    rows = []
    stats_blocks = []

    def cold_sp_dp():
        # the benchmarked unit: one representative cold run
        return enact_once(OptimizationConfig.sp_dp(), None)

    benchmark.pedantic(cold_sp_dp, rounds=1, iterations=1)

    for config in POLICIES:
        cache_dir = tmp_path / f"cache-{config.label.replace('+', '_')}"
        cold_cache = ResultCache(store=FileStore(cache_dir))
        cold, cold_jobs = enact_once(config, cold_cache)

        # a *fresh* cache object over the same directory: cross-process story
        warm_cache = ResultCache(store=FileStore(cache_dir))
        warm, warm_jobs = enact_once(config, warm_cache)

        assert cold_jobs > 0
        assert warm_jobs == 0, f"{config.label}: warm run submitted {warm_jobs} jobs"
        assert sink_bytes(warm) == sink_bytes(cold), (
            f"{config.label}: warm outputs differ from cold"
        )
        speedup = cold.makespan / warm.makespan if warm.makespan > 0 else float("inf")
        assert speedup >= 10.0, (
            f"{config.label}: warm/cold speed-up {speedup:.1f}x below 10x"
        )
        warm_stats = warm.cache_stats
        assert warm_stats.total.misses == 0
        assert warm_stats.total.hits == cold.cache_stats.total.stores
        assert warm_stats.hit_rate == 1.0

        rows.append(
            (config.label, cold.makespan, warm.makespan, cold_jobs, warm_jobs, warm_stats)
        )
        stats_blocks.append((config.label, warm_stats))

    print("\n=== E15 — cold vs warm re-execution (FileStore persisted) ===")
    print(format_reexecution(rows))
    label, stats = stats_blocks[-1]
    print(f"\n=== warm-run cache ledger ({label}) ===")
    print(format_cache_stats(stats))


def test_partial_warm_run_only_pays_for_new_pairs(tmp_path):
    """Growing the data set reuses every cached pair: only the new work runs."""
    config = OptimizationConfig.sp_dp()
    cache_dir = tmp_path / "cache-partial"
    cold, cold_jobs = enact_once(config, ResultCache(store=FileStore(cache_dir)), n_pairs=6)

    grown, grown_jobs = enact_once(
        config, ResultCache(store=FileStore(cache_dir)), n_pairs=12
    )
    # the first 6 pairs replay; only the 6 new pairs submit jobs (the
    # final statistics barrier re-runs too: its input multiset changed)
    assert 0 < grown_jobs < cold_jobs * 2
    stats = grown.cache_stats
    assert stats.total.hits > 0
    assert stats.total.misses > 0
    print(
        f"\npartial warm run: {grown_jobs} jobs for 6 new pairs "
        f"(cold 6-pair run: {cold_jobs}); hits={stats.total.hits} "
        f"misses={stats.total.misses}"
    )
