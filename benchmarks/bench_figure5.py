"""E5 — Figure 5: service-parallel execution diagram of the Figure 1 workflow.

Same workload as Figure 4 but with service parallelism only: each
service processes one data set at a time while different services
pipeline over different data sets.  The regenerated diagram must be
cell-for-cell the published one::

    P3 | X  | D0 | D1 | D2 |
    P2 | X  | D0 | D1 | D2 |
    P1 | D0 | D1 | D2 | X  |
"""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import diagram_rows, execution_diagram
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import figure1_workflow


def run_figure5():
    engine = Engine()

    def factory(name, inputs, outputs):
        return LocalService(engine, name, inputs, outputs, duration=1.0)

    workflow = figure1_workflow(factory)
    enactor = MoteurEnactor(engine, workflow, OptimizationConfig.sp())
    return enactor.run({"source": [0, 1, 2]})


def test_figure5_diagram(benchmark):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    print("\n=== Figure 5 (regenerated) — service-parallel execution diagram ===")
    print(execution_diagram(result.trace, cell=1.0))

    rows = diagram_rows(result.trace, cell=1.0)
    assert rows["P1"] == ["D0", "D1", "D2", "X"]
    assert rows["P2"] == ["X", "D0", "D1", "D2"]
    assert rows["P3"] == ["X", "D0", "D1", "D2"]
    # Sigma_SP = (n_D + n_W - 1) T on the 2-service critical path = 4
    assert result.makespan == 4.0
