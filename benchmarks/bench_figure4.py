"""E4 — Figure 4: data-parallel execution diagram of the Figure 1 workflow.

Enacts the paper's Figure 1 workflow (P1 feeding parallel branches P2
and P3) over D0..D2 with constant time T and data parallelism only,
and renders the execution diagram.  The regenerated diagram must be
cell-for-cell the published one::

    P3 |    X     | D0 D1 D2 |
    P2 |    X     | D0 D1 D2 |
    P1 | D0 D1 D2 |    X     |
"""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import diagram_rows, execution_diagram
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import figure1_workflow


def run_figure4():
    engine = Engine()

    def factory(name, inputs, outputs):
        return LocalService(engine, name, inputs, outputs, duration=1.0)

    workflow = figure1_workflow(factory)
    enactor = MoteurEnactor(engine, workflow, OptimizationConfig.dp())
    return enactor.run({"source": [0, 1, 2]})


def test_figure4_diagram(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    print("\n=== Figure 4 (regenerated) — data-parallel execution diagram ===")
    print(execution_diagram(result.trace, cell=1.0))

    rows = diagram_rows(result.trace, cell=1.0)
    assert rows["P1"] == ["D0 D1 D2", "X"]
    assert rows["P2"] == ["X", "D0 D1 D2"]
    assert rows["P3"] == ["X", "D0 D1 D2"]
    assert result.makespan == 2.0  # Sigma_DP = n_W * T with branch overlap
