"""E12 — ablation / future work: grouping jobs of a single service.

Section 5.4: "we plan to address this problem by grouping jobs of a
single service, thus finding a trade-off between data parallelism and
the system's overhead."  This bench sweeps the intra-service group size
k on one data-parallel stage and reports the expected stage makespan
from the probabilistic model (`repro.model.probabilistic.GranularityModel`),
with a variance-free control case pinning the analytics down.

Expected shape: k = 1 maximizes parallelism but pays n_D overhead
draws (a max over many heavy-tailed samples); very large k serializes
compute; an intermediate k wins when overhead variability is high.
"""

import numpy as np
import pytest

from repro.model.probabilistic import GranularityModel
from repro.util.distributions import Constant, LogNormal

N_ITEMS = 32
COMPUTE = 120.0


def test_granularity_tradeoff(benchmark):
    rng = np.random.default_rng(17)
    model = GranularityModel(
        overhead=LogNormal(mean_value=600.0, sigma_log=0.8),
        compute=Constant(COMPUTE),
        n_d=N_ITEMS,
    )

    candidates = [1, 2, 4, 8, 16, 32]

    def sweep():
        return {k: model.expected_makespan(k, rng, rounds=300) for k in candidates}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== expected stage makespan vs intra-service group size k ===")
    print(f"(one service, {N_ITEMS} items, compute {COMPUTE:.0f}s/item, "
          "overhead ~LogNormal(600s, heavy tail))")
    print(f"{'k':>4} | {'jobs':>5} | {'expected makespan (s)':>22}")
    print("-" * 40)
    for k in candidates:
        jobs = -(-N_ITEMS // k)
        print(f"{k:>4} | {jobs:>5} | {times[k]:>22.0f}")

    best_k = min(times, key=times.get)
    print(f"\nbest group size: k = {best_k}")

    # The trade-off exists: neither extreme is optimal.
    assert times[best_k] < times[1]
    assert times[best_k] < times[N_ITEMS]
    assert 1 < best_k < N_ITEMS


def test_granularity_end_to_end(benchmark):
    """Same trade-off realized in the execution stack via BatchingService."""
    from repro.grid.middleware import Grid
    from repro.grid.overhead import OverheadModel
    from repro.grid.resources import ComputingElement, Site
    from repro.grid.storage import StorageElement
    from repro.grid.transfer import NetworkModel
    from repro.services.base import GridData
    from repro.services.batching import BatchingService
    from repro.services.descriptor import (
        AccessMethod, ExecutableDescriptor, InputSpec, OutputSpec,
    )
    from repro.services.wrapper import GenericWrapperService
    from repro.sim.engine import Engine
    from repro.util.rng import RandomStreams

    def run(batch_size, seed=5):
        engine = Engine()
        streams = RandomStreams(seed=seed)
        ce = ComputingElement(engine, "ce", "s0", infinite=True)
        grid = Grid(
            engine, streams,
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel(queue_extra=LogNormal(mean_value=600.0, sigma_log=0.9)),
            network=NetworkModel.instantaneous(),
        )
        descriptor = ExecutableDescriptor(
            name="stage", access=AccessMethod("URL", "http://host"), value="stage",
            inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
            outputs=(OutputSpec("y", "-o"),),
        )
        inner = GenericWrapperService(engine, grid, descriptor, compute_time=COMPUTE)
        service = BatchingService(engine, inner, batch_size=batch_size)
        events = [service.invoke({"x": GridData(i)}) for i in range(N_ITEMS)]
        service.flush()
        engine.run(until=engine.all_of(events))
        return engine.now

    def sweep():
        return {k: run(k) for k in (1, 4, N_ITEMS)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== same sweep, end-to-end through BatchingService + grid ===")
    for k, t in times.items():
        print(f"  k={k:>3}: makespan {t:8.0f}s")
    assert times[4] < times[1]
    assert times[4] < times[N_ITEMS]


def test_no_variance_degenerates_to_full_grouping_indifference(benchmark):
    """With constant overhead, parallel groups tie: only compute serialization hurts."""
    rng = np.random.default_rng(3)
    model = GranularityModel(
        overhead=Constant(600.0), compute=Constant(COMPUTE), n_d=16
    )

    def sweep():
        return {k: model.expected_makespan(k, rng, rounds=5) for k in (1, 4, 16)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nconstant-overhead control: {times}")
    assert times[1] == pytest.approx(600.0 + COMPUTE)
    assert times[4] == pytest.approx(600.0 + 4 * COMPUTE)
    assert times[16] == pytest.approx(600.0 + 16 * COMPUTE)
