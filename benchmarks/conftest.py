"""Shared fixtures for the benchmark suite.

The expensive artifact — the full Table 1 sweep (6 configurations x 3
sizes on the calibrated EGEE-like grid) — is computed once per session
and shared by the Table 1 / Table 2 / Figure 10 / ratio benchmarks.

Every sweep cell is also appended to the run-history store (one
summary per configuration/size), so repeated bench sessions accumulate
the performance trajectory that ``compare-runs`` inspects.  The store
location defaults to ``benchmarks/runstore/`` (gitignored) and can be
redirected with ``REPRO_RUNSTORE``; recording is best-effort and never
fails the benchmarks themselves.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import run_sweep

#: master seed for every benchmark in the suite (reproducible numbers)
BENCH_SEED = 42


def _record_sweep(sweep) -> None:
    from repro.observability.runstore import RunStore, RunSummary

    root = os.environ.get(
        "REPRO_RUNSTORE",
        os.path.join(os.path.dirname(__file__), "runstore"),
    )
    store = RunStore(root)
    for row in sweep.rows:
        store.append(
            RunSummary(
                workflow="bronze-standard",
                policy=row.config_label,
                makespan=row.makespan,
                n_items=row.n_pairs,
                seed=BENCH_SEED,
                counters={
                    "grid.jobs.submitted": float(row.jobs_submitted),
                    "grid.jobs.completed": float(row.jobs_completed),
                    "enactor.invocations": float(row.invocations),
                },
                note="paper_sweep",
            )
        )


@pytest.fixture(scope="session")
def paper_sweep():
    """The full Table 1 grid at the paper's sizes (12, 66, 126)."""
    sweep = run_sweep(seed=BENCH_SEED)
    try:
        _record_sweep(sweep)
    except Exception:  # recording must never fail the benchmarks
        pass
    return sweep
