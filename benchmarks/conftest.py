"""Shared fixtures for the benchmark suite.

The expensive artifact — the full Table 1 sweep (6 configurations x 3
sizes on the calibrated EGEE-like grid) — is computed once per session
and shared by the Table 1 / Table 2 / Figure 10 / ratio benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_sweep

#: master seed for every benchmark in the suite (reproducible numbers)
BENCH_SEED = 42


@pytest.fixture(scope="session")
def paper_sweep():
    """The full Table 1 grid at the paper's sizes (12, 66, 126)."""
    return run_sweep(seed=BENCH_SEED)
