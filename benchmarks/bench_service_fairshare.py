"""Service-level fairness: fair-share vs FIFO under tenant contention.

Three tenants each submit two competing Bronze Standard runs to one
enactment service with two worker slots.  Submissions arrive
tenant-blocked (alice, alice, bob, bob, carol, carol), the worst case
for FIFO: it drains one tenant's batch before touching the next, so
per-tenant mean completion times fan out across the whole schedule.
The usage-decayed fair-share policy interleaves the tenants instead,
collapsing that spread — the multi-user behaviour the EGEE batch
schedulers' fair-share configuration aimed for, lifted to the
workflow-run level.

The headline number is the *per-tenant mean-completion spread* (max
mean minus min mean): fair share must come in well below FIFO on the
identical workload.  Each policy's outcome is appended to the run
store so ``compare-runs`` can track the service's fairness over time.
"""

from __future__ import annotations

import os

from repro.grid.testbeds import cluster_testbed
from repro.service import EnactmentService, InMemoryStateStore, RunState, TenantSpec

BENCH_SEED = 42
N_TENANTS = 3
RUNS_PER_TENANT = 2
PAIRS_PER_RUN = 1


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def run_policy(policy):
    """Execute the contention scenario under *policy*; return stats."""
    service = EnactmentService(
        InMemoryStateStore(),
        policy=policy,
        max_concurrent_runs=2,
        testbed=small_cluster,
        seed=BENCH_SEED,
    )
    tenants = [
        TenantSpec(name="alice", weight=2.0, max_concurrent_runs=2),
        TenantSpec(name="bob", weight=1.0, max_concurrent_runs=2),
        TenantSpec(name="carol", weight=1.0, max_concurrent_runs=2),
    ]
    for spec in tenants:
        service.add_tenant(spec)
    # Tenant-blocked arrival order, fixed per-run seeds: both policies
    # schedule the exact same workload, only the admission order moves.
    seed = 100
    for spec in tenants:
        for _ in range(RUNS_PER_TENANT):
            service.submit(spec.name, n_items=PAIRS_PER_RUN, seed=seed)
            seed += 1
    runs = service.drain()
    assert len(runs) == N_TENANTS * RUNS_PER_TENANT
    assert all(run.state is RunState.DONE for run in runs)

    means = {}
    for spec in tenants:
        stamps = [run.finished_at for run in runs if run.tenant == spec.name]
        means[spec.name] = sum(stamps) / len(stamps)
    spread = max(means.values()) - min(means.values())
    return {
        "spread": spread,
        "means": means,
        "total_makespan": service.engine.now,
        "runs": runs,
    }


def _record(policy, stats) -> None:
    from repro.observability.runstore import RunStore, RunSummary

    root = os.environ.get(
        "REPRO_RUNSTORE",
        os.path.join(os.path.dirname(__file__), "runstore"),
    )
    RunStore(root).append(
        RunSummary(
            workflow="bronze-standard",
            policy=f"service-{policy}",
            makespan=stats["total_makespan"],
            n_items=N_TENANTS * RUNS_PER_TENANT,
            seed=BENCH_SEED,
            counters={
                "service.tenant_spread": float(stats["spread"]),
                "service.runs": float(N_TENANTS * RUNS_PER_TENANT),
            },
            note="bench_service_fairshare",
        )
    )


def test_fair_share_collapses_tenant_spread(benchmark):
    def scenario():
        return {policy: run_policy(policy) for policy in ("fifo", "fair-share")}

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    fifo, fair = results["fifo"], results["fair-share"]
    for policy, stats in results.items():
        try:
            _record(policy, stats)
        except Exception:  # recording must never fail the benchmark
            pass
        means = ", ".join(f"{t}={m:.0f}s" for t, m in sorted(stats["means"].items()))
        print(
            f"\n{policy:>10}: tenant means [{means}] "
            f"spread {stats['spread']:.0f}s, end {stats['total_makespan']:.0f}s"
        )
    # FIFO drains tenant batches back-to-back: the spread spans the
    # schedule.  Fair share interleaves: well under half of FIFO's.
    assert fair["spread"] < 0.6 * fifo["spread"]
    # Fairness is not bought with throughput: the overall schedule
    # stays in the same ballpark (same work, same slots).
    assert fair["total_makespan"] < 1.25 * fifo["total_makespan"]
