"""E3 — Figure 10: execution-time curves vs number of image pairs.

Regenerates the figure's data series (hours on the y-axis, image pairs
on the x-axis, one series per optimization configuration) and prints
them alongside the paper's series.

Shape claims reproduced: "almost straight lines" for the serial family,
the DP-family curves nearly flat, and no series crossing the paper's
ordering anywhere in the sweep.
"""


from repro.experiments.calibration import PAPER_SIZES, PAPER_TABLE1


def test_figure10_series(benchmark, paper_sweep):
    def collect_series():
        return {
            label: [paper_sweep.cell(label, size).hours for size in paper_sweep.sizes]
            for label in paper_sweep.config_labels
        }

    series = benchmark.pedantic(collect_series, rounds=1, iterations=1)

    print("\n=== Figure 10 (measured) — execution time in hours vs input size ===")
    header = "configuration | " + " | ".join(f"{s:>4} pairs" for s in paper_sweep.sizes)
    print(header)
    print("-" * len(header))
    for label, values in series.items():
        cells = " | ".join(f"{v:9.2f}" for v in values)
        print(f"{label:>13} | {cells}")

    print("\n=== Figure 10 (paper) — for comparison ===")
    for label in paper_sweep.config_labels:
        values = [PAPER_TABLE1[label][s] / 3600 for s in PAPER_SIZES]
        cells = " | ".join(f"{v:9.2f}" for v in values)
        print(f"{label:>13} | {cells}")

    # every measured series is monotone non-crossing vs the best config
    for size in paper_sweep.sizes:
        best = series["SP+DP+JG"][list(paper_sweep.sizes).index(size)]
        worst = series["NOP"][list(paper_sweep.sizes).index(size)]
        assert best < worst


def test_figure10_linearity(benchmark, paper_sweep):
    """The paper: 'graphical representations ... are almost straight lines'."""
    fits = benchmark.pedantic(paper_sweep.table2, rounds=1, iterations=1)
    r2 = {label: fits[label].fit.r_squared for label in ("NOP", "JG", "SP")}
    print(f"\nr^2 of the serial-family series: {r2}")
    assert all(v > 0.99 for v in r2.values())
