"""E14 — ablation: the resource broker as a central bottleneck.

Section 5.4: "On an ever-loaded production infrastructure, middleware
services such as the user interface or the resource broker may be
critical bottlenecks.  The theoretical modeling does not take into
account these limitations."

This ablation makes the limitation measurable: sweeping the broker's
matchmaking concurrency while submitting a large data-parallel burst
shows the DP makespan departing from the theory's flat n_W·T as the
broker saturates — one concrete mechanism behind the paper's non-zero
DP slope (their 143 s/data set where the ideal model predicts ~0).
"""

import pytest

from repro.grid.faults import FaultModel
from repro.grid.job import JobDescription
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site
from repro.grid.storage import StorageElement
from repro.grid.transfer import NetworkModel
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

N_JOBS = 200
COMPUTE = 120.0
MATCHMAKING = 2.0  # seconds of broker work per job


def run_burst(broker_concurrency):
    engine = Engine()
    ce = ComputingElement(engine, "ce", "s0", infinite=True)
    grid = Grid(
        engine,
        RandomStreams(seed=1),
        sites=[Site("s0", [ce], StorageElement("se", "s0"))],
        overhead=OverheadModel.from_values(brokering=MATCHMAKING),
        network=NetworkModel.instantaneous(),
        faults=FaultModel.none(),
        broker_concurrency=broker_concurrency,
    )
    handles = [
        grid.submit(JobDescription(name=f"j{i}", compute_time=COMPUTE))
        for i in range(N_JOBS)
    ]
    engine.run(until=engine.all_of([h.completion for h in handles]))
    return engine.now


def test_broker_saturation(benchmark):
    concurrencies = [1, 4, 16, float("inf")]

    def sweep():
        return {c: run_burst(c) for c in concurrencies}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(f"\n=== DP burst of {N_JOBS} jobs ({COMPUTE:.0f}s compute, "
          f"{MATCHMAKING:.0f}s matchmaking each) vs broker concurrency ===")
    print(f"{'broker slots':>12} | {'makespan (s)':>12} | {'vs ideal n_W*T':>15}")
    print("-" * 46)
    ideal = COMPUTE + MATCHMAKING
    for c, t in times.items():
        label = "inf" if c == float("inf") else str(c)
        print(f"{label:>12} | {t:>12.0f} | {t / ideal:>14.1f}x")

    # Saturated broker: matchmaking serializes, N x 2s dominates.
    assert times[1] == pytest.approx(N_JOBS * MATCHMAKING + COMPUTE, rel=0.01)
    # Unconstrained broker: the theory's flat DP cost.
    assert times[float("inf")] == pytest.approx(ideal, rel=0.01)
    # Monotone relief as the middleware scales out.
    assert times[1] > times[4] > times[16] >= times[float("inf")]


def test_broker_bottleneck_shows_up_as_slope(benchmark):
    """With a finite broker, DP's cost grows linearly in the burst size
    — the mechanism behind a non-zero measured DP slope."""

    def run_size(n, concurrency=8):
        engine = Engine()
        ce = ComputingElement(engine, "ce", "s0", infinite=True)
        grid = Grid(
            engine,
            RandomStreams(seed=1),
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel.from_values(brokering=MATCHMAKING),
            network=NetworkModel.instantaneous(),
            broker_concurrency=concurrency,
        )
        handles = [
            grid.submit(JobDescription(name=f"j{i}", compute_time=COMPUTE))
            for i in range(n)
        ]
        engine.run(until=engine.all_of([h.completion for h in handles]))
        return engine.now

    def sweep():
        return [run_size(n) for n in (40, 80, 160)]

    t40, t80, t160 = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nfinite-broker DP makespans: 40 jobs {t40:.0f}s, "
          f"80 jobs {t80:.0f}s, 160 jobs {t160:.0f}s")
    # once saturated, doubling the burst adds ~n * (matchmaking / slots)
    assert t160 > t80 > t40
    marginal = (t160 - t80) / 80
    assert marginal == pytest.approx(MATCHMAKING / 8, rel=0.2)
