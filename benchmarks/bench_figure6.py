"""E6 — Figure 6: why service parallelism pays when times vary.

The paper's constructed example: on a 2-service pipeline over D0..D2,
"the processing time of the data set D0 is twice as long as the other
ones on service P0 and the execution time of the data set D1 is three
times as long as the other ones on service P1" (an error-resubmission
and a queue-blocked job).  Without service parallelism the stage
barrier wastes the slack; with it, computations overlap.

Regenerates both execution diagrams and checks the published makespans:
5T without SP (DP only) vs 4T with SP+DP.
"""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import execution_diagram
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

#: row = service, column = data set (in units of T)
TIMES = [
    [2.0, 1.0, 1.0],  # P1: D0 was submitted twice (error)
    [1.0, 3.0, 1.0],  # P2: D1 remained blocked on a waiting queue
]


def run_case(config):
    engine = Engine()

    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            return TIMES[index][inputs_dict["x"].value]

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    workflow = chain_workflow(factory, 2)
    return MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})


def test_figure6_diagrams(benchmark):
    dp_result = benchmark.pedantic(run_case, args=(OptimizationConfig.dp(),),
                                   rounds=1, iterations=1)
    dsp_result = run_case(OptimizationConfig.sp_dp())

    print("\n=== Figure 6 left (regenerated) — DP only, stage barrier ===")
    print(execution_diagram(dp_result.trace, cell=1.0))
    print(f"makespan: {dp_result.makespan:.0f} T")
    print("\n=== Figure 6 right (regenerated) — SP+DP, overlap ===")
    print(execution_diagram(dsp_result.trace, cell=1.0))
    print(f"makespan: {dsp_result.makespan:.0f} T")

    # Published values: the barrier costs max(2,1,1) + max(1,3,1) = 5T;
    # overlapping brings it to the heaviest item path D1 = 1 + 3 = 4T.
    assert dp_result.makespan == 5.0
    assert dsp_result.makespan == 4.0

    gain = dp_result.makespan / dsp_result.makespan
    print(f"\nS_SDP measured: {gain:.2f} (> 1 despite the theory's S_SDP = 1, "
          "because the constant-time hypothesis fails)")
    assert gain > 1.0
