"""E8 — equations (1)-(4): the simulator equals the analytical model.

On the idealized substrate (hypotheses of Section 3.5.2: unlimited data
parallelism, no overheads, no synchronization), the enacted makespan of
each policy must equal the closed form *exactly*, for arbitrary T_ij
matrices.  This is the calibration-free correctness anchor of the whole
reproduction.
"""

import numpy as np

from repro.core import MoteurEnactor, OptimizationConfig
from repro.model.makespan import makespans
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

POLICIES = [
    ("NOP", OptimizationConfig.nop()),
    ("DP", OptimizationConfig.dp()),
    ("SP", OptimizationConfig.sp()),
    ("SP+DP", OptimizationConfig.sp_dp()),
]


def enact_policy(times, config):
    engine = Engine()

    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            return float(times[index][inputs_dict["x"].value])

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    workflow = chain_workflow(factory, len(times))
    return MoteurEnactor(engine, workflow, config).run(
        {"input": list(range(len(times[0])))}
    ).makespan


def test_model_validation(benchmark):
    rng = np.random.default_rng(7)
    matrices = [rng.uniform(0.5, 20.0, size=(n_w, n_d))
                for n_w, n_d in [(1, 8), (3, 5), (5, 12), (4, 1), (2, 10)]]

    def validate_all():
        worst = 0.0
        for matrix in matrices:
            expected = makespans(matrix)
            for label, config in POLICIES:
                measured = enact_policy(matrix.tolist(), config)
                worst = max(worst, abs(measured - expected[label]))
        return worst

    worst_error = benchmark.pedantic(validate_all, rounds=1, iterations=1)

    print("\n=== equations (1)-(4) vs enacted makespans ===")
    print(f"{'shape':>8} | {'policy':>6} | {'model':>10} | {'simulated':>10}")
    print("-" * 44)
    for matrix in matrices[:3]:
        expected = makespans(matrix)
        for label, config in POLICIES:
            measured = enact_policy(matrix.tolist(), config)
            print(
                f"{matrix.shape[0]}x{matrix.shape[1]:>6} | {label:>6} | "
                f"{expected[label]:10.3f} | {measured:10.3f}"
            )
    print(f"\nworst absolute deviation over all cases: {worst_error:.2e} s")
    assert worst_error < 1e-6
